"""The fleet engine: N communities behind one front door.

:class:`CommunitySpec` is the declarative description of one tenant —
enough to build its :class:`~repro.stream.pipeline.StreamEngine` from
scratch (and therefore enough for checkpoints, benchmarks and the load
generator to share one vocabulary).  :func:`build_fleet` hashes every
spec's community id onto a shard via the consistent-hash ring and hands
each shard's engines to a :class:`~repro.fleet.worker.ShardWorker`;
:class:`FleetEngine` advances all workers in lockstep ticks and exposes
fleet-wide status, merged detections, batched envelope ingestion and
per-shard gauge publication for the Prometheus exposition.

Determinism contract: communities are fully independent, so a fleet run
is bitwise-equal to the same communities run one at a time — pinned by
``tests/test_fleet_equivalence.py`` across community × shard counts,
cut/resume, and fault injection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.config import CommunityConfig, config_from_dict, config_to_dict
from repro.faults.plan import FaultPlan
from repro.fleet.ring import HashRing
from repro.fleet.worker import ShardWorker
from repro.obs.fleettrace import fleet_trace_layout
from repro.obs.scoreboard import merge_reports
from repro.obs.trace import TRACER, TraceContext
from repro.perf.counters import PERF
from repro.simulation.cache import GameSolutionCache
from repro.simulation.scenario import DetectorKind
from repro.stream.events import event_from_dict
from repro.stream.pipeline import (
    StreamEngine,
    build_synthetic_engine,
    default_synthetic_attack,
)
from repro.stream.source import ScriptedOccurrence


@dataclass(frozen=True)
class CommunitySpec:
    """Everything needed to build one community's streaming engine.

    Mirrors :func:`~repro.stream.pipeline.build_synthetic_engine`'s
    surface; the engine's own ``build_spec`` (and therefore the existing
    checkpoint machinery) carries the same information, so a fleet built
    from specs and a fleet resumed from per-shard checkpoints are the
    same kind of object.
    """

    community_id: str
    config: CommunityConfig
    n_days: int = 4
    attack_days: tuple[int, int] = (1, 3)
    attack_strength: float = 0.6
    hacked_meters: tuple[int, ...] | None = None
    tp_rate: float = 0.75
    fp_rate: float = 0.05
    detector: DetectorKind = "aware"
    seed: int = 0
    faults: FaultPlan | None = None
    announce_attacks: bool = False

    def __post_init__(self) -> None:
        if not self.community_id:
            raise ValueError("community_id must be a non-empty string")
        if self.n_days < 1:
            raise ValueError(f"n_days must be >= 1, got {self.n_days}")

    def build_engine(self, *, cache: GameSolutionCache | None = None) -> StreamEngine:
        """The community's engine, identical to a standalone build.

        With ``announce_attacks`` the window runs as a *scripted
        campaign*: the same attack on the same meters over the same
        days, but installed as a :class:`ScriptedOccurrence` — so the
        source announces it on the ground-truth ledger
        (:class:`~repro.stream.events.AttackOccurrence`) and the
        resilience scoreboard can attribute episodes to a family.
        """
        attack_days = self.attack_days
        occurrences: tuple[ScriptedOccurrence, ...] = ()
        if self.announce_attacks:
            spd = self.config.time.slots_per_day
            n_meters = self.config.detection.n_monitored_meters
            hacked = self.hacked_meters
            if hacked is None:
                # Mirror build_synthetic_engine's default hacked set.
                hacked = tuple(range(max(1, n_meters // 2)))
            occurrences = (
                ScriptedOccurrence(
                    days=self.attack_days,
                    meter_ids=hacked,
                    attack=default_synthetic_attack(spd, self.attack_strength),
                ),
            )
            attack_days = (0, 0)
        return build_synthetic_engine(
            self.config,
            n_days=self.n_days,
            attack_days=attack_days,
            hacked_meters=self.hacked_meters,
            attack_strength=self.attack_strength,
            tp_rate=self.tp_rate,
            fp_rate=self.fp_rate,
            detector=self.detector,
            seed=self.seed,
            cache=cache,
            faults=self.faults,
            occurrences=occurrences,
        )

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "community_id": self.community_id,
            "config": config_to_dict(self.config),
            "n_days": self.n_days,
            "attack_days": list(self.attack_days),
            "attack_strength": self.attack_strength,
            "hacked_meters": (
                None if self.hacked_meters is None else list(self.hacked_meters)
            ),
            "tp_rate": self.tp_rate,
            "fp_rate": self.fp_rate,
            "detector": self.detector,
            "seed": self.seed,
        }
        if self.faults is not None:
            payload["faults"] = self.faults.to_dict()
        # Omitted when False so pre-campaign payloads stay byte-stable.
        if self.announce_attacks:
            payload["announce_attacks"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CommunitySpec":
        hacked = payload.get("hacked_meters")
        faults = payload.get("faults")
        return cls(
            community_id=str(payload["community_id"]),
            config=config_from_dict(payload["config"]),
            n_days=int(payload["n_days"]),
            attack_days=(
                int(payload["attack_days"][0]),
                int(payload["attack_days"][1]),
            ),
            attack_strength=float(payload["attack_strength"]),
            hacked_meters=None if hacked is None else tuple(int(m) for m in hacked),
            tp_rate=float(payload["tp_rate"]),
            fp_rate=float(payload["fp_rate"]),
            detector=payload["detector"],
            seed=int(payload["seed"]),
            faults=None if faults is None else FaultPlan.from_dict(faults),
            announce_attacks=bool(payload.get("announce_attacks", False)),
        )


@dataclass(frozen=True)
class AdvanceStats:
    """What one :meth:`FleetEngine.advance` call accomplished."""

    ticks: int = 0
    events: int = 0
    detections: int = 0
    gaps: int = 0
    stalled_ticks: int = 0
    exhausted: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "ticks": self.ticks,
            "events": self.events,
            "detections": self.detections,
            "gaps": self.gaps,
            "stalled_ticks": self.stalled_ticks,
            "exhausted": self.exhausted,
        }


class FleetEngine:
    """Lockstep multi-community front door over sharded workers.

    Parameters
    ----------
    ring:
        The consistent-hash ring; its shard set must match ``workers``'
        keys, and every worker community must hash to its own shard
        (checked eagerly so a mis-assembled fleet fails at construction,
        not at first request).
    workers:
        Shard id → worker.
    stall_budget:
        Consecutive all-stalled ticks (no event delivered fleet-wide,
        sources not exhausted) tolerated before :meth:`advance` gives up
        — the fleet analogue of the stream engine's
        :class:`~repro.core.config.RetryPolicy`.  Sized to outlast any
        builtin fault plan's ``max_stall``.
    """

    def __init__(
        self,
        ring: HashRing,
        workers: Mapping[str, ShardWorker],
        *,
        stall_budget: int = 32,
    ) -> None:
        if not workers:
            raise ValueError("a fleet needs at least one shard worker")
        if stall_budget < 1:
            raise ValueError(f"stall_budget must be >= 1, got {stall_budget}")
        if set(workers) != set(ring.shards):
            raise ValueError(
                f"worker shards {sorted(workers)} do not match "
                f"ring shards {list(ring.shards)}"
            )
        for shard_id, worker in workers.items():
            if worker.shard_id != shard_id:
                raise ValueError(
                    f"worker keyed {shard_id!r} reports shard "
                    f"{worker.shard_id!r}"
                )
            for cid in worker.community_ids:
                owner = ring.assign(cid)
                if owner != shard_id:
                    raise ValueError(
                        f"community {cid!r} is owned by ring shard {owner!r} "
                        f"but was given to worker {shard_id!r}"
                    )
        self.ring = ring
        self.stall_budget = stall_budget
        self._workers: dict[str, ShardWorker] = {
            sid: workers[sid] for sid in sorted(workers)
        }

    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(self._workers)

    @property
    def workers(self) -> tuple[ShardWorker, ...]:
        return tuple(self._workers.values())

    @property
    def community_ids(self) -> tuple[str, ...]:
        ids: list[str] = []
        for worker in self._workers.values():
            ids.extend(worker.community_ids)
        return tuple(sorted(ids))

    @property
    def n_communities(self) -> int:
        return sum(worker.n_communities for worker in self._workers.values())

    @property
    def exhausted(self) -> bool:
        return all(worker.exhausted for worker in self._workers.values())

    @property
    def events_processed(self) -> int:
        return sum(worker.events_processed for worker in self._workers.values())

    def worker_of(self, community_id: str) -> ShardWorker:
        """The worker whose shard the ring assigns this community to."""
        shard_id = self.ring.assign(community_id)
        worker = self._workers[shard_id]
        # Membership check doubles as the unknown-community error path.
        worker.engine(community_id)
        return worker

    def engine_of(self, community_id: str) -> StreamEngine:
        return self.worker_of(community_id).engine(community_id)

    # ------------------------------------------------------------------
    def tick(self) -> int:
        """One lockstep advance: every shard pumps one event per
        non-exhausted community (one implicit envelope fleet-wide)."""
        pumped = 0
        with PERF.timer("fleet.advance", hist=True):
            with TRACER.span("fleet.tick", category="fleet"):
                for worker in self._workers.values():
                    pumped += worker.tick()
        PERF.add("fleet.ticks")
        PERF.add("fleet.events", pumped)
        return pumped

    def _min_days_completed(self) -> int:
        days = [
            worker.engine(cid).pipeline.days_completed
            for worker in self._workers.values()
            for cid in worker.community_ids
        ]
        return min(days) if days else 0

    def advance(
        self, *, max_ticks: int | None = None, until_day: int | None = None
    ) -> AdvanceStats:
        """Pump lockstep ticks until the fleet drains (or a bound hits).

        ``until_day`` stops once *every* community has completed that
        many days; ``max_ticks`` bounds this call (checkpoint cut points
        in tests).  A fleet-wide stalled tick (fault-injected feeds, no
        event delivered anywhere) is retried up to ``stall_budget``
        consecutive times before giving up cleanly.
        """
        if max_ticks is not None and max_ticks < 0:
            raise ValueError(f"max_ticks must be >= 0, got {max_ticks}")
        if until_day is not None and until_day < 0:
            raise ValueError(f"until_day must be >= 0, got {until_day}")
        before_slots = sum(
            worker.engine(cid).pipeline.n_slots_processed
            for worker in self._workers.values()
            for cid in worker.community_ids
        )
        before_gaps = sum(
            worker.engine(cid).pipeline.n_gaps
            for worker in self._workers.values()
            for cid in worker.community_ids
        )
        ticks = 0
        events = 0
        stalled = 0
        consecutive_stalls = 0
        while True:
            if max_ticks is not None and ticks >= max_ticks:
                break
            if until_day is not None and self._min_days_completed() >= until_day:
                break
            if self.exhausted:
                break
            pumped = self.tick()
            ticks += 1
            events += pumped
            if pumped == 0:
                stalled += 1
                consecutive_stalls += 1
                PERF.add("fleet.stalled_ticks")
                if consecutive_stalls > self.stall_budget:
                    PERF.add("fleet.stalls_aborted")
                    break
            else:
                consecutive_stalls = 0
        after_slots = sum(
            worker.engine(cid).pipeline.n_slots_processed
            for worker in self._workers.values()
            for cid in worker.community_ids
        )
        after_gaps = sum(
            worker.engine(cid).pipeline.n_gaps
            for worker in self._workers.values()
            for cid in worker.community_ids
        )
        return AdvanceStats(
            ticks=ticks,
            events=events,
            detections=after_slots - before_slots,
            gaps=after_gaps - before_gaps,
            stalled_ticks=stalled,
            exhausted=self.exhausted,
        )

    # ------------------------------------------------------------------
    def ingest_envelope(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Fold one batched envelope of many communities' events in.

        Wire format::

            {"entries": [{"community": "c0001", "event": {...}}, ...],
             "trace": {"run_id": "...", "span_id": 7}}

        Entries are processed in list order; each event is routed via
        the ring to its community's pipeline (the external-feed analogue
        of a lockstep tick).  The whole envelope is validated before any
        entry is applied, so a malformed envelope is rejected atomically.

        The optional ``trace`` field is a propagated
        :class:`~repro.obs.trace.TraceContext`: when the sender's run id
        matches the local tracer's, the envelope's processing span is
        spliced under the sender's parent span, stitching cross-shard
        work into one fleet trace.
        """
        unknown = set(payload) - {"entries", "trace"}
        if unknown:
            raise ValueError(f"unknown envelope fields: {sorted(unknown)}")
        trace_payload = payload.get("trace")
        context: TraceContext | None = None
        if trace_payload is not None:
            if not isinstance(trace_payload, Mapping):
                raise ValueError("envelope field 'trace' must be an object")
            context = TraceContext.from_dict(dict(trace_payload))
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise ValueError("envelope must carry a list field 'entries'")
        parsed = []
        for index, entry in enumerate(entries):
            if not isinstance(entry, Mapping):
                raise ValueError(f"entry {index} is not an object")
            extra = set(entry) - {"community", "event"}
            if extra:
                raise ValueError(f"entry {index} has unknown fields: {sorted(extra)}")
            cid = entry.get("community")
            if not isinstance(cid, str) or not cid:
                raise ValueError(f"entry {index} needs a community id string")
            event_payload = entry.get("event")
            if not isinstance(event_payload, Mapping):
                raise ValueError(f"entry {index} needs an event object")
            try:
                event = event_from_dict(dict(event_payload))
            except (KeyError, ValueError, TypeError) as exc:
                raise ValueError(f"entry {index}: bad event: {exc}") from exc
            worker = self.worker_of(cid)
            parsed.append((cid, worker, event))
        parent_id = (
            context.span_id
            if context is not None and context.run_id == TRACER.run_id
            else None
        )
        results: list[dict[str, Any]] = []
        with TRACER.span(
            "fleet.envelope",
            category="fleet",
            parent_id=parent_id,
            entries=len(parsed),
        ):
            for cid, worker, event in parsed:
                detection = worker.ingest(cid, event)
                results.append(
                    {
                        "community": cid,
                        "shard": worker.shard_id,
                        "detection": None if detection is None else detection.to_dict(),
                    }
                )
        PERF.add("fleet.envelopes")
        PERF.add("fleet.envelope_events", len(parsed))
        return {"accepted": len(parsed), "results": results}

    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """Fleet-wide progress: ring layout, per-shard stats, totals."""
        shards = {sid: worker.stats() for sid, worker in self._workers.items()}
        totals = {
            "communities": self.n_communities,
            "shards": len(self._workers),
            "events_processed": self.events_processed,
            "slots_processed": sum(
                int(stats["totals"]["slots_processed"]) for stats in shards.values()
            ),
            "flags_total": sum(
                int(stats["totals"]["flags_total"]) for stats in shards.values()
            ),
            "repairs": sum(
                int(stats["totals"]["repairs"]) for stats in shards.values()
            ),
            "gaps": sum(int(stats["totals"]["gaps"]) for stats in shards.values()),
        }
        return {
            "exhausted": self.exhausted,
            "totals": totals,
            "shards": shards,
            "ring": {
                "vnodes": self.ring.vnodes,
                "assignments": self.ring.assignments(self.community_ids),
            },
        }

    def detections(
        self,
        *,
        community: str | None = None,
        since: int = 0,
        limit: int | None = None,
    ) -> dict[str, Any]:
        """Merged (or per-community) timeline slice with ``slot >= since``.

        The merged view interleaves communities sorted by ``(slot,
        community_id)`` and tags each verdict with its community and
        shard, so one scrape can follow the whole fleet.
        """
        if since < 0:
            raise ValueError(f"since must be >= 0, got {since}")
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        selected: list[dict[str, Any]] = []
        total = 0
        if community is not None:
            worker = self.worker_of(community)
            targets = [(community, worker)]
        else:
            targets = [
                (cid, self._workers[self.ring.assign(cid)])
                for cid in self.community_ids
            ]
        for cid, worker in targets:
            timeline = worker.engine(cid).timeline
            total += len(timeline)
            for det in timeline:
                if det.slot >= since:
                    tagged = det.to_dict()
                    tagged["community"] = cid
                    tagged["shard"] = worker.shard_id
                    selected.append(tagged)
        selected.sort(key=lambda det: (det["slot"], det["community"]))
        truncated = limit is not None and len(selected) > limit
        if truncated:
            selected = selected[:limit]
        return {
            "detections": selected,
            "total_slots": total,
            "truncated": truncated,
        }

    # ------------------------------------------------------------------
    def scoreboard(self) -> dict[str, Any]:
        """Resilience metrics at every granularity: community → fleet.

        Every accumulator is an integer sum, so the shard and fleet
        blocks are *exact* merges of the community reports — bitwise
        what K solo runs would compute (``tests/test_fleet_scoreboard``
        pins this, cut/resume and fault injection included).
        """
        communities: dict[str, dict[str, Any]] = {}
        shards: dict[str, dict[str, Any]] = {}
        for sid in sorted(self._workers):
            reports = self._workers[sid].scoreboards()
            shards[sid] = merge_reports(reports[cid] for cid in sorted(reports))
            communities.update(reports)
        fleet = merge_reports(communities[cid] for cid in sorted(communities))
        return {
            "fleet": fleet,
            "shards": shards,
            "communities": {cid: communities[cid] for cid in sorted(communities)},
        }

    def trace_layout(self) -> dict[str, Any]:
        """The fleet's deterministic Chrome-trace pid/tid grid."""
        return fleet_trace_layout(
            {
                sid: worker.community_ids
                for sid, worker in self._workers.items()
            }
        )

    # ------------------------------------------------------------------
    def publish_shard_gauges(self) -> None:
        """Export per-shard progress as PERF gauges.

        Called before every Prometheus render so scrapes see
        ``repro_fleet_shard_<id>_*`` gauges next to the fleet-wide
        ``repro_fleet_*`` counters and the ``fleet.advance`` latency
        summary the lockstep timer accumulates.
        """
        for sid, worker in self._workers.items():
            stats = worker.stats()["totals"]
            prefix = f"fleet.shard.{sid}"
            PERF.set_gauge(f"{prefix}.communities", float(stats["communities"]))
            PERF.set_gauge(
                f"{prefix}.events_processed", float(stats["events_processed"])
            )
            PERF.set_gauge(
                f"{prefix}.slots_processed", float(stats["slots_processed"])
            )
            PERF.set_gauge(f"{prefix}.flags_total", float(stats["flags_total"]))
            PERF.set_gauge(f"{prefix}.repairs", float(stats["repairs"]))
            PERF.set_gauge(f"{prefix}.gaps", float(stats["gaps"]))
            PERF.set_gauge(
                f"{prefix}.exhausted", 1.0 if worker.exhausted else 0.0
            )


def build_fleet(
    specs: Sequence[CommunitySpec],
    *,
    n_shards: int = 1,
    vnodes: int = 64,
    cache: GameSolutionCache | None = None,
    shard_ids: Sequence[str] | None = None,
    stall_budget: int = 32,
) -> FleetEngine:
    """Assemble a fleet: ring the shards, hash the specs, build engines.

    Communities are built in ascending community-id order so expensive
    construction work (game solves) lands in the shared ``cache`` in a
    deterministic order regardless of shard layout.
    """
    if not specs:
        raise ValueError("a fleet needs at least one community spec")
    ids = [spec.community_id for spec in specs]
    if len(set(ids)) != len(ids):
        raise ValueError("community ids must be unique across the fleet")
    if shard_ids is None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        shard_ids = [f"s{k}" for k in range(n_shards)]
    elif len(set(shard_ids)) != len(shard_ids):
        raise ValueError("shard ids must be unique")
    ring = HashRing(shard_ids, vnodes=vnodes)
    engines_by_shard: dict[str, dict[str, StreamEngine]] = {
        sid: {} for sid in ring.shards
    }
    for spec in sorted(specs, key=lambda s: s.community_id):
        shard_id = ring.assign(spec.community_id)
        engines_by_shard[shard_id][spec.community_id] = spec.build_engine(cache=cache)
    workers = {
        sid: ShardWorker(sid, engines) for sid, engines in engines_by_shard.items()
    }
    return FleetEngine(ring, workers, stall_budget=stall_budget)
