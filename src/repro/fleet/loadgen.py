"""Seeded fleet workload generator: community specs and event envelopes.

The :class:`LoadGenerator` turns one base community configuration into a
fleet of N tenant specs that share the expensive world (same
``config.seed`` → same community build → shared game-solution cache
entries) while differing in everything stream-visible: per-community
attack windows, strengths, compromised-meter sets and pipeline seeds,
all drawn from :class:`numpy.random.SeedSequence`-spawned child streams
so the workload is exactly reproducible for a given fleet seed.

Two consumption modes:

- :meth:`specs` feeds :func:`~repro.fleet.engine.build_fleet` (the
  ``advance`` path — each engine pumps its own attached source, repair
  feedback included);
- :meth:`envelopes` materializes the same communities' event streams as
  batched fleet envelopes for the ``POST /envelope`` ingestion path
  (external feeds carry no repair feedback edge, exactly like the
  single-community service's ``POST /events``).
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.core.config import CommunityConfig
from repro.faults.plan import FaultPlan
from repro.fleet.engine import CommunitySpec
from repro.simulation.scenario import DetectorKind
from repro.stream.events import event_to_dict
from repro.stream.pipeline import default_synthetic_attack
from repro.stream.source import ScriptedOccurrence, SyntheticSource


class LoadGenerator:
    """Deterministic generator of multi-community workloads.

    Parameters
    ----------
    base_config:
        Shared community configuration (one world, cached solves).
    n_communities:
        Fleet size.
    n_days:
        Stream length per community.
    seed:
        Fleet seed; every per-community draw comes from a spawned child
        of this seed, so ``LoadGenerator(cfg, n_communities=5, seed=3)``
        always produces the same five specs — and the first K of them
        match ``n_communities=K`` with the same seed (spawn keys are
        positional).
    detector:
        Detector kind for every community.
    attack_strength_range:
        Uniform range the per-community attack strength is drawn from.
    faults:
        Optional fault plan template; each community gets a copy
        re-seeded from its own child stream so chaos differs per tenant
        but replays identically run to run.
    announce_attacks:
        Run every community's attack window as a *scripted campaign*:
        the source announces it on the ground-truth ledger
        (:class:`~repro.stream.events.AttackOccurrence`) so resilience
        scoreboards attribute episodes to attack families.  The attack
        itself — days, meters, strength — is unchanged.
    """

    def __init__(
        self,
        base_config: CommunityConfig,
        *,
        n_communities: int,
        n_days: int = 4,
        seed: int = 0,
        detector: DetectorKind = "aware",
        attack_strength_range: tuple[float, float] = (0.4, 0.8),
        faults: FaultPlan | None = None,
        announce_attacks: bool = False,
    ) -> None:
        if n_communities < 1:
            raise ValueError(f"n_communities must be >= 1, got {n_communities}")
        if n_days < 1:
            raise ValueError(f"n_days must be >= 1, got {n_days}")
        lo, hi = attack_strength_range
        if not 0.0 <= lo <= hi:
            raise ValueError(
                f"attack_strength_range must satisfy 0 <= lo <= hi, got "
                f"{attack_strength_range}"
            )
        self.base_config = base_config
        self.n_communities = n_communities
        self.n_days = n_days
        self.seed = seed
        self.detector: DetectorKind = detector
        self.attack_strength_range = (float(lo), float(hi))
        self.faults = faults
        self.announce_attacks = announce_attacks

    # ------------------------------------------------------------------
    def specs(self) -> tuple[CommunitySpec, ...]:
        """The fleet's community specs, reproducible for the seed."""
        children = np.random.SeedSequence(self.seed).spawn(self.n_communities)
        n_meters = self.base_config.detection.n_monitored_meters
        lo, hi = self.attack_strength_range
        out: list[CommunitySpec] = []
        for index, child in enumerate(children):
            rng = np.random.default_rng(child)
            if self.n_days >= 2:
                start = int(rng.integers(0, self.n_days - 1))
                end = int(rng.integers(start + 1, self.n_days + 1))
            else:
                start, end = 0, 1
            strength = float(rng.uniform(lo, hi))
            n_hacked = max(1, n_meters // 2)
            hacked = tuple(
                sorted(int(m) for m in rng.choice(n_meters, size=n_hacked, replace=False))
            )
            stream_seed = int(rng.integers(0, 2**31 - 1))
            faults = None
            if self.faults is not None:
                fault_seed = int(rng.integers(0, 2**31 - 1))
                faults = FaultPlan.from_dict(
                    {**self.faults.to_dict(), "seed": fault_seed}
                )
            out.append(
                CommunitySpec(
                    community_id=f"c{index:04d}",
                    config=self.base_config,
                    n_days=self.n_days,
                    attack_days=(start, end),
                    attack_strength=strength,
                    hacked_meters=hacked,
                    detector=self.detector,
                    seed=stream_seed,
                    faults=faults,
                    announce_attacks=self.announce_attacks,
                )
            )
        return tuple(out)

    # ------------------------------------------------------------------
    def source_for(self, spec: CommunitySpec) -> SyntheticSource:
        """The detached synthetic source one spec's engine would pump.

        Sources are cheap (no game solves), so envelope generation never
        builds detector stacks.
        """
        spd = spec.config.time.slots_per_day
        n_meters = spec.config.detection.n_monitored_meters
        hacked = spec.hacked_meters
        if hacked is None:
            hacked = tuple(range(max(1, n_meters // 2)))
        attack = default_synthetic_attack(spd, spec.attack_strength)
        attack_days = spec.attack_days
        occurrences: tuple[ScriptedOccurrence, ...] = ()
        if spec.announce_attacks:
            # Mirror CommunitySpec.build_engine's campaign conversion so
            # the envelope stream stays the wire-format twin of a tick.
            occurrences = (
                ScriptedOccurrence(
                    days=spec.attack_days, meter_ids=hacked, attack=attack
                ),
            )
            attack_days = (0, 0)
        return SyntheticSource(
            n_meters=n_meters,
            n_days=spec.n_days,
            slots_per_day=spd,
            attack_days=attack_days,
            hacked_meters=hacked,
            attack=attack,
            occurrences=occurrences,
        )

    def envelopes(
        self, specs: tuple[CommunitySpec, ...] | None = None
    ) -> Iterator[dict[str, Any]]:
        """Lockstep envelope stream over the fleet's communities.

        Envelope *t* carries event *t* of every community whose stream
        is still live, in ascending community-id order — the wire-format
        twin of one :meth:`~repro.fleet.engine.FleetEngine.tick`.
        """
        if specs is None:
            specs = self.specs()
        sources = {
            spec.community_id: self.source_for(spec)
            for spec in sorted(specs, key=lambda s: s.community_id)
        }
        while True:
            entries: list[dict[str, Any]] = []
            for cid, source in sources.items():
                if source.exhausted:
                    continue
                event = source.next_event()
                if event is None:
                    continue
                entries.append({"community": cid, "event": event_to_dict(event)})
            if not entries:
                return
            yield {"entries": entries}
