"""Multi-community fleet engine: one front door over N sharded communities.

The fleet layer scales the single-community streaming twin
(:mod:`repro.stream`) to many tenants: a deterministic consistent-hash
ring (:mod:`repro.fleet.ring`) maps community ids onto shards, each
:class:`~repro.fleet.worker.ShardWorker` owns the
:class:`~repro.stream.pipeline.StreamEngine` instances of its shard's
communities, and the :class:`~repro.fleet.engine.FleetEngine` advances
every shard in lockstep ticks — one batched envelope's worth of events
per tick.  The :class:`~repro.fleet.aggregator.FleetAggregator` exposes
fleet-wide ``/status``, ``/detections`` and Prometheus ``/metrics`` over
HTTP, per-shard checkpoints round-trip through the existing stream
checkpoint machinery (:mod:`repro.fleet.checkpoint`), and the seeded
:class:`~repro.fleet.loadgen.LoadGenerator` plus ``repro-fleet-bench``
(:mod:`repro.fleet.bench`) measure capacity (events/sec, p99 advance
latency) into ``BENCH_fleet.json``.

Determinism contract: every community's engine is fully independent
(its own source, pipeline and RNG), so a fleet run over K communities
produces *bitwise-identical* detections to K independent
single-community runs with the same specs — including cut/resume
across per-shard checkpoints and under seeded fault injection.  The
equivalence suite in ``tests/test_fleet_equivalence.py`` pins exactly
that.  See ``docs/FLEET.md``.
"""

from repro.fleet.checkpoint import resume_fleet, save_fleet_checkpoint
from repro.fleet.engine import CommunitySpec, FleetEngine, build_fleet
from repro.fleet.loadgen import LoadGenerator
from repro.fleet.ring import HashRing
from repro.fleet.worker import ShardWorker

__all__ = [
    "CommunitySpec",
    "FleetEngine",
    "HashRing",
    "LoadGenerator",
    "ShardWorker",
    "build_fleet",
    "resume_fleet",
    "save_fleet_checkpoint",
]
