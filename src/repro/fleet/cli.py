"""``repro fleet`` — serve or benchmark a multi-community fleet.

Subcommands
-----------
- ``repro fleet serve`` builds a seeded fleet with the load generator
  (or resumes one from a per-shard checkpoint directory) and runs the
  :class:`~repro.fleet.aggregator.FleetAggregator` HTTP service.
- ``repro fleet bench`` is the ``repro-fleet-bench`` capacity harness
  (see :mod:`repro.fleet.bench`).

Examples::

    python -m repro fleet serve --communities 8 --shards 2 --port 8010
    python -m repro fleet serve --checkpoint-dir /tmp/fleet --resume
    python -m repro fleet bench --quick --out BENCH_fleet.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.presets import bench_preset, paper_preset, smoke_preset

PRESETS = {
    "smoke": smoke_preset,
    "bench": bench_preset,
    "paper": paper_preset,
}


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.faults.plan import FaultPlanError, parse_fault_spec
    from repro.fleet.aggregator import FleetAggregator, run_fleet_service
    from repro.fleet.checkpoint import FLEET_MANIFEST_NAME, resume_fleet
    from repro.fleet.engine import build_fleet
    from repro.fleet.loadgen import LoadGenerator
    from repro.obs.fleettrace import write_fleet_trace
    from repro.obs.trace import TRACER
    from repro.simulation.cache import GameSolutionCache

    cache = GameSolutionCache()
    if args.resume:
        if args.checkpoint_dir is None:
            raise SystemExit("--resume needs --checkpoint-dir")
        manifest = args.checkpoint_dir / FLEET_MANIFEST_NAME
        if not manifest.exists():
            raise SystemExit(f"no fleet checkpoint manifest at {manifest}")
        fleet = resume_fleet(args.checkpoint_dir, cache=cache)
    else:
        faults = None
        if args.faults is not None:
            try:
                faults = parse_fault_spec(args.faults, seed=args.fault_seed)
            except FaultPlanError as exc:
                raise SystemExit(f"bad --faults spec: {exc}") from exc
        elif args.fault_seed is not None:
            raise SystemExit("--fault-seed requires --faults")
        base = PRESETS[args.preset]()
        if args.seed is not None:
            base = base.with_updates(seed=args.seed)
        generator = LoadGenerator(
            base,
            n_communities=args.communities,
            n_days=args.days,
            seed=base.seed,
            faults=faults,
            announce_attacks=args.campaign,
        )
        fleet = build_fleet(
            generator.specs(), n_shards=args.shards, cache=cache
        )
    if args.trace or args.trace_out is not None:
        from repro.obs.manifest import build_manifest

        metadata = None
        if not args.resume:
            metadata = build_manifest(base, command="fleet-serve")
        TRACER.enable(
            run_id=f"fleet-{args.preset}-c{args.communities}s{args.shards}",
            metadata=metadata,
        )
    if args.checkpoint_dir is not None:
        args.checkpoint_dir.mkdir(parents=True, exist_ok=True)
    aggregator = FleetAggregator(fleet, checkpoint_dir=args.checkpoint_dir)
    run_fleet_service(aggregator, host=args.host, port=args.port)
    if TRACER.enabled and args.trace_out is not None:
        write_fleet_trace(TRACER, fleet.trace_layout(), args.trace_out)
        print(f"fleet trace written to {args.trace_out}")
    if TRACER.enabled:
        TRACER.disable()
    return 0


def fleet_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description="Multi-community fleet: consistent-hash sharded "
        "detection service and capacity benchmark.",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    serve = sub.add_parser(
        "serve", help="run the fleet aggregator HTTP service"
    )
    serve.add_argument("--preset", choices=sorted(PRESETS), default="smoke")
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument("--communities", type=int, default=4)
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument("--days", type=int, default=4)
    serve.add_argument(
        "--faults",
        default=None,
        help="fault-injection plan template applied per community "
        "(builtin name, JSON file, or inline JSON)",
    )
    serve.add_argument(
        "--fault-seed", type=int, default=None,
        help="override the fault template's RNG seed (requires --faults)",
    )
    serve.add_argument(
        "--checkpoint-dir", type=Path, default=None,
        help="directory for per-shard checkpoints (POST /checkpoint, SIGTERM)",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="resume the fleet from --checkpoint-dir instead of building one",
    )
    serve.add_argument(
        "--campaign", action="store_true",
        help="announce every community's attack window on the ground-truth "
        "ledger (scripted campaign) so /scoreboard attributes episodes "
        "to attack families",
    )
    serve.add_argument(
        "--trace", action="store_true",
        help="enable the fleet-wide span tracer (GET /trace serves the "
        "merged Chrome trace)",
    )
    serve.add_argument(
        "--trace-out", type=Path, default=None,
        help="write the merged fleet Chrome trace here on shutdown "
        "(implies --trace)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8010)

    bench = sub.add_parser(
        "bench",
        help="capacity benchmark (same surface as repro-fleet-bench)",
        add_help=False,
    )
    bench.add_argument("args", nargs=argparse.REMAINDER)

    if argv is None:
        argv = sys.argv[1:]
    # `bench` hands its whole tail to repro-fleet-bench so the two entry
    # points stay one option surface.
    if argv and argv[0] == "bench":
        from repro.fleet.bench import main as bench_main

        return bench_main(argv[1:])
    args = parser.parse_args(argv)
    if args.subcommand == "serve":
        for name in ("communities", "shards", "days"):
            if getattr(args, name) < 1:
                parser.error(f"--{name} must be >= 1")
        return _cmd_serve(args)
    parser.error(f"unknown subcommand {args.subcommand!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":
    sys.exit(fleet_main())
