"""Per-shard fleet checkpoints riding the stream checkpoint machinery.

A fleet checkpoint is a directory: one ``fleet.json`` manifest (ring
layout, shard → file map, community → shard assignment) plus one
``shard-<id>.json`` document per shard.  Each shard document holds the
*unmodified* :func:`repro.stream.checkpoint.checkpoint_payload` of every
community engine the shard owns, so a community's slice of a fleet
checkpoint is indistinguishable from a standalone engine checkpoint —
resume goes through :func:`repro.stream.checkpoint.resume_engine`
verbatim, inheriting its bitwise resume guarantee.

Every file is written atomically (temp + rename) and the manifest is
written *last*: a crash mid-save leaves either a complete new
checkpoint or a complete old one, never a torn mix that loads.
Damage — missing files, bad JSON, wrong markers, assignment drift — is
reported as :class:`repro.stream.checkpoint.CheckpointError`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.fleet.ring import HashRing
from repro.fleet.worker import ShardWorker
from repro.simulation.cache import GameSolutionCache
from repro.stream.checkpoint import (
    CheckpointError,
    checkpoint_payload,
    resume_engine,
)

if TYPE_CHECKING:
    from repro.fleet.engine import FleetEngine

FLEET_MANIFEST_NAME = "fleet.json"
FLEET_FORMAT = "repro-fleet-checkpoint"
SHARD_FORMAT = "repro-fleet-shard-checkpoint"
FLEET_VERSION = 1


def _shard_filename(shard_id: str) -> str:
    return f"shard-{shard_id}.json"


def _atomic_write(path: Path, payload: dict[str, Any]) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(tmp, path)


def save_fleet_checkpoint(fleet: "FleetEngine", directory: str | Path) -> Path:
    """Persist the whole fleet; returns the manifest path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    assignments: dict[str, str] = {}
    for worker in fleet.workers:
        shard_payload = {
            "format": SHARD_FORMAT,
            "version": FLEET_VERSION,
            "shard": worker.shard_id,
            "communities": {
                cid: checkpoint_payload(worker.engine(cid))
                for cid in worker.community_ids
            },
        }
        for cid in worker.community_ids:
            assignments[cid] = worker.shard_id
        _atomic_write(directory / _shard_filename(worker.shard_id), shard_payload)
    manifest = {
        "format": FLEET_FORMAT,
        "version": FLEET_VERSION,
        "ring": fleet.ring.to_dict(),
        "shards": {
            worker.shard_id: _shard_filename(worker.shard_id)
            for worker in fleet.workers
        },
        "communities": {cid: assignments[cid] for cid in sorted(assignments)},
    }
    manifest_path = directory / FLEET_MANIFEST_NAME
    _atomic_write(manifest_path, manifest)
    return manifest_path


def _load_json(path: Path, *, what: str) -> dict[str, Any]:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(f"cannot read {what} {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt {what} {path}: invalid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"corrupt {what} {path}: not a JSON object")
    return payload


def load_fleet_manifest(directory: str | Path) -> dict[str, Any]:
    """Read and validate a fleet checkpoint's manifest."""
    path = Path(directory) / FLEET_MANIFEST_NAME
    payload = _load_json(path, what="fleet manifest")
    if payload.get("format") != FLEET_FORMAT:
        raise CheckpointError(f"not a fleet checkpoint manifest: {path}")
    if payload.get("version") != FLEET_VERSION:
        raise CheckpointError(
            f"unsupported fleet checkpoint version {payload.get('version')!r} "
            f"(expected {FLEET_VERSION})"
        )
    for key in ("ring", "shards", "communities"):
        if key not in payload:
            raise CheckpointError(f"fleet manifest missing {key!r} section: {path}")
    return payload


def resume_fleet(
    directory: str | Path,
    *,
    cache: GameSolutionCache | None = None,
    stall_budget: int = 32,
) -> "FleetEngine":
    """Rebuild a fleet from a checkpoint directory.

    Every community engine is reconstructed and restored by the existing
    single-engine machinery, so the resumed fleet continues
    bitwise-identically to one that never stopped.
    """
    from repro.fleet.engine import FleetEngine

    directory = Path(directory)
    manifest = load_fleet_manifest(directory)
    ring = HashRing.from_dict(manifest["ring"])
    expected = {
        str(cid): str(sid) for cid, sid in manifest["communities"].items()
    }
    workers: dict[str, ShardWorker] = {}
    for shard_id in ring.shards:
        filename = manifest["shards"].get(shard_id)
        if filename is None:
            raise CheckpointError(
                f"fleet manifest lists no checkpoint file for shard {shard_id!r}"
            )
        shard_payload = _load_json(
            directory / str(filename), what="shard checkpoint"
        )
        if shard_payload.get("format") != SHARD_FORMAT:
            raise CheckpointError(
                f"not a shard checkpoint: {directory / str(filename)}"
            )
        if shard_payload.get("shard") != shard_id:
            raise CheckpointError(
                f"shard checkpoint {filename!r} claims shard "
                f"{shard_payload.get('shard')!r}, manifest expected {shard_id!r}"
            )
        communities = shard_payload.get("communities")
        if not isinstance(communities, dict):
            raise CheckpointError(
                f"shard checkpoint {filename!r} missing 'communities' section"
            )
        engines = {}
        for cid in sorted(communities):
            if expected.get(cid) != shard_id:
                raise CheckpointError(
                    f"community {cid!r} found in shard {shard_id!r} but the "
                    f"manifest assigns it to {expected.get(cid)!r}"
                )
            if ring.assign(cid) != shard_id:
                raise CheckpointError(
                    f"community {cid!r} no longer hashes to shard {shard_id!r}; "
                    "the ring in the manifest does not match the shard files"
                )
            engines[cid] = resume_engine(communities[cid], cache=cache)
        workers[shard_id] = ShardWorker(shard_id, engines)
    restored = {
        cid for worker in workers.values() for cid in worker.community_ids
    }
    missing = sorted(set(expected) - restored)
    if missing:
        raise CheckpointError(
            f"fleet manifest lists communities with no shard payload: {missing}"
        )
    return FleetEngine(ring, workers, stall_budget=stall_budget)
