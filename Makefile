PYTHON ?= python
PYTHONPATH := src

.PHONY: test lint lint-program typecheck coverage refresh-golden bench bench-quick figures matrix matrix-smoke stream-smoke obs-smoke fleet-smoke fleet-bench scoreboard-smoke

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Determinism/API-contract AST lint (docs/STATIC_ANALYSIS.md); exits
# nonzero on any violation.
lint:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.analysis src tests benchmarks scripts

# Whole-program (interprocedural) analysis: lock discipline, RNG/seed
# provenance, cross-class contracts — gated on the committed
# .repro-lint-baseline.json (new findings fail; fixed findings report
# stale entries).  See docs/STATIC_ANALYSIS.md.
lint-program:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.analysis --program src tests benchmarks scripts

# mypy gate (strict on repro.core/stream/perf — see [tool.mypy] in
# pyproject.toml).  Skips gracefully where mypy isn't installed; CI
# always installs it.
typecheck:
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping typecheck (pip install mypy)"; \
	fi

# Tier-1 suite with a coverage floor on the robustness-critical
# packages (streaming twin + fault harness).  Skips gracefully where
# pytest-cov isn't installed; CI always installs it.
coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q \
			--cov=repro.stream --cov=repro.faults --cov=repro.fleet \
			--cov-report=term-missing --cov-fail-under=80; \
	else \
		echo "pytest-cov not installed; skipping coverage (pip install pytest-cov)"; \
	fi

# Recompute the committed golden-master digest fixtures
# (tests/golden/*.json).  Run only after an intentional behaviour
# change, then commit the diff.
refresh-golden:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/refresh_golden.py --all

# Full hot-path benchmark at bench-preset scale; appends one entry to
# BENCH_hotpaths.json (machine-readable perf trajectory).
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/bench_hotpaths.py

# Micro benches only (CE step + game solve) — seconds, not minutes.
bench-quick:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/bench_hotpaths.py --preset smoke --skip-scenario

figures:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli all

# Full tariff x attack x PV scenario matrix at smoke scale
# (docs/SCENARIOS.md): JSON artifact + ASCII table + schema validation.
matrix:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro sweep-matrix --preset smoke \
		--out matrix_smoke.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/validate_matrix.py matrix_smoke.json

# 2x2 quick grid (CI's matrix-smoke job).
matrix-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro sweep-matrix --preset smoke \
		--quick --slots 24 --out matrix_smoke.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/validate_matrix.py matrix_smoke.json

# Pump a short synthetic detection stream end to end (CI smoke).
stream-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro stream --preset smoke --days 2

# Traced stream run + artifact validation (CI's obs-smoke job): writes
# trace.json (open in Perfetto) and audit.jsonl, then checks the trace
# shape, the audit schema, and a Prometheus render/parse round trip.
obs-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro stream --preset smoke --days 2 \
		--trace-out trace.json --audit audit.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/validate_obs.py \
		--trace trace.json --audit audit.jsonl

# Fleet-vs-sequential bitwise equivalence suite + a scaled-down
# capacity bench run (CI's fleet-smoke job; see docs/FLEET.md).
fleet-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/test_fleet_equivalence.py -x -q
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.fleet.bench --quick \
		--out bench_fleet_smoke.json

# Full fleet capacity bench; appends one entry to BENCH_fleet.json
# (events/sec + lockstep-tick latency percentiles).
fleet-bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.fleet.bench

# Campaign fleet + resilience scoreboard + merged fleet trace (CI's
# scoreboard-smoke job): serve a traced fleet with announced attacks,
# drain it over HTTP, scrape /scoreboard and the Prometheus series,
# then validate the scoreboard merge and the Chrome-trace pid/tid grid.
scoreboard-smoke:
	@set -e; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fleet serve \
		--communities 3 --shards 2 --days 2 --port 8051 \
		--campaign --trace --trace-out fleet_trace.json & \
	SERVE_PID=$$!; \
	for i in $$(seq 1 60); do \
		curl -sf localhost:8051/healthz >/dev/null 2>&1 && break; sleep 1; \
	done; \
	curl -s -X POST localhost:8051/advance -d '{"until_day": 2}' >/dev/null; \
	curl -sf localhost:8051/scoreboard > scoreboard.json; \
	curl -sf localhost:8051/trace > fleet_trace_live.json; \
	kill $$SERVE_PID; wait $$SERVE_PID 2>/dev/null || true; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/validate_obs.py \
		--scoreboard scoreboard.json --fleet-trace fleet_trace_live.json \
		--skip-prometheus; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/validate_obs.py \
		--fleet-trace fleet_trace.json --skip-prometheus; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro trace fleet_trace.json
