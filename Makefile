PYTHON ?= python
PYTHONPATH := src

.PHONY: test lint typecheck bench bench-quick figures stream-smoke

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Determinism/API-contract AST lint (docs/STATIC_ANALYSIS.md); exits
# nonzero on any violation.
lint:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.analysis src tests

# mypy gate (strict on repro.core/stream/perf — see [tool.mypy] in
# pyproject.toml).  Skips gracefully where mypy isn't installed; CI
# always installs it.
typecheck:
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping typecheck (pip install mypy)"; \
	fi

# Full hot-path benchmark at bench-preset scale; appends one entry to
# BENCH_hotpaths.json (machine-readable perf trajectory).
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/bench_hotpaths.py

# Micro benches only (CE step + game solve) — seconds, not minutes.
bench-quick:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/bench_hotpaths.py --preset smoke --skip-scenario

figures:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli all

# Pump a short synthetic detection stream end to end (CI smoke).
stream-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro stream --preset smoke --days 2
