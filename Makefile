PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-quick figures

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Full hot-path benchmark at bench-preset scale; appends one entry to
# BENCH_hotpaths.json (machine-readable perf trajectory).
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/bench_hotpaths.py

# Micro benches only (CE step + game solve) — seconds, not minutes.
bench-quick:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/bench_hotpaths.py --preset smoke --skip-scenario

figures:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli all
