PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-quick figures stream-smoke

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Full hot-path benchmark at bench-preset scale; appends one entry to
# BENCH_hotpaths.json (machine-readable perf trajectory).
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/bench_hotpaths.py

# Micro benches only (CE step + game solve) — seconds, not minutes.
bench-quick:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) scripts/bench_hotpaths.py --preset smoke --skip-scenario

figures:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli all

# Pump a short synthetic detection stream end to end (CI smoke).
stream-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro stream --preset smoke --days 2
