"""Tests for labor-cost accounting."""

import pytest

from repro.metrics.cost import LaborCostModel, normalized_labor_cost


class TestLaborCostModel:
    def test_dispatch_cost(self):
        model = LaborCostModel(fixed_cost=2.0, per_meter_cost=1.0)
        assert model.dispatch_cost(0) == pytest.approx(2.0)
        assert model.dispatch_cost(3) == pytest.approx(5.0)

    def test_total_cost(self):
        model = LaborCostModel(fixed_cost=2.0, per_meter_cost=0.5)
        assert model.total_cost([1, 2, 3]) == pytest.approx(3 * 2.0 + 0.5 * 6)

    def test_total_cost_empty(self):
        assert LaborCostModel().total_cost([]) == pytest.approx(0.0)

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            LaborCostModel(fixed_cost=-1.0)

    def test_rejects_negative_repairs(self):
        with pytest.raises(ValueError):
            LaborCostModel().dispatch_cost(-1)
        with pytest.raises(ValueError):
            LaborCostModel().total_cost([1, -2])


class TestNormalizedLaborCost:
    def test_paper_table1_value(self):
        """Table 1: aware labor is 1.0067x the unaware baseline."""
        assert normalized_labor_cost(10.067, 10.0) == pytest.approx(1.0067)

    def test_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            normalized_labor_cost(1.0, 0.0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            normalized_labor_cost(-1.0, 1.0)
