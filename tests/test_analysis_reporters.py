"""Text/JSON reporter contracts for `repro.analysis`."""

import json

from repro.analysis.engine import LintReport, Violation
from repro.analysis.reporters import JSON_SCHEMA_VERSION, render_json, render_text


def sample_report() -> LintReport:
    return LintReport(
        violations=[
            Violation(
                rule="DET001",
                message="global numpy RNG call numpy.random.rand()",
                path="src/repro/fake.py",
                line=7,
                col=4,
            ),
            Violation(
                rule="FLT001",
                message="bare float == comparison against a literal",
                path="src/repro/fake.py",
                line=9,
                col=11,
            ),
            Violation(
                rule="FLT001",
                message="bare float != comparison against a literal",
                path="src/repro/other.py",
                line=2,
                col=0,
            ),
        ],
        files_scanned=5,
    )


class TestTextReporter:
    def test_one_line_per_violation_with_position(self):
        text = render_text(sample_report())
        assert "src/repro/fake.py:7:4: DET001" in text
        assert "src/repro/fake.py:9:11: FLT001" in text

    def test_summary_line_counts_by_rule(self):
        text = render_text(sample_report())
        assert "3 violation(s) in 5 file(s) scanned" in text
        assert "DET001: 1" in text
        assert "FLT001: 2" in text

    def test_clean_report_says_ok(self):
        text = render_text(LintReport(violations=[], files_scanned=12))
        assert text == "ok: 12 file(s) scanned, no violations"


class TestJsonReporter:
    def test_schema_shape(self):
        payload = json.loads(render_json(sample_report()))
        assert set(payload) == {
            "version",
            "files_scanned",
            "violations",
            "counts",
            "exit_code",
        }
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_scanned"] == 5
        assert payload["exit_code"] == 1
        assert payload["counts"] == {"DET001": 1, "FLT001": 2}

    def test_violation_entries_fully_typed(self):
        payload = json.loads(render_json(sample_report()))
        assert len(payload["violations"]) == 3
        entry = payload["violations"][0]
        assert set(entry) == {"rule", "message", "path", "line", "col"}
        assert isinstance(entry["line"], int)
        assert isinstance(entry["col"], int)

    def test_clean_report_exit_code_zero(self):
        payload = json.loads(render_json(LintReport(violations=[], files_scanned=0)))
        assert payload["exit_code"] == 0
        assert payload["violations"] == []
        assert payload["counts"] == {}


class TestReportProperties:
    def test_exit_code_follows_violations(self):
        assert sample_report().exit_code == 1
        assert LintReport(violations=[], files_scanned=3).exit_code == 0

    def test_counts_sorted_by_rule_id(self):
        assert list(sample_report().counts) == ["DET001", "FLT001"]
