"""Tests for scenario-result serialization."""

import numpy as np
import pytest

from repro.simulation.results import (
    SCHEMA_VERSION,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.simulation.scenario import ScenarioResult


@pytest.fixture
def result() -> ScenarioResult:
    rng = np.random.default_rng(0)
    truth = rng.random((24, 4)) < 0.3
    flags = rng.random((24, 4)) < 0.3
    repairs = np.zeros(24, dtype=bool)
    repairs[10] = True
    repaired_counts = np.zeros(24, dtype=int)
    repaired_counts[10] = 2
    return ScenarioResult(
        detector="aware",
        truth=truth,
        flags=flags,
        observations=flags.sum(axis=1),
        repairs=repairs,
        repaired_counts=repaired_counts,
        realized_grid=rng.uniform(10, 50, size=24),
        slots_per_day=24,
        tp_rate=0.8,
        fp_rate=0.1,
    )


class TestRoundTrip:
    def test_dict_round_trip(self, result):
        rebuilt = scenario_from_dict(scenario_to_dict(result))
        np.testing.assert_array_equal(rebuilt.truth, result.truth)
        np.testing.assert_array_equal(rebuilt.flags, result.flags)
        np.testing.assert_allclose(rebuilt.realized_grid, result.realized_grid)
        assert rebuilt.detector == result.detector
        assert rebuilt.tp_rate == result.tp_rate

    def test_summary_preserved(self, result):
        rebuilt = scenario_from_dict(scenario_to_dict(result))
        assert rebuilt.observation_accuracy == pytest.approx(
            result.observation_accuracy
        )
        assert rebuilt.mean_par == pytest.approx(result.mean_par)
        assert rebuilt.n_repairs == result.n_repairs

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_scenario(result, path)
        rebuilt = load_scenario(path)
        np.testing.assert_array_equal(rebuilt.observations, result.observations)

    def test_schema_version_checked(self, result):
        payload = scenario_to_dict(result)
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            scenario_from_dict(payload)

    def test_payload_is_json_safe(self, result):
        import json

        json.dumps(scenario_to_dict(result))
