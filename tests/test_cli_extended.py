"""Extended CLI tests: the 'all' command and reporting integration."""

import json

import pytest

from repro.cli import main


class TestAllCommand:
    def test_all_runs_every_figure(self, capsys, tmp_path):
        assert (
            main(
                [
                    "all",
                    "--preset",
                    "smoke",
                    "--slots",
                    "24",
                    "--json",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        for marker in ("===== fig3 =====", "===== fig5 =====", "===== table1 ====="):
            assert marker in out
        # scenario dumps written for fig6 and table1
        names = {p.name for p in tmp_path.iterdir()}
        assert {"fig6_aware.json", "table1_none.json"} <= names

    def test_json_dumps_are_loadable(self, capsys, tmp_path):
        main(["fig6", "--preset", "smoke", "--slots", "24", "--json", str(tmp_path)])
        capsys.readouterr()
        from repro.simulation.results import load_scenario

        result = load_scenario(tmp_path / "fig6_unaware.json")
        assert result.detector == "unaware"
        assert result.n_slots == 24

    def test_json_payload_schema(self, capsys, tmp_path):
        main(["fig6", "--preset", "smoke", "--slots", "24", "--json", str(tmp_path)])
        capsys.readouterr()
        payload = json.loads((tmp_path / "fig6_aware.json").read_text())
        assert payload["schema_version"] == 1
        assert "summary" in payload
        assert 0.0 <= payload["summary"]["observation_accuracy"] <= 1.0
