"""Tests for the appliance task model and schedules."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scheduling.appliance import (
    ApplianceSchedule,
    ApplianceTask,
    InfeasibleTaskError,
    _unit_of,
)


class TestUnitOf:
    def test_simple_gcd(self):
        assert _unit_of((0.5, 1.0, 1.5)) == pytest.approx(0.5)

    def test_quarters(self):
        assert _unit_of((0.25, 1.0)) == pytest.approx(0.25)

    def test_ignores_zeros(self):
        assert _unit_of((0.0, 2.0)) == pytest.approx(2.0)

    def test_all_zero_raises(self):
        with pytest.raises(ValueError):
            _unit_of((0.0, 0.0))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            _unit_of((-1.0,))


class TestApplianceTask:
    def test_valid_construction(self, simple_task):
        assert simple_task.max_power == pytest.approx(1.0)
        assert simple_task.window_slots == 6

    def test_levels_must_start_with_zero(self):
        with pytest.raises(ValueError, match="start with 0"):
            ApplianceTask("x", (0.5, 1.0), 1.0, 0, 5)

    def test_levels_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            ApplianceTask("x", (0.0, 1.0, 1.0), 1.0, 0, 5)

    def test_positive_energy(self):
        with pytest.raises(ValueError, match="energy"):
            ApplianceTask("x", (0.0, 1.0), 0.0, 0, 5)

    def test_deadline_after_start(self):
        with pytest.raises(ValueError, match="deadline"):
            ApplianceTask("x", (0.0, 1.0), 1.0, 5, 4)

    def test_window_mask(self, simple_task):
        mask = simple_task.window_mask(24)
        assert mask.sum() == 6
        assert mask[18] and mask[23]
        assert not mask[17]

    def test_window_mask_outside_horizon(self, simple_task):
        with pytest.raises(InfeasibleTaskError):
            simple_task.window_mask(20)

    def test_check_feasible_capacity(self):
        task = ApplianceTask("x", (0.0, 1.0), 5.0, 0, 2)
        with pytest.raises(InfeasibleTaskError, match="capacity"):
            task.check_feasible(24)

    def test_check_feasible_ok(self, simple_task):
        simple_task.check_feasible(24)

    def test_energy_unit(self, simple_task):
        assert simple_task.energy_unit() == pytest.approx(0.5)

    @given(
        energy_units=st.integers(min_value=1, max_value=12),
        start=st.integers(min_value=0, max_value=10),
        width=st.integers(min_value=5, max_value=13),
    )
    def test_feasibility_check_consistent(self, energy_units, start, width):
        """check_feasible accepts exactly when capacity allows."""
        energy = energy_units * 0.5
        task = ApplianceTask(
            "prop", (0.0, 0.5, 1.0), energy, start, start + width
        )
        capacity = (width + 1) * 1.0
        if energy <= capacity:
            task.check_feasible(24)
        else:
            with pytest.raises(InfeasibleTaskError):
                task.check_feasible(24)


class TestApplianceSchedule:
    def test_energy(self, simple_task):
        power = [0.0] * 24
        power[18] = 1.0
        power[19] = 1.0
        schedule = ApplianceSchedule(task=simple_task, power=tuple(power))
        assert schedule.energy() == pytest.approx(2.0)
        schedule.validate()

    def test_validate_rejects_outside_window(self, simple_task):
        power = [0.0] * 24
        power[0] = 1.0
        power[18] = 1.0
        schedule = ApplianceSchedule(task=simple_task, power=tuple(power))
        with pytest.raises(ValueError, match="outside window"):
            schedule.validate()

    def test_validate_rejects_bad_level(self, simple_task):
        power = [0.0] * 24
        power[18] = 0.7
        power[19] = 1.0
        power[20] = 0.3
        schedule = ApplianceSchedule(task=simple_task, power=tuple(power))
        with pytest.raises(ValueError, match="level"):
            schedule.validate()

    def test_validate_rejects_wrong_energy(self, simple_task):
        power = [0.0] * 24
        power[18] = 1.0
        schedule = ApplianceSchedule(task=simple_task, power=tuple(power))
        with pytest.raises(ValueError, match="energy"):
            schedule.validate()

    def test_load_array(self, simple_task):
        power = [0.0] * 24
        power[20] = 1.0
        power[21] = 1.0
        schedule = ApplianceSchedule(task=simple_task, power=tuple(power))
        assert isinstance(schedule.load, np.ndarray)
        assert schedule.load[20] == pytest.approx(1.0)
