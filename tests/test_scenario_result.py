"""Unit tests for ScenarioResult metrics (no simulation required)."""

import numpy as np
import pytest

from repro.metrics.cost import LaborCostModel
from repro.simulation.scenario import ScenarioResult


def make_result(
    *,
    truth=None,
    flags=None,
    repairs=None,
    repaired_counts=None,
    grid=None,
    slots=24,
    meters=4,
) -> ScenarioResult:
    truth = truth if truth is not None else np.zeros((slots, meters), dtype=bool)
    flags = flags if flags is not None else np.zeros((slots, meters), dtype=bool)
    repairs = repairs if repairs is not None else np.zeros(slots, dtype=bool)
    repaired_counts = (
        repaired_counts if repaired_counts is not None else np.zeros(slots, dtype=int)
    )
    grid = grid if grid is not None else np.full(slots, 10.0)
    return ScenarioResult(
        detector="aware",
        truth=truth,
        flags=flags,
        observations=flags.sum(axis=1),
        repairs=repairs,
        repaired_counts=repaired_counts,
        realized_grid=grid,
        slots_per_day=24,
        tp_rate=0.9,
        fp_rate=0.05,
    )


class TestAccuracyMetrics:
    def test_perfect_silence(self):
        result = make_result()
        assert result.observation_accuracy == pytest.approx(1.0)
        np.testing.assert_array_equal(result.accuracy_per_slot, 1.0)

    def test_half_wrong(self):
        truth = np.zeros((24, 4), dtype=bool)
        truth[:, :2] = True
        result = make_result(truth=truth)
        assert result.observation_accuracy == pytest.approx(0.5)

    def test_mean_hacked(self):
        truth = np.zeros((24, 4), dtype=bool)
        truth[:, 0] = True
        truth[12:, 1] = True
        result = make_result(truth=truth)
        assert result.mean_hacked == pytest.approx(1.5)


class TestParMetrics:
    def test_flat_grid(self):
        assert make_result().mean_par == pytest.approx(1.0)

    def test_daily_average(self):
        grid = np.full(48, 10.0)
        grid[5] = 20.0  # spike only in day 1
        result = make_result(
            grid=grid,
            slots=48,
            truth=np.zeros((48, 4), dtype=bool),
            flags=np.zeros((48, 4), dtype=bool),
            repairs=np.zeros(48, dtype=bool),
            repaired_counts=np.zeros(48, dtype=int),
        )
        day1 = 20.0 / np.mean(grid[:24])
        assert result.mean_par == pytest.approx((day1 + 1.0) / 2)


class TestRepairAccounting:
    def test_labor_cost(self):
        repairs = np.zeros(24, dtype=bool)
        repairs[[3, 10]] = True
        counts = np.zeros(24, dtype=int)
        counts[3] = 2
        counts[10] = 1
        result = make_result(repairs=repairs, repaired_counts=counts)
        assert result.n_repairs == 2
        model = LaborCostModel(fixed_cost=2.0, per_meter_cost=1.0)
        assert result.labor_cost(model) == pytest.approx(2 * 2.0 + 3 * 1.0)

    def test_no_repairs_zero_cost(self):
        result = make_result()
        assert result.labor_cost(LaborCostModel()) == pytest.approx(0.0)


class TestRatesSummary:
    def test_all_clean_fleet(self):
        result = make_result()
        tp, fp = result.rates_summary()
        assert tp == pytest.approx(0.0)  # no positives observed
        assert fp == pytest.approx(0.0)

    def test_mixed(self):
        truth = np.zeros((24, 4), dtype=bool)
        truth[:, 0] = True
        flags = truth.copy()
        flags[:12, 0] = False  # miss half
        flags[:, 3] = True  # persistent false alarm
        result = make_result(truth=truth, flags=flags)
        tp, fp = result.rates_summary()
        assert tp == pytest.approx(0.5)
        assert fp == pytest.approx(24 / 72)
