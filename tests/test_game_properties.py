"""Property-based tests on the scheduling game across random prices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.config import GameConfig
from repro.scheduling.game import Community, SchedulingGame
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=2,
    inner_iterations=1,
    ce_samples=8,
    ce_elites=2,
    ce_iterations=2,
    convergence_tol=0.1,
)

price_vectors = arrays(
    np.float64, HORIZON, elements=st.floats(min_value=0.005, max_value=0.1)
)


@pytest.fixture(scope="module")
def community():
    return Community(customers=(make_customer(0), make_customer(1)), counts=(3, 3))


class TestGameUnderRandomPrices:
    @settings(max_examples=10, deadline=None)
    @given(prices=price_vectors)
    def test_energy_conservation_holds(self, community, prices):
        result = SchedulingGame(community, prices, config=FAST).solve(
            rng=np.random.default_rng(0)
        )
        expected = sum(
            count * (c.base_load_array.sum() + c.total_task_energy)
            for c, count in zip(community.customers, community.counts)
        )
        assert result.community_load.sum() == pytest.approx(expected, rel=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(prices=price_vectors)
    def test_schedules_feasible(self, community, prices):
        result = SchedulingGame(community, prices, config=FAST).solve(
            rng=np.random.default_rng(0)
        )
        for state in result.states:
            for schedule in state.schedules:
                schedule.validate()

    @settings(max_examples=10, deadline=None)
    @given(prices=price_vectors)
    def test_grid_demand_nonnegative_and_finite(self, community, prices):
        result = SchedulingGame(community, prices, config=FAST).solve(
            rng=np.random.default_rng(0)
        )
        grid = result.grid_demand
        assert np.all(np.isfinite(grid))
        assert np.all(grid >= 0.0)

    @settings(max_examples=8, deadline=None)
    @given(
        prices=price_vectors,
        scale=st.sampled_from([0.5, 2.0, 4.0]),
    )
    def test_price_scale_invariance(self, community, prices, scale):
        """Scaling every price equally leaves the equilibrium load
        unchanged (the quadratic game's argmin is scale-invariant).

        Scales are powers of two on purpose: those rescale every cost
        comparison exactly in binary floating point, so the argmin is
        preserved bit for bit.  An arbitrary scale rounds each product
        differently and can flip near-tied best-response decisions —
        hypothesis eventually finds such a flip (it exists in the
        original implementation too), which falsifies the stronger
        property without indicating a solver bug."""
        a = SchedulingGame(community, prices, config=FAST).solve(
            rng=np.random.default_rng(0)
        )
        b = SchedulingGame(community, prices * scale, config=FAST).solve(
            rng=np.random.default_rng(0)
        )
        np.testing.assert_allclose(a.community_load, b.community_load, atol=1e-6)

    @settings(max_examples=8, deadline=None)
    @given(prices=price_vectors)
    def test_residuals_trend_downward(self, community, prices):
        """Best-response residuals never grow over the final rounds."""
        config = GameConfig(
            max_rounds=4,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=1e-6,
        )
        result = SchedulingGame(community, prices, config=config).solve(
            rng=np.random.default_rng(0)
        )
        residuals = result.residuals
        if len(residuals) >= 2:
            assert residuals[-1] <= residuals[0] + 1e-9
