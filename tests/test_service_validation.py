"""Request-validation tests: malformed input yields structured 4xx JSON.

The wire contract under test: every client error is a JSON body
``{"error": ..., "code": ..., "status": ...}`` with a matching 4xx
status code — never a bare 500 — and the fault endpoints validate their
payloads the same way.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    SolarConfig,
    TimeGrid,
)
from repro.service.app import DetectionService, create_server
from repro.simulation.cache import GameSolutionCache
from repro.stream.pipeline import build_synthetic_engine


@pytest.fixture(scope="module")
def tiny_config() -> CommunityConfig:
    return CommunityConfig(
        n_customers=6,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=12, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        solar=SolarConfig(peak_kw=0.7),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4, hack_probability=0.15),
        seed=11,
    )


@pytest.fixture(scope="module")
def cache() -> GameSolutionCache:
    return GameSolutionCache()


@pytest.fixture()
def service_url(tiny_config, cache, tmp_path):
    """A live server on an ephemeral port, torn down after the test."""
    engine = build_synthetic_engine(
        tiny_config, n_days=2, attack_days=(0, 1), cache=cache
    )
    service = DetectionService(engine, checkpoint_path=tmp_path / "service.json")
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def _post(base: str, path: str, body: dict | None = None) -> dict:
    return _post_raw(base, path, json.dumps(body or {}).encode("utf-8"))


def _post_raw(base: str, path: str, data: bytes) -> dict:
    request = urllib.request.Request(
        base + path, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def _error_body(excinfo) -> dict:
    """Decode the structured JSON error body off an HTTPError."""
    body = json.loads(excinfo.value.read())
    assert body["status"] == excinfo.value.code
    assert isinstance(body["error"], str) and body["error"]
    assert isinstance(body["code"], str)
    return body


class TestAdvanceValidation:
    def test_unknown_field_is_structured_400(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/advance", {"max_events": 5, "speed": "ludicrous"})
        assert excinfo.value.code == 400
        body = _error_body(excinfo)
        assert body["code"] == "bad_request"
        assert "speed" in body["error"]

    @pytest.mark.parametrize("bad", [True, "3", 1.5, [3], {"n": 3}])
    def test_non_integer_max_events_is_400(self, service_url, bad):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/advance", {"max_events": bad})
        assert excinfo.value.code == 400
        assert "max_events" in _error_body(excinfo)["error"]

    def test_negative_until_day_is_400(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/advance", {"until_day": -1})
        assert excinfo.value.code == 400
        assert "until_day" in _error_body(excinfo)["error"]

    def test_integral_float_is_accepted(self, service_url):
        base, _ = service_url
        summary = _post(base, "/advance", {"max_events": 4.0})
        assert summary["events_pumped"] == 4

    def test_invalid_json_body_is_400(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(base, "/advance", b"{max_events: 5}")
        assert excinfo.value.code == 400
        assert "JSON" in _error_body(excinfo)["error"]

    def test_non_object_json_body_is_400(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(base, "/advance", b"[1, 2, 3]")
        assert excinfo.value.code == 400
        assert "JSON object" in _error_body(excinfo)["error"]


class TestCheckpointValidation:
    def test_non_empty_body_is_400(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/checkpoint", {"path": "/tmp/elsewhere.json"})
        assert excinfo.value.code == 400
        assert "path" in _error_body(excinfo)["error"]

    def test_empty_body_still_checkpoints(self, service_url):
        base, _ = service_url
        _post(base, "/advance", {"max_events": 5})
        saved = _post(base, "/checkpoint")
        assert saved["events_processed"] == 5


class TestNotFound:
    def test_unknown_get_route_is_structured_404(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/nope")
        assert excinfo.value.code == 404
        body = _error_body(excinfo)
        assert body["code"] == "not_found"
        assert "/nope" in body["error"]

    def test_unknown_post_route_is_structured_404(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/events/bulk", {})
        assert excinfo.value.code == 404
        assert _error_body(excinfo)["code"] == "not_found"


class TestFaultEndpoints:
    def test_faults_inactive_by_default(self, service_url):
        base, _ = service_url
        assert _get(base, "/faults") == {"active": False, "plan": None, "counts": {}}

    def test_install_builtin_plan_and_observe_counts(self, service_url):
        base, service = service_url
        installed = _post(base, "/faults", {"plan": "chaos", "seed": 9})
        assert installed["active"]
        assert installed["plan"]["seed"] == 9
        _post(base, "/advance", {})
        report = _get(base, "/faults")
        assert report["active"]
        assert report["plan"] == installed["plan"]
        assert sum(report["counts"].values()) > 0
        assert service.engine.fault_injector is not None
        metrics = _get(base, "/metrics")
        assert metrics["faults"]  # stream.faults.* counters surfaced

    def test_install_plan_object(self, service_url):
        base, _ = service_url
        installed = _post(
            base, "/faults", {"plan": {"drop_prob": 0.2}, "seed": 4}
        )
        assert installed["plan"]["drop_prob"] == pytest.approx(0.2)
        assert installed["plan"]["seed"] == 4

    def test_unknown_field_is_400(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/faults", {"plan": "chaos", "dry_run": True})
        assert excinfo.value.code == 400
        assert "dry_run" in _error_body(excinfo)["error"]

    def test_missing_plan_is_400(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/faults", {"seed": 1})
        assert excinfo.value.code == 400
        assert "plan" in _error_body(excinfo)["error"]

    def test_unknown_builtin_is_400(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/faults", {"plan": "earthquake"})
        assert excinfo.value.code == 400
        assert "earthquake" in _error_body(excinfo)["error"]

    @pytest.mark.parametrize("bad", [[0.1], 7, True, None])
    def test_non_name_non_object_plan_is_400(self, service_url, bad):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/faults", {"plan": bad})
        assert excinfo.value.code == 400

    def test_invalid_plan_object_is_400(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/faults", {"plan": {"drop_prob": 1.5}})
        assert excinfo.value.code == 400
        assert "drop_prob" in _error_body(excinfo)["error"]
