"""Checkpoint/resume property tests: a killed stream must continue
bitwise-identically to one that never stopped, from any cut point."""

import json

import numpy as np
import pytest

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    SolarConfig,
    TimeGrid,
)
from repro.simulation.cache import GameSolutionCache
from repro.stream.checkpoint import (
    load_checkpoint,
    resume_engine,
    save_checkpoint,
)
from repro.stream.pipeline import build_replay_engine, build_synthetic_engine


@pytest.fixture(scope="module")
def tiny_config() -> CommunityConfig:
    return CommunityConfig(
        n_customers=8,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        solar=SolarConfig(peak_kw=0.7),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4, hack_probability=0.15),
        seed=11,
    )


@pytest.fixture(scope="module")
def cache() -> GameSolutionCache:
    return GameSolutionCache()


@pytest.fixture(scope="module")
def reference_timeline(tiny_config, cache):
    """The uninterrupted replay run every resumed run must match."""
    engine = build_replay_engine(
        tiny_config, detector="aware", n_slots=48, calibration_trials=5, cache=cache
    )
    engine.run()
    return [det.to_dict() for det in engine.timeline]


class TestReplayCheckpointProperty:
    def test_resume_is_bitwise_identical_over_random_cuts(
        self, tiny_config, cache, reference_timeline, tmp_path
    ):
        """Kill the stream at random event counts; the resumed engine's
        completed timeline must equal the uninterrupted one exactly —
        including RNG-dependent flags and repair-feedback dynamics."""
        rng = np.random.default_rng(123)
        total_events = 2 * (24 + 2)
        cuts = sorted(set(rng.integers(1, total_events, size=6).tolist()))
        for cut in cuts:
            engine = build_replay_engine(
                tiny_config,
                detector="aware",
                n_slots=48,
                calibration_trials=5,
                cache=cache,
            )
            engine.run(max_events=cut)
            path = tmp_path / f"cut{cut}.json"
            save_checkpoint(engine, path)
            resumed = resume_engine(path, cache=cache)
            assert resumed.events_processed == cut
            resumed.run()
            assert [
                det.to_dict() for det in resumed.timeline
            ] == reference_timeline, f"divergence after resume at event {cut}"

    def test_checkpoint_mid_run_does_not_perturb_stream(
        self, tiny_config, cache, reference_timeline, tmp_path
    ):
        """Saving a checkpoint is read-only: the checkpointing engine
        itself must still finish identically."""
        engine = build_replay_engine(
            tiny_config, detector="aware", n_slots=48, calibration_trials=5, cache=cache
        )
        engine.run(max_events=30)
        save_checkpoint(engine, tmp_path / "mid.json")
        engine.run()
        assert [det.to_dict() for det in engine.timeline] == reference_timeline


class TestSyntheticCheckpoint:
    def test_round_trip(self, tiny_config, cache, tmp_path):
        engine = build_synthetic_engine(
            tiny_config, n_days=4, attack_days=(1, 3), cache=cache
        )
        engine.run(max_events=40)
        path = save_checkpoint(engine, tmp_path / "syn.json")
        resumed = resume_engine(path, cache=cache)
        engine.run()
        resumed.run()
        assert [det.to_dict() for det in engine.timeline] == [
            det.to_dict() for det in resumed.timeline
        ]


class TestCheckpointFormat:
    def test_file_is_json_with_sections(self, tiny_config, cache, tmp_path):
        engine = build_synthetic_engine(tiny_config, n_days=1, cache=cache)
        engine.run(max_events=3)
        path = save_checkpoint(engine, tmp_path / "ck.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-stream-checkpoint"
        assert payload["build"]["kind"] == "synthetic"
        assert payload["state"]["events_processed"] == 3
        assert payload["state"]["rng"] is not None

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="not a stream checkpoint"):
            load_checkpoint(path)

    def test_load_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps(
                {"format": "repro-stream-checkpoint", "version": 99, "build": {}, "state": {}}
            )
        )
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_resume_rejects_unknown_kind(self, tiny_config):
        from repro.core.config import config_to_dict

        with pytest.raises(ValueError, match="unknown checkpoint build kind"):
            resume_engine(
                {
                    "build": {"kind": "bogus", "config": config_to_dict(tiny_config)},
                    "state": {},
                }
            )

    def test_no_tmp_file_left_behind(self, tiny_config, cache, tmp_path):
        engine = build_synthetic_engine(tiny_config, n_days=1, cache=cache)
        engine.run(max_events=2)
        save_checkpoint(engine, tmp_path / "ck.json")
        assert list(tmp_path.glob("*.tmp")) == []
