"""Semantics of attack composition and interaction with the price model.

Attacks are pure transformations of a price vector; these tests pin the
algebra the scenario engine and examples rely on (idempotence,
composition order, interaction with the floor-free guideline model).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.attacks.pricing import (
    BillIncreaseAttack,
    PeakIncreaseAttack,
    ScalingAttack,
    ZeroPriceAttack,
)

prices_st = arrays(np.float64, 24, elements=st.floats(0.001, 0.2))


class TestIdempotence:
    @settings(max_examples=40, deadline=None)
    @given(prices=prices_st)
    def test_zeroing_idempotent(self, prices):
        attack = ZeroPriceAttack(5, 8)
        once = attack.apply(prices)
        twice = attack.apply(once)
        np.testing.assert_array_equal(once, twice)

    @settings(max_examples=40, deadline=None)
    @given(prices=prices_st, strength=st.floats(0.0, 1.0))
    def test_peak_increase_composes_multiplicatively(self, prices, strength):
        attack = PeakIncreaseAttack(3, 6, strength=strength)
        twice = attack.apply(attack.apply(prices))
        direct = prices.copy()
        direct[3:7] *= (1.0 - strength) ** 2
        np.testing.assert_allclose(twice, direct, atol=1e-12)


class TestComposition:
    @settings(max_examples=30, deadline=None)
    @given(prices=prices_st)
    def test_disjoint_windows_commute(self, prices):
        a = ScalingAttack(2, 4, factor=0.5)
        b = ScalingAttack(10, 12, factor=0.25)
        np.testing.assert_allclose(a.apply(b.apply(prices)), b.apply(a.apply(prices)))

    @settings(max_examples=30, deadline=None)
    @given(prices=prices_st)
    def test_bill_and_peak_attacks_stack(self, prices):
        """A bill attack outside the window composed with zeroing inside
        yields the classic lure-and-gouge shape."""
        lure = ZeroPriceAttack(12, 13)
        gouge = BillIncreaseAttack(12, 13, inflation=3.0)
        combined = gouge.apply(lure.apply(prices))
        assert combined[12] == pytest.approx(0.0) and combined[13] == pytest.approx(0.0)
        np.testing.assert_allclose(combined[:12], prices[:12] * 3.0)


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(prices=prices_st, strength=st.floats(0.0, 1.0))
    def test_peak_attack_never_raises_prices(self, prices, strength):
        out = PeakIncreaseAttack(0, 23, strength=strength).apply(prices)
        assert np.all(out <= prices + 1e-15)
        assert np.all(out >= 0.0)

    @settings(max_examples=40, deadline=None)
    @given(prices=prices_st, inflation=st.floats(1.0, 5.0))
    def test_bill_attack_never_lowers_prices(self, prices, inflation):
        out = BillIncreaseAttack(8, 10, inflation=inflation).apply(prices)
        assert np.all(out >= prices - 1e-15)

    @settings(max_examples=30, deadline=None)
    @given(prices=prices_st)
    def test_untouched_slots_bitwise_equal(self, prices):
        attack = ZeroPriceAttack(7, 9)
        out = attack.apply(prices)
        mask = attack.window_mask(prices.size)
        np.testing.assert_array_equal(out[~mask], prices[~mask])
