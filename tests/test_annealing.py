"""Tests for the simulated-annealing baseline."""

import numpy as np
import pytest

from repro.optimization.annealing import simulated_annealing


def sphere(x: np.ndarray) -> float:
    return float(np.sum((x - 0.6) ** 2))


class TestValidation:
    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            simulated_annealing(sphere, [1.0], [0.0])

    def test_bad_cooling(self):
        with pytest.raises(ValueError):
            simulated_annealing(sphere, [0.0], [1.0], cooling=1.0)

    def test_bad_temperature(self):
        with pytest.raises(ValueError):
            simulated_annealing(sphere, [0.0], [1.0], initial_temperature=0.0)

    def test_bad_x0_shape(self):
        with pytest.raises(ValueError, match="x0"):
            simulated_annealing(sphere, np.zeros(2), np.ones(2), x0=[0.5])


class TestOptimization:
    def test_convex_optimum(self, rng):
        result = simulated_annealing(
            sphere, np.zeros(2), np.ones(2), n_iterations=2000, rng=rng
        )
        np.testing.assert_allclose(result.x, 0.6, atol=0.05)
        assert result.n_evaluations == 2001

    def test_escapes_local_minimum(self, rng):
        """A double well with the start in the shallow basin."""

        def double_well(x):
            return float(
                ((x[0] - 0.2) ** 2) * ((x[0] - 0.9) ** 2) + 0.1 * x[0]
            )

        result = simulated_annealing(
            double_well,
            [0.0],
            [1.0],
            x0=[0.95],
            n_iterations=3000,
            initial_temperature=0.5,
            rng=rng,
        )
        assert result.x[0] < 0.5  # crossed into the deeper well at 0.2

    def test_history_monotone(self, rng):
        result = simulated_annealing(
            sphere, np.zeros(3), np.ones(3), n_iterations=200, rng=rng
        )
        history = np.array(result.history)
        assert np.all(np.diff(history) <= 1e-12)

    def test_projection_respected(self, rng):
        result = simulated_annealing(
            sphere,
            np.zeros(1),
            np.ones(1),
            n_iterations=300,
            rng=rng,
            projection=lambda x: np.round(x * 2) / 2,
        )
        assert result.x[0] in (0.0, 0.5, 1.0)

    def test_respects_box(self, rng):
        result = simulated_annealing(
            lambda x: -float(np.sum(x)), np.zeros(3), np.ones(3),
            n_iterations=500, rng=rng,
        )
        assert np.all(result.x <= 1.0 + 1e-12)
        np.testing.assert_allclose(result.x, 1.0, atol=0.05)
