"""Tests for the streaming event model and its wire format."""

import numpy as np
import pytest

from repro.stream.events import (
    DayBoundary,
    MeterReading,
    PriceUpdate,
    event_from_dict,
    event_to_dict,
)


class TestValidation:
    def test_price_update_rejects_negative_day(self):
        with pytest.raises(ValueError, match="day"):
            PriceUpdate(day=-1, clean_prices=np.ones(4), predicted_prices=np.ones(4))

    def test_price_update_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="predicted_prices"):
            PriceUpdate(day=0, clean_prices=np.ones(4), predicted_prices=np.ones(5))

    def test_price_update_rejects_empty(self):
        with pytest.raises(ValueError, match="clean_prices"):
            PriceUpdate(day=0, clean_prices=np.empty(0), predicted_prices=np.empty(0))

    def test_meter_reading_rejects_1d_received(self):
        with pytest.raises(ValueError, match="received"):
            MeterReading(slot=0, received=np.ones(4))

    def test_meter_reading_rejects_truth_shape(self):
        with pytest.raises(ValueError, match="truth"):
            MeterReading(
                slot=0, received=np.ones((3, 4)), truth=np.zeros(4, dtype=bool)
            )

    def test_day_boundary_rejects_negative(self):
        with pytest.raises(ValueError, match="day"):
            DayBoundary(day=-2)

    def test_coercion_to_arrays(self):
        update = PriceUpdate(
            day=0, clean_prices=[0.1, 0.2], predicted_prices=[0.1, 0.3]
        )
        assert isinstance(update.clean_prices, np.ndarray)
        reading = MeterReading(slot=1, received=[[0.1, 0.2]])
        assert reading.n_meters == 1


class TestWireFormat:
    def test_price_update_round_trip(self):
        event = PriceUpdate(
            day=3,
            clean_prices=np.array([0.01, 0.04, 0.02]),
            predicted_prices=np.array([0.011, 0.039, 0.021]),
        )
        back = event_from_dict(event_to_dict(event))
        assert isinstance(back, PriceUpdate)
        assert back.day == 3
        np.testing.assert_array_equal(back.clean_prices, event.clean_prices)
        np.testing.assert_array_equal(back.predicted_prices, event.predicted_prices)

    def test_meter_reading_round_trip_with_truth(self):
        event = MeterReading(
            slot=17,
            received=np.array([[0.1, 0.2], [0.3, 0.4]]),
            truth=np.array([True, False]),
        )
        back = event_from_dict(event_to_dict(event))
        assert isinstance(back, MeterReading)
        assert back.slot == 17
        np.testing.assert_array_equal(back.received, event.received)
        np.testing.assert_array_equal(back.truth, event.truth)

    def test_meter_reading_round_trip_without_truth(self):
        event = MeterReading(slot=0, received=np.ones((2, 3)))
        payload = event_to_dict(event)
        assert "truth" not in payload
        assert event_from_dict(payload).truth is None

    def test_day_boundary_round_trip(self):
        back = event_from_dict(event_to_dict(DayBoundary(day=5)))
        assert isinstance(back, DayBoundary)
        assert back.day == 5

    def test_floats_survive_exactly(self):
        """JSON uses shortest-round-trip repr: values come back bitwise."""
        values = np.array([[0.1 + 0.2, 1e-17, np.pi]])
        back = event_from_dict(event_to_dict(MeterReading(slot=0, received=values)))
        assert back.received.tobytes() == values.tobytes()

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            event_from_dict({"type": "bogus"})

    def test_missing_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            event_from_dict({"day": 0})

    def test_to_dict_rejects_non_event(self):
        with pytest.raises(TypeError, match="not a stream event"):
            event_to_dict(object())
