"""Framework facade tests for the unaware variant and long-term surface."""

import numpy as np
import pytest

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    SolarConfig,
    TimeGrid,
)
from repro.core.framework import DetectionFramework, FrameworkResult


@pytest.fixture(scope="module")
def config():
    return CommunityConfig(
        n_customers=8,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        solar=SolarConfig(peak_kw=0.6),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4, hack_probability=0.15),
        seed=41,
    )


class TestUnawareDetectorConstruction:
    def test_unaware_detector_uses_stripped_model(self, config):
        framework = DetectionFramework(config, aware=False).train()
        day = framework.sample_day(weather=0.7)
        detector = framework.single_event_detector(day.predicted_prices)
        # the predicted-side simulator models no net metering
        predicted_sim_community = detector.simulator.community
        assert any(c.has_net_metering for c in predicted_sim_community.customers)
        # received side is the true community; P_p comes from the stripped
        # model, so the two PARs generally differ
        assert detector.predicted_par > 0

    def test_aware_detector_shares_one_simulator(self, config):
        framework = DetectionFramework(config, aware=True).train()
        day = framework.sample_day(weather=0.7)
        a = framework.single_event_detector(day.predicted_prices)
        b = framework.single_event_detector(day.predicted_prices)
        assert a.simulator is b.simulator  # memoized across detectors


class TestLongTermSurface:
    def test_run_long_term_returns_result(self, config):
        framework = DetectionFramework(config, aware=True).train()
        result = framework.run_long_term(n_slots=24)
        assert isinstance(result, FrameworkResult)
        assert 0.0 <= result.observation_accuracy <= 1.0
        assert result.mean_par >= 1.0
        assert result.labor_cost >= 0.0
        assert result.n_repairs == result.scenario.n_repairs

    def test_unaware_long_term_runs(self, config):
        framework = DetectionFramework(config, aware=False).train()
        result = framework.run_long_term(n_slots=24)
        assert result.scenario.detector == "unaware"
