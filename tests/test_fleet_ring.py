"""Consistent-hash ring: determinism, balance, and stability proofs."""

import pytest

from repro.fleet.ring import HashRing, ring_point

KEYS = [f"c{i:04d}" for i in range(240)]


class TestRingPoint:
    def test_stable_across_instances(self):
        assert ring_point("c0001") == ring_point("c0001")
        assert 0 <= ring_point("anything") < 2**64

    def test_distinct_tokens_distinct_points(self):
        points = {ring_point(k) for k in KEYS}
        assert len(points) == len(KEYS)


class TestAssignment:
    def test_deterministic_across_rings(self):
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s0", "s1"])  # construction order must not matter
        assert a.assignments(KEYS) == b.assignments(KEYS)

    def test_round_trip_preserves_assignments(self):
        ring = HashRing(["s0", "s1", "s2"], vnodes=32)
        clone = HashRing.from_dict(ring.to_dict())
        assert clone.vnodes == 32
        assert clone.shards == ring.shards
        assert clone.assignments(KEYS) == ring.assignments(KEYS)

    def test_balance_smoke(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        counts = {sid: 0 for sid in ring.shards}
        for key in KEYS:
            counts[ring.assign(key)] += 1
        # 64 vnodes keeps every shard well away from starvation.
        assert all(count >= len(KEYS) // 16 for count in counts.values())

    def test_all_keys_map_to_known_shards(self):
        ring = HashRing(["s0", "s1"])
        assert set(ring.assignments(KEYS).values()) <= {"s0", "s1"}


class TestStabilityProofs:
    """The consistent-hashing reassignment guarantees, checked exactly."""

    def test_add_shard_moves_keys_only_to_the_new_shard(self):
        ring = HashRing(["s0", "s1", "s2"])
        before = ring.assignments(KEYS)
        ring.add_shard("s3")
        after = ring.assignments(KEYS)
        moved = {k for k in KEYS if before[k] != after[k]}
        assert moved, "a new shard should claim at least one key"
        assert all(after[k] == "s3" for k in moved)
        # No key moved between the pre-existing shards.
        for key in sorted(set(KEYS) - moved):
            assert after[key] == before[key]

    def test_remove_shard_moves_only_its_keys(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        before = ring.assignments(KEYS)
        ring.remove_shard("s3")
        after = ring.assignments(KEYS)
        for key in KEYS:
            if before[key] == "s3":
                assert after[key] != "s3"
            else:
                assert after[key] == before[key]

    def test_add_then_remove_restores_the_original_mapping(self):
        ring = HashRing(["s0", "s1"])
        before = ring.assignments(KEYS)
        ring.add_shard("s2")
        ring.remove_shard("s2")
        assert ring.assignments(KEYS) == before


class TestErrors:
    def test_assign_on_empty_ring(self):
        with pytest.raises(ValueError, match="empty ring"):
            HashRing().assign("c0001")

    def test_duplicate_shard(self):
        ring = HashRing(["s0"])
        with pytest.raises(ValueError, match="already on the ring"):
            ring.add_shard("s0")

    def test_remove_unknown_shard(self):
        with pytest.raises(ValueError, match="not on the ring"):
            HashRing(["s0"]).remove_shard("s9")

    def test_bad_vnodes(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)

    def test_bad_shard_id(self):
        with pytest.raises(ValueError, match="non-empty string"):
            HashRing([""])

    def test_membership_helpers(self):
        ring = HashRing(["s0", "s1"])
        assert len(ring) == 2
        assert "s0" in ring
        assert "s9" not in ring
