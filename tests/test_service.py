"""Tests for the HTTP monitoring service (stdlib server, real sockets)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    SolarConfig,
    TimeGrid,
)
from repro.service.app import DetectionService, ServiceError, create_server
from repro.simulation.cache import GameSolutionCache
from repro.stream.checkpoint import resume_engine
from repro.stream.events import event_to_dict
from repro.stream.pipeline import build_synthetic_engine


@pytest.fixture(scope="module")
def tiny_config() -> CommunityConfig:
    return CommunityConfig(
        n_customers=8,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        solar=SolarConfig(peak_kw=0.7),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4, hack_probability=0.15),
        seed=11,
    )


@pytest.fixture()
def service_url(tiny_config, tmp_path):
    """A live server on an ephemeral port, torn down after the test."""
    engine = build_synthetic_engine(
        tiny_config, n_days=4, attack_days=(1, 3), cache=GameSolutionCache()
    )
    service = DetectionService(engine, checkpoint_path=tmp_path / "service.json")
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def _post(base: str, path: str, body: dict | None = None) -> dict:
    data = json.dumps(body or {}).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, service_url):
        base, _ = service_url
        assert _get(base, "/healthz") == {"ok": True}

    def test_advance_and_status(self, service_url):
        base, _ = service_url
        summary = _post(base, "/advance", {"until_day": 2})
        assert summary["detections"] == 48
        assert not summary["exhausted"]
        status = _get(base, "/status")
        assert status["days_completed"] == 2
        assert status["slots_processed"] == 48
        assert status["events_processed"] == summary["events_pumped"]

    def test_detections_slice(self, service_url):
        base, _ = service_url
        _post(base, "/advance", {"until_day": 1})
        payload = _get(base, "/detections?since=10&limit=5")
        assert payload["total_slots"] == 24
        assert len(payload["detections"]) == 5
        assert payload["truncated"]
        assert payload["detections"][0]["slot"] == 10

    def test_metrics_reports_interval_deltas(self, service_url):
        base, _ = service_url
        _post(base, "/advance", {"max_events": 30})
        first = _get(base, "/metrics")
        assert first["interval"].get("stream.events") == pytest.approx(30.0)
        second = _get(base, "/metrics")
        assert "stream.events" not in second["interval"]
        _post(base, "/advance", {"max_events": 5})
        third = _get(base, "/metrics")
        assert third["interval"].get("stream.events") == pytest.approx(5.0)
        assert third["totals"]["stream.events"] >= 35.0

    def test_push_event_runs_detection(self, service_url, tiny_config):
        base, service = service_url
        source = build_synthetic_engine(
            tiny_config, n_days=1, cache=GameSolutionCache()
        ).source
        update = source.next_event()
        reading = source.next_event()
        assert _post(base, "/events", event_to_dict(update))["accepted"]
        response = _post(base, "/events", event_to_dict(reading))
        assert response["detection"]["slot"] == reading.slot
        assert _get(base, "/status")["slots_processed"] == 1

    def test_checkpoint_endpoint_resumes(self, service_url):
        base, service = service_url
        _post(base, "/advance", {"until_day": 2})
        saved = _post(base, "/checkpoint")
        resumed = resume_engine(saved["checkpoint"], cache=GameSolutionCache())
        _post(base, "/advance", {})  # run the live engine to exhaustion
        resumed.run()
        assert [d.to_dict() for d in resumed.timeline] == [
            d.to_dict() for d in service.engine.timeline
        ]

    def test_bad_event_is_400(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/events", {"type": "bogus"})
        assert excinfo.value.code == 400

    def test_reading_before_day_is_400(self, service_url, tiny_config):
        base, _ = service_url
        source = build_synthetic_engine(
            tiny_config, n_days=1, cache=GameSolutionCache()
        ).source
        source.next_event()  # drop the price update
        reading = source.next_event()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/events", event_to_dict(reading))
        assert excinfo.value.code == 400

    def test_unknown_route_is_404(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/nope")
        assert excinfo.value.code == 404

    def test_bad_query_is_400(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/detections?since=banana")
        assert excinfo.value.code == 400


class TestServiceDirect:
    def test_checkpoint_without_path_rejected(self, tiny_config):
        engine = build_synthetic_engine(
            tiny_config, n_days=1, cache=GameSolutionCache()
        )
        service = DetectionService(engine)
        with pytest.raises(ServiceError, match="checkpoint path"):
            service.checkpoint()

    def test_advance_validates_bounds(self, tiny_config):
        engine = build_synthetic_engine(
            tiny_config, n_days=1, cache=GameSolutionCache()
        )
        service = DetectionService(engine)
        with pytest.raises(ServiceError, match="max_events"):
            service.advance(max_events=-1)
        with pytest.raises(ServiceError, match="until_day"):
            service.advance(until_day=-2)


class TestConcurrentAdvance:
    """Concurrent ``POST /advance`` requests must serialize on the
    service lock: the pipeline (belief filter, RNG, timeline) is not
    re-entrant, so interleaved pumping would corrupt the run."""

    def test_parallel_posts_serialize_without_losing_events(self, service_url):
        base, service = service_url
        n_threads, per_call = 4, 20
        barrier = threading.Barrier(n_threads)
        results: list[dict] = []
        errors: list[Exception] = []

        def worker() -> None:
            try:
                barrier.wait(timeout=10)
                results.append(_post(base, "/advance", {"max_events": per_call}))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(results) == n_threads

        # Serialized execution: every event was pumped exactly once.
        total = sum(r["events_pumped"] for r in results)
        assert total == n_threads * per_call
        assert service.engine.events_processed == total

        # The timeline is one consistent, strictly ordered run: the same
        # state a single caller pumping the same budget would produce.
        slots = [det.slot for det in service.engine.timeline]
        assert slots == sorted(slots)
        assert len(slots) == len(set(slots))
        assert len(slots) == service.engine.pipeline.n_slots_processed
