"""Load generator determinism and the fleet capacity bench harness."""

import json

import pytest

from repro.faults.plan import builtin_plan
from repro.fleet.bench import main as fleet_bench_main
from repro.fleet.loadgen import LoadGenerator


class TestLoadGenerator:
    def test_specs_reproducible(self, fleet_config):
        a = LoadGenerator(fleet_config, n_communities=4, seed=3).specs()
        b = LoadGenerator(fleet_config, n_communities=4, seed=3).specs()
        assert a == b

    def test_seed_changes_the_workload(self, fleet_config):
        a = LoadGenerator(fleet_config, n_communities=4, seed=3).specs()
        b = LoadGenerator(fleet_config, n_communities=4, seed=4).specs()
        assert a != b

    def test_prefix_property(self, fleet_config):
        small = LoadGenerator(fleet_config, n_communities=2, seed=3).specs()
        large = LoadGenerator(fleet_config, n_communities=6, seed=3).specs()
        assert large[:2] == small

    def test_specs_vary_per_community(self, fleet_config):
        specs = LoadGenerator(fleet_config, n_communities=6, seed=3).specs()
        assert len({s.community_id for s in specs}) == 6
        assert len({s.seed for s in specs}) == 6
        # Attack windows stay inside the stream.
        for spec in specs:
            start, end = spec.attack_days
            assert 0 <= start < end <= spec.n_days
            lo, hi = 0.4, 0.8
            assert lo <= spec.attack_strength <= hi

    def test_fault_template_reseeded_per_community(self, fleet_config):
        template = builtin_plan("chaos")
        specs = LoadGenerator(
            fleet_config, n_communities=4, seed=3, faults=template
        ).specs()
        seeds = [spec.faults.seed for spec in specs]
        assert len(set(seeds)) == 4
        # Template fields survive the re-seeding.
        assert all(
            spec.faults.stall_prob == template.stall_prob for spec in specs
        )

    def test_validation(self, fleet_config):
        with pytest.raises(ValueError, match="n_communities"):
            LoadGenerator(fleet_config, n_communities=0)
        with pytest.raises(ValueError, match="n_days"):
            LoadGenerator(fleet_config, n_communities=1, n_days=0)
        with pytest.raises(ValueError, match="attack_strength_range"):
            LoadGenerator(
                fleet_config, n_communities=1, attack_strength_range=(0.8, 0.2)
            )

    def test_envelopes_are_lockstep(self, fleet_config):
        generator = LoadGenerator(
            fleet_config, n_communities=3, n_days=1, seed=3
        )
        envelopes = list(generator.envelopes())
        # events_per_day per community; every envelope carries each live
        # community exactly once, in ascending community-id order.
        source = generator.source_for(generator.specs()[0])
        assert len(envelopes) == source.events_per_day
        for envelope in envelopes:
            cids = [entry["community"] for entry in envelope["entries"]]
            assert cids == sorted(cids)
            assert len(cids) == 3
        first_types = [e["event"]["type"] for e in envelopes[0]["entries"]]
        assert first_types == ["price_update"] * 3
        last_types = [e["event"]["type"] for e in envelopes[-1]["entries"]]
        assert last_types == ["day_boundary"] * 3


class TestFleetBenchMain:
    def test_writes_trajectory_entry(self, tmp_path):
        out = tmp_path / "BENCH_fleet.json"
        code = fleet_bench_main(
            [
                "--communities", "2",
                "--shards", "2",
                "--days", "1",
                "--customers", "6",
                "--meters", "3",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload["entries"]) == 1
        entry = payload["entries"][0]
        assert entry["fleet"]["communities"] == 2
        assert entry["throughput"]["events"] > 0
        assert entry["throughput"]["events_per_s"] > 0
        latency = entry["tick_latency"]
        assert latency["p50_ms"] <= latency["p99_ms"] <= latency["max_ms"]
        assert set(entry["per_shard"]) == {"s0", "s1"}
        assert entry["fleet_counters"]["fleet.ticks"] == latency["ticks"]
        # Appending accumulates a trajectory.
        assert fleet_bench_main(
            [
                "--communities", "2", "--shards", "2", "--days", "1",
                "--customers", "6", "--meters", "3", "--max-ticks", "4",
                "--out", str(out),
            ]
        ) == 0
        payload = json.loads(out.read_text())
        assert len(payload["entries"]) == 2
        assert payload["entries"][1]["tick_latency"]["ticks"] == 4

    def test_warm_percentiles_exclude_the_cold_first_tick(self, tmp_path):
        """Cold-start skew is labelled, never folded into the warm block."""
        out = tmp_path / "BENCH_fleet.json"
        assert fleet_bench_main(
            [
                "--communities", "2", "--shards", "2", "--days", "1",
                "--customers", "6", "--meters", "3", "--max-ticks", "6",
                "--out", str(out),
            ]
        ) == 0
        latency = json.loads(out.read_text())["entries"][0]["tick_latency"]
        assert latency["cold_first_tick_ms"] >= 0.0
        warm = latency["warm"]
        # The warm window is everything after the first tick.
        assert warm["ticks"] == latency["ticks"] - 1
        assert warm["p50_ms"] <= warm["p95_ms"] <= warm["p99_ms"] <= warm["max_ms"]
        # Warm stats are a subset of the raw ticks: nothing warm can
        # exceed the overall max, which also covers the cold tick.
        assert warm["max_ms"] <= latency["max_ms"]
        assert max(warm["max_ms"], latency["cold_first_tick_ms"]) == (
            latency["max_ms"]
        )

    def test_rejects_bad_shape(self, tmp_path):
        with pytest.raises(SystemExit):
            fleet_bench_main(["--communities", "0"])
