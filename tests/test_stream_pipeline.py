"""Tests for the online pipeline, synthetic engine and timeline rendering."""

import numpy as np
import pytest

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    SolarConfig,
    TimeGrid,
)
from repro.reporting.ascii import render_stream_timeline
from repro.simulation.cache import GameSolutionCache
from repro.stream.events import DayBoundary, MeterReading, PriceUpdate
from repro.stream.pipeline import SlotDetection, build_synthetic_engine
from repro.stream.source import SyntheticSource, synthetic_price_profile


@pytest.fixture(scope="module")
def tiny_config() -> CommunityConfig:
    return CommunityConfig(
        n_customers=8,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        solar=SolarConfig(peak_kw=0.7),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4, hack_probability=0.15),
        seed=11,
    )


@pytest.fixture(scope="module")
def synthetic_engine(tiny_config):
    engine = build_synthetic_engine(
        tiny_config,
        n_days=5,
        attack_days=(1, 3),
        cache=GameSolutionCache(),
    )
    engine.run()
    return engine


class TestSyntheticSource:
    def test_event_order_per_day(self):
        source = SyntheticSource(n_meters=2, n_days=1, slots_per_day=3)
        events = [source.next_event() for _ in range(source.n_events)]
        assert isinstance(events[0], PriceUpdate)
        assert all(isinstance(e, MeterReading) for e in events[1:4])
        assert isinstance(events[4], DayBoundary)
        assert source.next_event() is None
        assert source.exhausted

    def test_deterministic(self):
        a = SyntheticSource(n_meters=2, n_days=2, attack_days=(1, 2), hacked_meters=(0,))
        b = SyntheticSource(n_meters=2, n_days=2, attack_days=(1, 2), hacked_meters=(0,))
        for _ in range(a.n_events):
            ea, eb = a.next_event(), b.next_event()
            assert type(ea) is type(eb)
            if isinstance(ea, MeterReading):
                np.testing.assert_array_equal(ea.received, eb.received)

    def test_attack_window_sets_truth(self):
        source = SyntheticSource(
            n_meters=3, n_days=3, slots_per_day=4, attack_days=(1, 2), hacked_meters=(2,)
        )
        truths = {}
        while (event := source.next_event()) is not None:
            if isinstance(event, MeterReading):
                truths.setdefault(event.slot // 4, []).append(event.truth.any())
        assert not any(truths[0])
        assert all(truths[1])
        assert not any(truths[2])

    def test_repair_clears_until_next_attack_day(self):
        source = SyntheticSource(
            n_meters=2, n_days=2, slots_per_day=4, attack_days=(0, 2), hacked_meters=(0,)
        )
        source.next_event()  # day-0 price update compromises meter 0
        assert source.next_event().truth[0]
        assert source.apply_repair() == 1
        assert not source.next_event().truth[0]

    def test_profile_validation(self):
        with pytest.raises(ValueError, match="slots_per_day"):
            synthetic_price_profile(0)
        with pytest.raises(ValueError, match="attack_days"):
            SyntheticSource(n_meters=1, n_days=1, attack_days=(2, 1))
        with pytest.raises(ValueError, match="out of range"):
            SyntheticSource(n_meters=1, n_days=1, hacked_meters=(3,))


class TestSyntheticEngine:
    def test_full_run_shape(self, synthetic_engine):
        timeline = synthetic_engine.timeline
        assert len(timeline) == 5 * 24
        assert [det.slot for det in timeline] == list(range(5 * 24))
        assert synthetic_engine.pipeline.days_completed == 5
        assert synthetic_engine.exhausted

    def test_attack_window_detected_and_repaired(self, synthetic_engine):
        repairs = [det for det in synthetic_engine.timeline if det.repaired]
        assert repairs, "scripted attack was never repaired"
        assert all(1 <= det.day < 3 for det in repairs)
        assert all(det.repaired_count > 0 for det in repairs)

    def test_benign_days_produce_no_flags(self, synthetic_engine):
        benign = [det for det in synthetic_engine.timeline if not (1 <= det.day < 3)]
        assert all(det.observation == 0 for det in benign)

    def test_detection_stats(self, synthetic_engine):
        stats = synthetic_engine.pipeline.detection_stats()
        assert stats["slots_processed"] == 120
        assert stats["days_completed"] == 5
        assert stats["repairs"] == len(
            [d for d in synthetic_engine.timeline if d.repaired]
        )
        assert 0.0 <= stats["observation_accuracy"] <= 1.0
        assert stats["belief_mean"] >= 0.0

    def test_run_until_day_stops_early(self, tiny_config):
        engine = build_synthetic_engine(
            tiny_config, n_days=4, attack_days=(1, 2), cache=GameSolutionCache()
        )
        engine.run(until_day=2)
        assert engine.pipeline.days_completed == 2
        assert not engine.exhausted

    def test_reading_before_price_update_rejected(self, tiny_config):
        engine = build_synthetic_engine(
            tiny_config, n_days=1, cache=GameSolutionCache()
        )
        reading = MeterReading(slot=0, received=np.full((4, 24), 0.03))
        with pytest.raises(RuntimeError, match="no active day"):
            engine.pipeline.handle(reading)

    def test_result_requires_complete_truth(self, synthetic_engine):
        result = synthetic_engine.result()
        assert result.truth.shape == (120, 4)
        assert result.slots_per_day == 24


class TestSlotDetection:
    def test_round_trip(self):
        det = SlotDetection(
            slot=7,
            day=0,
            flags=np.array([True, False]),
            observation=1,
            action=1,
            belief_mean=0.5,
            repaired=True,
            repaired_count=2,
            realized_grid=10.25,
            truth=np.array([True, True]),
        )
        back = SlotDetection.from_dict(det.to_dict())
        assert (back.slot, back.day, back.observation) == (7, 0, 1)
        assert (back.action, back.belief_mean) == (1, 0.5)
        assert back.repaired and back.repaired_count == 2
        assert back.realized_grid == det.realized_grid
        np.testing.assert_array_equal(back.flags, det.flags)
        np.testing.assert_array_equal(back.truth, det.truth)

    def test_none_fields_round_trip(self):
        det = SlotDetection(
            slot=0,
            day=0,
            flags=np.array([False]),
            observation=0,
            action=None,
            belief_mean=None,
            repaired=False,
            repaired_count=0,
            realized_grid=None,
            truth=None,
        )
        back = SlotDetection.from_dict(det.to_dict())
        assert back.action is None
        assert back.belief_mean is None
        assert back.realized_grid is None
        assert back.truth is None


class TestTimelineRendering:
    def test_renders_one_row_per_day(self, synthetic_engine):
        text = render_stream_timeline(synthetic_engine.timeline, slots_per_day=24)
        lines = text.splitlines()
        assert len(lines) == 5
        assert lines[0].startswith("day   0")
        assert "repairs" in lines[0] and "belief" in lines[0]

    def test_repair_glyph_present(self, synthetic_engine):
        text = render_stream_timeline(synthetic_engine.timeline, slots_per_day=24)
        assert "R" in text

    def test_empty_timeline(self):
        assert "empty" in render_stream_timeline([], slots_per_day=24)
