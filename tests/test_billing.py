"""Tests for real-time pricing and bill accounting."""

import numpy as np
import pytest

from repro.billing.bills import (
    BillBreakdown,
    attack_bill_impact,
    community_bills,
    customer_bill,
)
from repro.billing.realtime import RealTimePriceModel
from repro.core.config import GameConfig, PricingConfig
from repro.netmetering.cost import NetMeteringCostModel
from repro.scheduling.game import Community, SchedulingGame
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=2, inner_iterations=1, ce_samples=8, ce_elites=2, ce_iterations=2
)


class TestRealTimePriceModel:
    def test_price_tracks_demand(self):
        model = RealTimePriceModel(config=PricingConfig(), n_customers=10)
        low = model.price(np.full(4, 5.0))
        high = model.price(np.full(4, 20.0))
        assert np.all(high > low)

    def test_surge_exponent_convexity(self):
        linear = RealTimePriceModel(config=PricingConfig(), n_customers=10)
        surged = RealTimePriceModel(
            config=PricingConfig(), n_customers=10, surge_exponent=2.0
        )
        demand = np.array([30.0])
        # per-customer demand 3 > 1, so the surge raises the price
        assert surged.price(demand)[0] > linear.price(demand)[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RealTimePriceModel(config=PricingConfig(), n_customers=0)
        with pytest.raises(ValueError):
            RealTimePriceModel(
                config=PricingConfig(), n_customers=5, surge_exponent=0.5
            )
        model = RealTimePriceModel(config=PricingConfig(), n_customers=5)
        with pytest.raises(ValueError):
            model.price(np.array([-1.0]))


class TestBillBreakdown:
    def test_total(self):
        bill = BillBreakdown(
            purchases_kwh=10.0, sales_kwh=2.0, energy_charge=5.0, sellback_credit=1.0
        )
        assert bill.total == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BillBreakdown(-1.0, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            BillBreakdown(1.0, 0.0, -1.0, 0.0)


class TestCustomerBill:
    def test_buyer_only(self):
        model = NetMeteringCostModel(prices=(0.02,) * 4, sellback_divisor=2.0)
        trading = np.array([1.0, 2.0, 0.0, 1.0])
        others = np.full(4, 10.0)
        bill = customer_bill(trading, others, model)
        assert bill.purchases_kwh == pytest.approx(4.0)
        assert bill.sales_kwh == pytest.approx(0.0)
        assert bill.sellback_credit == pytest.approx(0.0)
        assert bill.total == pytest.approx(model.customer_cost(trading, others))

    def test_seller_gets_credit(self):
        model = NetMeteringCostModel(prices=(0.02,) * 4, sellback_divisor=2.0)
        trading = np.array([-1.0, 0.5, 0.0, 0.0])
        others = np.full(4, 10.0)
        bill = customer_bill(trading, others, model)
        assert bill.sales_kwh == pytest.approx(1.0)
        assert bill.sellback_credit > 0.0
        assert bill.total == pytest.approx(model.customer_cost(trading, others))


class TestCommunityBills:
    @pytest.fixture
    def game_result(self, rng):
        community = Community(
            customers=(make_customer(0), make_customer(1)), counts=(3, 3)
        )
        game = SchedulingGame(community, np.full(HORIZON, 0.03), config=FAST)
        return game.solve(rng=rng), game.cost_model

    def test_one_bill_per_archetype(self, game_result):
        result, cost_model = game_result
        bills = community_bills(result, cost_model)
        assert len(bills) == len(result.states)
        for bill in bills:
            assert bill.purchases_kwh >= 0.0

    def test_plain_customers_only_buy(self, game_result):
        result, cost_model = game_result
        for bill in community_bills(result, cost_model):
            assert bill.sales_kwh == pytest.approx(0.0)


class TestAttackBillImpact:
    def test_attack_increases_bill(self, rng):
        """Piling load into a fake-cheap window raises the real-time bill
        (the quadratic real-time price punishes the spike)."""
        from repro.attacks.pricing import ZeroPriceAttack

        community = Community(
            customers=(make_customer(0), make_customer(1)), counts=(6, 6)
        )
        prices = np.full(HORIZON, 0.03)
        benign = SchedulingGame(community, prices, config=FAST).solve(rng=rng)
        attacked_prices = ZeroPriceAttack(18, 19).apply(prices)
        attacked = SchedulingGame(community, attacked_prices, config=FAST).solve(
            rng=np.random.default_rng(0)
        )
        model = RealTimePriceModel(
            config=PricingConfig(), n_customers=12, surge_exponent=1.0
        )
        impact = attack_bill_impact(benign, attacked, model)
        assert impact > 0.0

    def test_identical_outcomes_zero_impact(self, rng):
        community = Community(customers=(make_customer(0),), counts=(4,))
        result = SchedulingGame(
            community, np.full(HORIZON, 0.03), config=FAST
        ).solve(rng=rng)
        model = RealTimePriceModel(config=PricingConfig(), n_customers=4)
        assert attack_bill_impact(result, result, model) == pytest.approx(0.0)
