"""Extended load-prediction tests: aware/unaware structural relations."""

import numpy as np
import pytest

from repro.core.config import BatteryConfig, GameConfig
from repro.prediction.load import predict_community_load
from repro.scheduling.game import Community
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=2, inner_iterations=1, ce_samples=8, ce_elites=2, ce_iterations=2
)

BATTERY = BatteryConfig(
    capacity_kwh=1.5, initial_kwh=0.0, max_charge_kw=0.75, max_discharge_kw=0.75
)


@pytest.fixture(scope="module")
def community():
    plain = make_customer(0)
    solar = make_customer(1, battery=BATTERY, pv_peak=0.7)
    return Community(customers=(plain, solar), counts=(4, 4))


class TestAwareUnawareRelations:
    def test_unaware_ignores_nm_by_construction(self, community, rng):
        """The unaware prediction is bit-identical to an aware prediction on
        the stripped community."""
        prices = np.full(HORIZON, 0.03)
        unaware = predict_community_load(
            community, prices, aware=False, config=FAST,
            rng=np.random.default_rng(1),
        )
        stripped = predict_community_load(
            community.without_net_metering(), prices, aware=True, config=FAST,
            rng=np.random.default_rng(1),
        )
        np.testing.assert_allclose(unaware.load, stripped.load)
        np.testing.assert_allclose(unaware.grid_demand, stripped.grid_demand)

    def test_aware_buys_less_total_energy(self, community, rng):
        """PV self-consumption means aware grid totals are lower."""
        prices = np.full(HORIZON, 0.03)
        aware = predict_community_load(
            community, prices, aware=True, config=FAST, rng=rng
        )
        unaware = predict_community_load(
            community, prices, aware=False, config=FAST,
            rng=np.random.default_rng(0),
        )
        assert aware.grid_demand.sum() < unaware.grid_demand.sum()

    def test_consumption_total_identical(self, community, rng):
        """Both variants schedule the same appliance energy — only the grid
        position differs."""
        prices = np.full(HORIZON, 0.03)
        aware = predict_community_load(
            community, prices, aware=True, config=FAST, rng=rng
        )
        unaware = predict_community_load(
            community, prices, aware=False, config=FAST,
            rng=np.random.default_rng(0),
        )
        assert aware.load.sum() == pytest.approx(unaware.load.sum())

    def test_sellback_divisor_passes_through(self, community, rng):
        prices = np.full(HORIZON, 0.03)
        generous = predict_community_load(
            community, prices, aware=True, config=FAST,
            sellback_divisor=1.0, rng=np.random.default_rng(2),
        )
        assert generous.load.shape == (HORIZON,)
        assert generous.par >= 1.0
