"""Tests for the day-to-day weather process."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.weather import DEFAULT_WEATHER, WeatherModel


class TestWeatherModel:
    def test_default_statistics(self):
        model = WeatherModel()
        assert model.mean == pytest.approx(0.5)
        assert 0.2 < model.std < 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            WeatherModel(alpha=0.0)
        with pytest.raises(ValueError):
            WeatherModel(beta=-1.0)

    def test_daily_factor_in_unit_interval(self, rng):
        model = WeatherModel()
        for _ in range(50):
            factor = model.daily_factor(rng)
            assert 0.0 <= factor <= 1.0

    def test_sample_days(self, rng):
        days = WeatherModel().sample_days(rng, 100)
        assert days.shape == (100,)
        assert np.all((0 <= days) & (days <= 1))
        # empirical mean within a few sigma of the analytic one
        assert days.mean() == pytest.approx(0.5, abs=0.1)

    def test_sample_days_validation(self, rng):
        with pytest.raises(ValueError):
            WeatherModel().sample_days(rng, 0)

    def test_sunny_quantile_ordering(self):
        model = WeatherModel()
        assert model.sunny_quantile(0.9) > model.sunny_quantile(0.5)
        with pytest.raises(ValueError):
            model.sunny_quantile(1.0)

    def test_sunnier_climate_shifts_mean(self):
        sunny = WeatherModel(alpha=5.0, beta=2.0)
        assert sunny.mean > DEFAULT_WEATHER.mean

    @settings(max_examples=30, deadline=None)
    @given(
        alpha=st.floats(0.5, 10.0),
        beta=st.floats(0.5, 10.0),
    )
    def test_analytic_moments_consistent(self, alpha, beta):
        model = WeatherModel(alpha=alpha, beta=beta)
        samples = model.sample_days(np.random.default_rng(0), 4000)
        assert samples.mean() == pytest.approx(model.mean, abs=0.03)
        assert samples.std() == pytest.approx(model.std, abs=0.03)


class TestDefaultWeatherIntegration:
    def test_history_uses_weather_model(self, rng):
        """A near-deterministic sunny climate produces consistently large
        renewables across net-metering days."""
        from repro.core.config import PricingConfig, SolarConfig
        from repro.data.pricing import generate_history

        history = generate_history(
            rng,
            n_customers=20,
            pricing=PricingConfig(),
            solar=SolarConfig(peak_kw=1.0),
            n_days_pre_nm=0,
            n_days_nm=6,
            mean_pv_per_customer_kw=1.0,
            weather=WeatherModel(alpha=200.0, beta=1.0),
        )
        midday = history.renewable.reshape(-1, 24)[:, 12]
        assert midday.std() / midday.mean() < 0.1
