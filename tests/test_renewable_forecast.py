"""Tests for the day-ahead renewable forecaster."""

import numpy as np
import pytest

from repro.core.config import PricingConfig, SolarConfig, TimeGrid
from repro.data.pricing import generate_history
from repro.prediction.renewable import (
    ClearSkyPersistenceForecaster,
    RenewableForecast,
    forecast_error_rmse,
)


@pytest.fixture
def grid():
    return TimeGrid(slots_per_day=24, n_days=1)


@pytest.fixture
def solar():
    return SolarConfig(peak_kw=0.5)


@pytest.fixture
def history(rng, solar):
    return generate_history(
        rng,
        n_customers=40,
        pricing=PricingConfig(),
        solar=solar,
        n_days_pre_nm=2,
        n_days_nm=8,
        mean_pv_per_customer_kw=0.25,
    )


class TestRenewableForecast:
    def test_validation(self):
        with pytest.raises(ValueError):
            RenewableForecast(expected=np.ones(3), std=np.ones(4))
        with pytest.raises(ValueError):
            RenewableForecast(expected=-np.ones(3), std=np.ones(3))

    def test_sample_nonnegative(self, rng):
        forecast = RenewableForecast(
            expected=np.array([0.1, 1.0]), std=np.array([5.0, 5.0])
        )
        for _ in range(10):
            assert np.all(forecast.sample(rng) >= 0.0)


class TestClearSkyPersistenceForecaster:
    def test_forecast_shape_and_night_zero(self, grid, solar, history):
        forecaster = ClearSkyPersistenceForecaster(grid, solar)
        forecast = forecaster.forecast(history, peak_community_kw=10.0)
        assert forecast.expected.shape == (24,)
        assert forecast.expected[0] == pytest.approx(0.0)  # night
        assert forecast.expected[12] > 0.0  # midday

    def test_pre_nm_history_gives_zero(self, grid, solar, rng):
        history = generate_history(
            rng,
            n_customers=40,
            pricing=PricingConfig(),
            solar=solar,
            n_days_pre_nm=5,
            n_days_nm=0,
        )
        forecaster = ClearSkyPersistenceForecaster(grid, solar)
        forecast = forecaster.forecast(history, peak_community_kw=10.0)
        np.testing.assert_array_equal(forecast.expected, 0.0)

    def test_forecast_tracks_history_scale(self, grid, solar, history):
        """The forecast's midday magnitude is on the order of recent
        midday generation."""
        forecaster = ClearSkyPersistenceForecaster(grid, solar)
        community_peak = 40 * 0.25
        forecast = forecaster.forecast(history, peak_community_kw=community_peak)
        recent_midday = history.renewable[-24:][10:15].mean()
        if recent_midday > 0:
            assert forecast.expected[10:15].mean() == pytest.approx(
                recent_midday, rel=2.0
            )

    def test_grid_mismatch_rejected(self, solar, history):
        other_grid = TimeGrid(slots_per_day=48)
        forecaster = ClearSkyPersistenceForecaster(other_grid, solar)
        with pytest.raises(ValueError, match="slots_per_day"):
            forecaster.forecast(history, peak_community_kw=10.0)

    def test_negative_peak_rejected(self, grid, solar, history):
        forecaster = ClearSkyPersistenceForecaster(grid, solar)
        with pytest.raises(ValueError):
            forecaster.forecast(history, peak_community_kw=-1.0)


class TestForecastError:
    def test_zero_for_perfect(self):
        forecast = RenewableForecast(
            expected=np.array([1.0, 2.0]), std=np.zeros(2)
        )
        assert forecast_error_rmse(forecast, np.array([1.0, 2.0])) == pytest.approx(0.0)

    def test_shape_checked(self):
        forecast = RenewableForecast(expected=np.ones(2), std=np.zeros(2))
        with pytest.raises(ValueError):
            forecast_error_rmse(forecast, np.ones(3))
