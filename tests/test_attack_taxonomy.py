"""Tests for the attack taxonomy: registry, families, streams, resume.

The taxonomy contracts of ``docs/SCENARIOS.md``:

- every registered attack kind serializes through the kind-tagged
  registry and round-trips to an equal instance; legacy kind-less
  payloads (pre-taxonomy checkpoints) still deserialize;
- zero-intensity attacks are inert — the attacked trace equals the
  clean trace bitwise — and honest families report exactly what they
  applied (object identity, so legacy events serialize unchanged);
- :class:`~repro.attacks.hacking.MeterHackingProcess` round-trips its
  compromise state per family, and its RNG consumption is
  family-independent (same seed ⇒ same compromise dynamics whatever
  the payload kind);
- scripted :class:`~repro.stream.source.ScriptedOccurrence` campaigns
  flow through the synthetic stream as first-class
  :class:`~repro.stream.events.AttackOccurrence` events, land on the
  pipeline's ground-truth ledger, and survive checkpoint cut/resume
  bitwise.
"""

import numpy as np
import pytest

from repro.attacks import (
    ATTACK_FAMILIES,
    CoordinatedRampAttack,
    MeterOutageAttack,
    PeakIncreaseAttack,
    TelemetrySpoofAttack,
    attack_from_dict,
    attack_kind,
    attack_kinds,
    attack_to_dict,
)
from repro.attacks.hacking import MeterHackingProcess
from repro.attacks.pricing import BillIncreaseAttack, ScalingAttack, ZeroPriceAttack
from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    SolarConfig,
    TimeGrid,
)
from repro.simulation.cache import GameSolutionCache
from repro.stream import (
    AttackOccurrence,
    ScriptedOccurrence,
    build_synthetic_engine,
    event_from_dict,
    event_to_dict,
    resume_engine,
    save_checkpoint,
)

PRICES = np.linspace(0.02, 0.12, 24)

SAMPLE_ATTACKS = {
    "zero_price": ZeroPriceAttack(start_slot=3, end_slot=5),
    "scaling": ScalingAttack(start_slot=3, end_slot=5, factor=0.4),
    "peak_increase": PeakIncreaseAttack(start_slot=3, end_slot=5, strength=0.6),
    "bill_increase": BillIncreaseAttack(start_slot=3, end_slot=5, inflation=1.5),
    "coordinated_ramp": CoordinatedRampAttack(
        start_slot=3, end_slot=8, intensity=0.5
    ),
    "telemetry_spoof": TelemetrySpoofAttack(
        start_slot=3, end_slot=5, strength=0.6, blend=0.5
    ),
    "meter_outage": MeterOutageAttack(start_slot=3, end_slot=5, strength=0.6),
}


@pytest.fixture(scope="module")
def tiny_config() -> CommunityConfig:
    return CommunityConfig(
        n_customers=8,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0,
            initial_kwh=0.0,
            max_charge_kw=0.5,
            max_discharge_kw=0.5,
        ),
        solar=SolarConfig(peak_kw=0.7),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4, hack_probability=0.15),
        seed=11,
    )


class TestRegistry:
    def test_every_kind_has_a_sample(self):
        assert sorted(SAMPLE_ATTACKS) == sorted(attack_kinds())

    @pytest.mark.parametrize("kind", sorted(SAMPLE_ATTACKS))
    def test_round_trip(self, kind):
        attack = SAMPLE_ATTACKS[kind]
        payload = attack_to_dict(attack)
        assert payload["kind"] == kind == attack_kind(attack)
        assert attack_from_dict(payload) == attack

    def test_legacy_kindless_payload_is_peak_increase(self):
        """Pre-taxonomy checkpoints serialized bare windowed fields."""
        attack = attack_from_dict(
            {"start_slot": 3, "end_slot": 5, "strength": 0.45}
        )
        assert attack == PeakIncreaseAttack(start_slot=3, end_slot=5, strength=0.45)

    def test_unknown_kind_and_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown attack kind"):
            attack_from_dict({"kind": "emp_burst", "start_slot": 0, "end_slot": 1})
        with pytest.raises(ValueError, match="unknown fields"):
            attack_from_dict(
                {"kind": "meter_outage", "start_slot": 0, "end_slot": 1, "x": 2}
            )


class TestInertnessAndReporting:
    def test_zero_intensity_ramp_is_inert(self):
        """Intensity 0 must leave the clean trace untouched, bitwise."""
        attack = CoordinatedRampAttack(start_slot=2, end_slot=9, intensity=0.0)
        attacked = attack.apply(PRICES)
        assert np.array_equal(attacked, PRICES)
        assert attack.report(PRICES, attacked) is attacked

    def test_ramp_discounts_monotonically_inside_window(self):
        attack = CoordinatedRampAttack(start_slot=4, end_slot=9, intensity=0.5)
        attacked = attack.apply(np.full(24, 0.1))
        window = attacked[4:10]
        assert np.all(np.diff(window) < 0)
        assert np.array_equal(attacked[:4], np.full(4, 0.1))
        assert np.array_equal(attacked[10:], np.full(14, 0.1))

    def test_honest_families_report_what_they_applied(self):
        """Default ``report`` is the identity on the applied trace."""
        for attack in (
            SAMPLE_ATTACKS["peak_increase"],
            SAMPLE_ATTACKS["coordinated_ramp"],
            SAMPLE_ATTACKS["zero_price"],
        ):
            attacked = attack.apply(PRICES)
            assert attack.report(PRICES, attacked) is attacked

    def test_outage_reports_the_clean_trace(self):
        """An outage meter responds to the attack but reports clean."""
        attack = SAMPLE_ATTACKS["meter_outage"]
        attacked = attack.apply(PRICES)
        assert not np.array_equal(attacked, PRICES)
        reported = attack.report(PRICES, attacked)
        assert np.array_equal(reported, PRICES)
        assert reported is not PRICES  # a copy: downstream may mutate

    def test_spoof_blends_report_toward_clean(self):
        attack = TelemetrySpoofAttack(
            start_slot=3, end_slot=5, strength=0.6, blend=0.25
        )
        attacked = attack.apply(PRICES)
        reported = attack.report(PRICES, attacked)
        assert np.array_equal(reported, attacked + 0.25 * (PRICES - attacked))
        full_blend = TelemetrySpoofAttack(
            start_slot=3, end_slot=5, strength=0.6, blend=1.0
        )
        assert np.array_equal(
            full_blend.report(PRICES, full_blend.apply(PRICES)), PRICES
        )
        no_blend = TelemetrySpoofAttack(
            start_slot=3, end_slot=5, strength=0.6, blend=0.0
        )
        assert no_blend.report(PRICES, attacked) is attacked


class TestHackingProcessFamilies:
    @pytest.mark.parametrize("family", ATTACK_FAMILIES)
    def test_state_round_trip(self, family):
        process = MeterHackingProcess(
            6, 0.6, rng=np.random.default_rng(5), attack_family=family
        )
        for _ in range(4):
            process.step()
        assert process.n_hacked > 0
        state = process.state_dict()
        clone = MeterHackingProcess(
            6, 0.6, rng=np.random.default_rng(999), attack_family=family
        )
        clone.load_state(state)
        assert clone.hacked_meters == process.hacked_meters
        assert clone.state_dict() == state
        for meter in clone.hacked_meters:
            assert attack_kind(meter.attack) == family

    def test_rng_consumption_is_family_independent(self):
        """Same seed ⇒ identical compromise dynamics for every family:
        each draw consumes exactly (width, start, strength)."""
        baselines = None
        for family in ATTACK_FAMILIES:
            process = MeterHackingProcess(
                8,
                0.5,
                rng=np.random.default_rng(21),  # repro: noqa[SEED003] same stream per family on purpose
                attack_family=family,
            )
            for _ in range(6):
                process.step()
            trace = [
                (m.meter_id, m.hacked_at_slot, m.attack.start_slot, m.attack.end_slot)
                for m in process.hacked_meters
            ]
            if baselines is None:
                baselines = trace
            else:
                assert trace == baselines, family

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="attack_family"):
            MeterHackingProcess(4, 0.5, attack_family="carrier_pigeon")


class TestOccurrenceEvents:
    def test_event_round_trip(self):
        event = AttackOccurrence(
            slot=48,
            kind="meter_outage",
            meter_ids=(1, 3),
            attack=attack_to_dict(SAMPLE_ATTACKS["meter_outage"]),
        )
        payload = event_to_dict(event)
        restored = event_from_dict(payload)
        assert restored == event
        assert event_to_dict(restored) == payload

    def test_scripted_occurrence_round_trip(self):
        occurrence = ScriptedOccurrence(
            days=(1, 3),  # active on days 1 and 2 (end-exclusive)
            meter_ids=(0, 2),
            attack=SAMPLE_ATTACKS["telemetry_spoof"],
        )
        assert ScriptedOccurrence.from_dict(occurrence.to_dict()) == occurrence
        assert occurrence.kind == "telemetry_spoof"

    def test_pipeline_ledger_and_cut_resume_bitwise(self, tiny_config, tmp_path):
        """Occurrences appear on the ground-truth ledger and a killed
        stream resumes bitwise-identically through them."""
        occurrences = (
            ScriptedOccurrence(
                days=(1, 3),
                meter_ids=(2,),
                attack=MeterOutageAttack(start_slot=4, end_slot=5, strength=0.6),
            ),
            ScriptedOccurrence(
                days=(2, 3),
                meter_ids=(0, 3),
                attack=TelemetrySpoofAttack(
                    start_slot=3, end_slot=5, strength=0.5, blend=0.8
                ),
            ),
        )
        cache = GameSolutionCache()
        reference = build_synthetic_engine(
            tiny_config,
            n_days=4,
            attack_days=(1, 3),
            occurrences=occurrences,
            cache=cache,
        )
        reference.run()
        ledger = reference.pipeline.occurrences
        assert [entry["kind"] for entry in ledger].count("meter_outage") >= 1
        assert [entry["kind"] for entry in ledger].count("telemetry_spoof") >= 1
        assert reference.pipeline.detection_stats()["occurrences"] == len(ledger)

        cut = build_synthetic_engine(
            tiny_config,
            n_days=4,
            attack_days=(1, 3),
            occurrences=occurrences,
            cache=cache,
        )
        cut.run(max_events=19)
        path = tmp_path / "cut.json"
        save_checkpoint(cut, path)
        resumed = resume_engine(path, cache=cache)
        resumed.run()
        assert len(resumed.pipeline.timeline) == len(reference.pipeline.timeline)
        for a, b in zip(reference.pipeline.timeline, resumed.pipeline.timeline):
            assert a.to_dict() == b.to_dict()
        assert resumed.pipeline.occurrences == ledger

    def test_zero_intensity_occurrence_leaves_stream_untouched(
        self, tiny_config
    ):
        """An inert (zero-intensity) campaign must not change a single
        detection or reading relative to a run with no campaign at all."""
        cache = GameSolutionCache()
        inert = ScriptedOccurrence(
            days=(1, 2),
            meter_ids=(1, 3),
            attack=CoordinatedRampAttack(start_slot=4, end_slot=9, intensity=0.0),
        )
        with_inert = build_synthetic_engine(
            tiny_config,
            n_days=3,
            attack_days=(1, 2),
            occurrences=(inert,),
            cache=cache,
        )
        with_inert.run()
        without = build_synthetic_engine(
            tiny_config, n_days=3, attack_days=(1, 2), cache=cache
        )
        without.run()
        assert len(with_inert.pipeline.timeline) == len(without.pipeline.timeline)
        for a, b in zip(with_inert.pipeline.timeline, without.pipeline.timeline):
            assert a.to_dict() == b.to_dict()
