"""Property-based invariants of the tariff layer (docs/SCENARIOS.md).

Hypothesis-driven pins on the billing identities the scenario matrix
rests on:

- customer cost is monotone in the buy rates (import slots only);
- the selling branch never *charges* for exports under the default
  rewarding sign, and both ``paper_literal`` sign readings are pinned
  against each other slot for slot;
- the NEM-3 export cap binds *exactly* at the cap — compensation below
  the cap matches the uncapped model bitwise, compensation beyond it is
  frozen at the cap quantity;
- ``FlatNetMetering`` with an explicit divisor reproduces the legacy
  :class:`~repro.netmetering.cost.NetMeteringCostModel` bitwise on
  random communities (the Table 1 equivalence, in miniature);
- serialization round-trips and fingerprints are stable for every
  registered tariff kind.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.netmetering.cost import NetMeteringCostModel
from repro.tariffs import (
    NAMED_TARIFFS,
    BuySellSpread,
    FlatNetMetering,
    MonthlyNetting,
    TariffCostModel,
    TimeOfUse,
    named_tariff,
    tariff_cost_terms,
    tariff_fingerprint,
    tariff_from_dict,
    tariff_to_dict,
)

H = 8

prices_st = arrays(np.float64, H, elements=st.floats(0.001, 0.2))
trading_st = arrays(np.float64, H, elements=st.floats(-4.0, 5.0))
others_st = arrays(np.float64, H, elements=st.floats(0.0, 40.0))
divisor_st = st.floats(1.0, 5.0)


class TestBuyRateMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(
        prices=prices_st,
        trading=trading_st,
        others=others_st,
        markup_lo=st.floats(0.5, 1.5),
        markup_hi=st.floats(0.0, 1.5),
    )
    def test_cost_monotone_in_buy_rates(
        self, prices, trading, others, markup_lo, markup_hi
    ):
        """Raising every buy rate never lowers any slot's cost.

        Import slots scale with the buy rate; export slots ignore it
        entirely, so the per-slot cost vector is elementwise monotone.
        """
        lo = TariffCostModel(
            buy_rates=tuple(prices * markup_lo),
            sell_rates=tuple(prices * 0.5),
        )
        hi = TariffCostModel(
            buy_rates=tuple(prices * (markup_lo + markup_hi)),
            sell_rates=tuple(prices * 0.5),
        )
        cost_lo = lo.customer_cost_per_slot(trading, others)
        cost_hi = hi.customer_cost_per_slot(trading, others)
        assert np.all(cost_hi >= cost_lo)
        # Export slots are buy-rate-independent — bitwise, not just close.
        exporting = trading < 0
        assert np.array_equal(cost_hi[exporting], cost_lo[exporting])


class TestSellingBranchSign:
    @settings(max_examples=60, deadline=None)
    @given(prices=prices_st, trading=trading_st, others=others_st)
    def test_rewarding_sign_never_charges_for_exports(
        self, prices, trading, others
    ):
        """Default reading: an exporting slot's cost is never positive."""
        model = TariffCostModel(
            buy_rates=tuple(prices), sell_rates=tuple(prices * 0.5)
        )
        per_slot = model.customer_cost_per_slot(trading, others)
        assert np.all(per_slot[trading < 0] <= 0.0)

    @settings(max_examples=60, deadline=None)
    @given(prices=prices_st, trading=trading_st, others=others_st)
    def test_both_sign_readings_pinned_against_each_other(
        self, prices, trading, others
    ):
        """``paper_literal=True`` is an exact sign flip of the selling
        branch — import slots identical, export slots negated, bitwise."""
        rewarding = TariffCostModel(
            buy_rates=tuple(prices), sell_rates=tuple(prices * 0.5)
        )
        literal = TariffCostModel(
            buy_rates=tuple(prices),
            sell_rates=tuple(prices * 0.5),
            paper_literal=True,
        )
        cost_r = rewarding.customer_cost_per_slot(trading, others)
        cost_l = literal.customer_cost_per_slot(trading, others)
        importing = trading >= 0
        assert np.array_equal(cost_l[importing], cost_r[importing])
        assert np.array_equal(cost_l[~importing], -cost_r[~importing])
        assert np.all(cost_l[~importing] >= 0.0)

    @settings(max_examples=60, deadline=None)
    @given(
        prices=prices_st, trading=trading_st, others=others_st, w=divisor_st
    )
    def test_legacy_model_sign_toggle_matches(self, prices, trading, others, w):
        """The legacy class's ``paper_literal`` toggle obeys the same
        pin: selling branch negated, buying branch untouched."""
        default = NetMeteringCostModel(prices=tuple(prices), sellback_divisor=w)
        literal = NetMeteringCostModel(
            prices=tuple(prices), sellback_divisor=w, paper_literal=True
        )
        cost_d = default.customer_cost_per_slot(trading, others)
        cost_l = literal.customer_cost_per_slot(trading, others)
        importing = trading >= 0
        assert np.array_equal(cost_l[importing], cost_d[importing])
        assert np.array_equal(cost_l[~importing], -cost_d[~importing])


class TestExportCap:
    @settings(max_examples=60, deadline=None)
    @given(
        prices=prices_st,
        trading=trading_st,
        others=others_st,
        cap=st.floats(0.5, 3.0),
    )
    def test_cap_binds_exactly_at_cap(self, prices, trading, others, cap):
        """Compensated quantity is ``max(y, -cap)``: within the cap the
        capped and uncapped models agree bitwise; beyond it the credit
        is the cap quantity's, recomputed independently here."""
        uncapped = TariffCostModel(
            buy_rates=tuple(prices), sell_rates=tuple(prices * 0.5)
        )
        capped = TariffCostModel(
            buy_rates=tuple(prices),
            sell_rates=tuple(prices * 0.5),
            export_cap_kwh=cap,
        )
        cost_u = uncapped.customer_cost_per_slot(trading, others)
        cost_c = capped.customer_cost_per_slot(trading, others)
        within = trading >= -cap
        assert np.array_equal(cost_c[within], cost_u[within])
        beyond = ~within
        total = np.maximum(others + trading, 0.0)
        expected = (prices * 0.5) * total * (-cap)
        assert np.array_equal(cost_c[beyond], expected[beyond])
        # The cap never *increases* the credit's magnitude.
        assert np.all(cost_c[beyond] >= cost_u[beyond])

    def test_boundary_slot_is_bitwise_shared(self):
        """A slot exporting exactly the cap is on both branches at once;
        the models must agree there bitwise."""
        prices = np.linspace(0.02, 0.1, H)
        trading = np.full(H, -1.5)
        others = np.full(H, 10.0)
        cost_c = TariffCostModel(
            buy_rates=tuple(prices),
            sell_rates=tuple(prices * 0.5),
            export_cap_kwh=1.5,
        ).customer_cost_per_slot(trading, others)
        cost_u = TariffCostModel(
            buy_rates=tuple(prices), sell_rates=tuple(prices * 0.5)
        ).customer_cost_per_slot(trading, others)
        assert np.array_equal(cost_c, cost_u)


class TestFlatEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        prices=prices_st, trading=trading_st, others=others_st, w=divisor_st
    )
    def test_flat_tariff_is_the_legacy_model(self, prices, trading, others, w):
        """``FlatNetMetering(sellback_divisor=W)`` yields the *identical*
        legacy cost model — same object type, same per-slot bits."""
        legacy = NetMeteringCostModel(prices=tuple(prices), sellback_divisor=w)
        from_tariff = FlatNetMetering(sellback_divisor=w).cost_model(
            prices, sellback_divisor=123.0
        )
        assert isinstance(from_tariff, NetMeteringCostModel)
        assert from_tariff == legacy
        assert np.array_equal(
            from_tariff.customer_cost_per_slot(trading, others),
            legacy.customer_cost_per_slot(trading, others),
        )

    @settings(max_examples=60, deadline=None)
    @given(
        prices=prices_st, trading=trading_st, others=others_st, w=divisor_st
    )
    def test_from_net_metering_is_bitwise_faithful(
        self, prices, trading, others, w
    ):
        """The generalized model built from a legacy model prices every
        random community bitwise-identically."""
        legacy = NetMeteringCostModel(prices=tuple(prices), sellback_divisor=w)
        general = TariffCostModel.from_net_metering(legacy)
        assert np.array_equal(
            general.customer_cost_per_slot(trading, others),
            legacy.customer_cost_per_slot(trading, others),
        )

    @settings(max_examples=40, deadline=None)
    @given(
        prices=prices_st,
        trading=trading_st,
        others=others_st,
        w=divisor_st,
        multiplicity=st.integers(1, 4),
    )
    def test_multiplicity_semantics_match_legacy(
        self, prices, trading, others, w, multiplicity
    ):
        legacy = NetMeteringCostModel(prices=tuple(prices), sellback_divisor=w)
        general = TariffCostModel.from_net_metering(legacy)
        assert np.array_equal(
            general.customer_cost_per_slot(
                trading, others, multiplicity=multiplicity
            ),
            legacy.customer_cost_per_slot(
                trading, others, multiplicity=multiplicity
            ),
        )


class TestMonthlyNetting:
    @settings(max_examples=60, deadline=None)
    @given(
        prices=prices_st,
        imports=arrays(np.float64, H, elements=st.floats(0.0, 5.0)),
        others=others_st,
        w=divisor_st,
    )
    def test_settlement_equals_instantaneous_without_exports(
        self, prices, imports, others, w
    ):
        """Nothing to bank: monthly netting degenerates to the flat bill."""
        tariff = MonthlyNetting()
        model = tariff.cost_model(prices, sellback_divisor=w)
        settled = tariff.settle(
            prices, imports, others, sellback_divisor=w
        )
        assert settled == model.customer_cost(imports, others)

    @settings(max_examples=60, deadline=None)
    @given(prices=prices_st, trading=trading_st, others=others_st, w=divisor_st)
    def test_settlement_identity(self, prices, trading, others, w):
        """Settlement is exactly ``instantaneous - banked * (avg_buy -
        avg_sell)``, recomputed independently here."""
        tariff = MonthlyNetting()
        model = tariff.cost_model(prices, sellback_divisor=w)
        per_slot = model.customer_cost_per_slot(trading, others)
        bought = float(trading[trading > 0].sum())
        sold = float(-trading[trading < 0].sum())
        banked = min(bought, sold)
        assume(banked > 1e-9)
        avg_buy = float(per_slot[trading > 0].sum()) / bought
        avg_sell = float(-per_slot[trading < 0].sum()) / sold
        expected = float(per_slot.sum()) - banked * (avg_buy - avg_sell)
        settled = tariff.settle(prices, trading, others, sellback_divisor=w)
        assert settled == pytest.approx(expected, rel=1e-12, abs=1e-12)


class TestSerializationRoundTrip:
    @pytest.mark.parametrize(
        "name", sorted(name for name, t in NAMED_TARIFFS.items() if t is not None)
    )
    def test_named_tariffs_round_trip(self, name):
        tariff = named_tariff(name)
        payload = tariff_to_dict(tariff)
        assert tariff_from_dict(payload) == tariff
        assert tariff_fingerprint(tariff) == tariff_fingerprint(
            tariff_from_dict(payload)
        )

    def test_flat_name_is_the_absence_of_a_tariff(self):
        """``"flat"`` maps to None — the legacy code path and cache keys."""
        assert named_tariff("flat") is None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown tariff name"):
            named_tariff("time_and_a_half")

    def test_unknown_kind_and_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown tariff kind"):
            tariff_from_dict({"kind": "fantasy"})
        with pytest.raises(ValueError, match="unknown fields"):
            tariff_from_dict({"kind": "time_of_use", "teleport": True})

    @settings(max_examples=40, deadline=None)
    @given(
        markup=st.floats(0.5, 2.0),
        fraction=st.floats(0.0, 1.0),
        cap=st.one_of(st.none(), st.floats(0.5, 4.0)),
    )
    def test_spread_fingerprint_distinguishes_parameters(
        self, markup, fraction, cap
    ):
        a = BuySellSpread(
            buy_markup=markup, sell_fraction=fraction, export_cap_kwh=cap
        )
        b = BuySellSpread(
            buy_markup=markup + 0.125, sell_fraction=fraction, export_cap_kwh=cap
        )
        assert tariff_from_dict(tariff_to_dict(a)) == a
        assert tariff_fingerprint(a) != tariff_fingerprint(b)


class TestTimeOfUse:
    def test_peak_window_scales_both_sides(self):
        prices = np.full(H, 0.1)
        model = TimeOfUse(
            peak_start_slot=2,
            peak_end_slot=5,
            peak_multiplier=2.0,
            offpeak_multiplier=1.0,
        ).cost_model(prices, sellback_divisor=2.0)
        buy = model.price_array
        sell = model.sell_array
        assert np.array_equal(buy[2:5], np.full(3, 0.2))
        assert np.array_equal(buy[:2], np.full(2, 0.1))
        assert np.array_equal(sell, buy / 2.0)

    def test_window_must_fit_horizon(self):
        with pytest.raises(ValueError, match="does not fit horizon"):
            TimeOfUse(peak_start_slot=4, peak_end_slot=30).cost_model(
                np.full(H, 0.1), sellback_divisor=2.0
            )


class TestCostTermsBroadcast:
    @settings(max_examples=40, deadline=None)
    @given(prices=prices_st, trading=trading_st, others=others_st)
    def test_batched_rows_equal_sequential_calls(self, prices, trading, others):
        """The shared pricing formula is broadcast-invariant: stacking a
        batch axis reproduces the per-row results bitwise — the identity
        that makes lockstep and sequential solves agree."""
        batch = np.stack([trading, trading * 0.5, -trading])
        batched = tariff_cost_terms(
            batch,
            others[None, :],
            buy_rates=prices[None, :],
            sell_rates=prices[None, :] * 0.5,
            export_cap_kwh=1.25,
            paper_literal=False,
        )
        for row in range(batch.shape[0]):
            single = tariff_cost_terms(
                batch[row],
                others,
                buy_rates=prices,
                sell_rates=prices * 0.5,
                export_cap_kwh=1.25,
                paper_literal=False,
            )
            assert np.array_equal(batched[row], single)
