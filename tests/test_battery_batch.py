"""Property tests: batched trajectory projection matches the scalar path.

The CE optimizer's ``batch_projection`` hook is only sound if
``clamp_trajectory_batch`` is *bitwise* identical to mapping
``clamp_trajectory`` over rows — any rounding difference would change
elite selection and hence the game equilibrium.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.config import BatteryConfig
from repro.netmetering.battery import (
    BatteryViolation,
    clamp_trajectory,
    clamp_trajectory_batch,
    validate_trajectory,
)
from repro.netmetering.cost import NetMeteringCostModel
from repro.optimization.battery import BatteryProblem


@st.composite
def battery_specs(draw) -> BatteryConfig:
    capacity = draw(st.floats(0.1, 10.0, allow_nan=False))
    initial = draw(st.floats(0.0, 1.0, allow_nan=False)) * capacity
    return BatteryConfig(
        capacity_kwh=capacity,
        initial_kwh=initial,
        max_charge_kw=draw(st.floats(0.05, 5.0, allow_nan=False)),
        max_discharge_kw=draw(st.floats(0.05, 5.0, allow_nan=False)),
    )


@st.composite
def populations(draw) -> np.ndarray:
    k = draw(st.integers(1, 6))
    h = draw(st.integers(2, 12))
    elements = st.one_of(
        st.floats(-20.0, 20.0, allow_nan=False),
        st.sampled_from([np.nan, np.inf, -np.inf]),
    )
    return draw(arrays(np.float64, (k, h), elements=elements))


class TestBatchEquivalence:
    @given(spec=battery_specs(), trajectories=populations())
    @settings(max_examples=150, deadline=None)
    def test_rows_bitwise_identical_to_scalar(self, spec, trajectories):
        batch = clamp_trajectory_batch(trajectories, spec)
        for i in range(trajectories.shape[0]):
            single = clamp_trajectory(trajectories[i], spec)
            np.testing.assert_array_equal(batch[i], single)

    @given(spec=battery_specs(), trajectories=populations())
    @settings(max_examples=50, deadline=None)
    def test_batch_output_is_feasible(self, spec, trajectories):
        batch = clamp_trajectory_batch(trajectories, spec)
        for row in batch:
            validate_trajectory(row, spec)

    @given(spec=battery_specs(), trajectories=populations())
    @settings(max_examples=50, deadline=None)
    def test_input_not_mutated(self, spec, trajectories):
        before = trajectories.copy()
        clamp_trajectory_batch(trajectories, spec)
        np.testing.assert_array_equal(
            np.isnan(trajectories), np.isnan(before)
        )
        np.testing.assert_array_equal(
            trajectories[~np.isnan(trajectories)], before[~np.isnan(before)]
        )


class TestBatchValidation:
    def test_rejects_1d(self, battery_spec):
        with pytest.raises(BatteryViolation):
            clamp_trajectory_batch(np.zeros(5), battery_spec)

    def test_rejects_single_column(self, battery_spec):
        with pytest.raises(BatteryViolation):
            clamp_trajectory_batch(np.zeros((3, 1)), battery_spec)

    def test_empty_population_allowed(self, battery_spec):
        out = clamp_trajectory_batch(np.empty((0, 5)), battery_spec)
        assert out.shape == (0, 5)


class TestProblemProjectBatch:
    @pytest.fixture
    def problem(self, battery_spec, flat_cost_model):
        h = flat_cost_model.horizon
        return BatteryProblem(
            load=tuple([0.6] * h),
            pv=tuple([0.2] * h),
            others_trading=tuple([0.0] * h),
            spec=battery_spec,
            cost_model=flat_cost_model,
        )

    def test_matches_scalar_project(self, problem):
        rng = np.random.default_rng(7)
        decisions = rng.uniform(-1.0, 3.0, size=(32, problem.horizon))
        batch = problem.project_batch(decisions)
        for i in range(decisions.shape[0]):
            np.testing.assert_array_equal(batch[i], problem.project(decisions[i]))

    def test_cost_batch_matches_scalar_cost(self, problem):
        rng = np.random.default_rng(8)
        decisions = problem.project_batch(
            rng.uniform(0.0, 2.0, size=(16, problem.horizon))
        )
        costs = problem.cost_batch(decisions)
        for i in range(decisions.shape[0]):
            assert costs[i] == problem.cost(decisions[i])

    def test_rejects_wrong_width(self, problem):
        with pytest.raises(ValueError):
            problem.project_batch(np.zeros((4, problem.horizon + 1)))
