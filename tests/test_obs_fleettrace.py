"""Fleet Chrome-trace merge: layout grid, row assignment, propagation.

The merged fleet trace is a pure function of (recorded spans, sorted
shard/community layout): pids and tids come from sorted ids, untagged
spans inherit their nearest tagged ancestor's row, and all metadata
events precede all span events so Perfetto names every track before the
first slice lands on it.  Cross-shard stitching rides the compact
:class:`~repro.obs.trace.TraceContext` — honoured only when the sender
and receiver share a run id.
"""

import json

import pytest

from repro.fleet.engine import build_fleet
from repro.fleet.loadgen import LoadGenerator
from repro.obs.fleettrace import (
    fleet_trace_layout,
    to_fleet_chrome_trace,
    write_fleet_trace,
)
from repro.obs.trace import TRACER, TraceContext, Tracer
from repro.simulation.cache import GameSolutionCache


class TestLayout:
    def test_grid_is_sorted_and_deterministic(self):
        layout = fleet_trace_layout(
            {"s1": ["c0003"], "s0": ["c0002", "c0000"]}
        )
        assert layout["aggregator_pid"] == 1
        # Shards pid in ascending shard-id order, communities tid in
        # ascending cid order within each shard.
        assert layout["shards"]["s0"]["pid"] == 2
        assert layout["shards"]["s1"]["pid"] == 3
        assert layout["shards"]["s0"]["communities"] == {
            "c0000": 2,
            "c0002": 3,
        }
        assert layout["shards"]["s1"]["communities"] == {"c0003": 2}
        assert layout["community_shard"] == {
            "c0000": "s0",
            "c0002": "s0",
            "c0003": "s1",
        }
        # Input iteration order is irrelevant.
        assert layout == fleet_trace_layout(
            {"s0": ["c0000", "c0002"], "s1": ["c0003"]}
        )

    def test_community_owned_twice_is_rejected(self):
        with pytest.raises(ValueError, match="owned by two shards"):
            fleet_trace_layout({"s0": ["c0001"], "s1": ["c0001"]})


def _recorded_tracer() -> Tracer:
    """A private tracer holding one tick's worth of nested spans."""
    tracer = Tracer()
    tracer.enable(run_id="grid-test")
    with tracer.span("fleet.tick", category="fleet"):
        with tracer.span("fleet.shard_tick", category="fleet", shard="s0"):
            with tracer.span("stream.slot", community="c0001"):
                with tracer.span("detector.update"):
                    pass
        with tracer.span("fleet.shard_tick", category="fleet", shard="s1"):
            with tracer.span("stream.slot", community="c0002"):
                pass
    tracer.disable()
    return tracer


LAYOUT = fleet_trace_layout({"s0": ["c0000", "c0001"], "s1": ["c0002"]})


class TestChromeExport:
    def test_metadata_events_all_precede_span_events(self):
        doc = to_fleet_chrome_trace(_recorded_tracer(), LAYOUT)
        phases = [event["ph"] for event in doc["traceEvents"]]
        first_x = phases.index("X")
        assert all(ph == "M" for ph in phases[:first_x])
        assert all(ph == "X" for ph in phases[first_x:])

    def test_every_row_is_named(self):
        doc = to_fleet_chrome_trace(_recorded_tracer(), LAYOUT)
        names = {
            (event["pid"], event["tid"], event["name"]): event["args"]["name"]
            for event in doc["traceEvents"]
            if event["ph"] == "M"
        }
        assert names[(1, 1, "process_name")] == "repro-fleet:grid-test"
        assert names[(1, 1, "thread_name")] == "aggregator"
        assert names[(2, 1, "process_name")] == "shard:s0"
        assert names[(2, 2, "thread_name")] == "community:c0000"
        assert names[(2, 3, "thread_name")] == "community:c0001"
        assert names[(3, 1, "process_name")] == "shard:s1"
        assert names[(3, 2, "thread_name")] == "community:c0002"

    def test_rows_resolve_identity_and_inherit_from_ancestors(self):
        doc = to_fleet_chrome_trace(_recorded_tracer(), LAYOUT)
        rows = {
            event["name"]: (event["pid"], event["tid"])
            for event in doc["traceEvents"]
            if event["ph"] == "X" and event["name"] != "stream.slot"
        }
        slot_rows = {
            event["args"]["community"]: (event["pid"], event["tid"])
            for event in doc["traceEvents"]
            if event["ph"] == "X" and event["name"] == "stream.slot"
        }
        assert rows["fleet.tick"] == (1, 1)  # untagged → aggregator
        assert slot_rows["c0001"] == (2, 3)
        assert slot_rows["c0002"] == (3, 2)
        # detector.update carries no tags: it inherits c0001's lane
        # through the parent chain.
        assert rows["detector.update"] == (2, 3)

    def test_shard_lane_and_unknown_identity_fallback(self):
        tracer = Tracer()
        tracer.enable(run_id="grid-test")
        with tracer.span("fleet.shard_tick", category="fleet", shard="s1"):
            # A community the layout does not know falls back to the
            # parent chain, landing on its shard's lane.
            with tracer.span("stream.slot", community="c9999"):
                pass
        tracer.disable()
        doc = to_fleet_chrome_trace(tracer, LAYOUT)
        rows = {
            event["name"]: (event["pid"], event["tid"])
            for event in doc["traceEvents"]
            if event["ph"] == "X"
        }
        assert rows["fleet.shard_tick"] == (3, 1)
        assert rows["stream.slot"] == (3, 1)

    def test_metadata_block_exports_grid_without_reverse_index(self):
        doc = to_fleet_chrome_trace(_recorded_tracer(), LAYOUT)
        meta = doc["metadata"]
        assert meta["run_id"] == "grid-test"
        layout = meta["fleet_layout"]
        assert set(layout) == {"aggregator_pid", "shards"}
        assert layout["shards"]["s0"]["communities"]["c0001"] == 3

    def test_open_span_exports_with_the_trace_end(self):
        tracer = Tracer()
        tracer.enable(run_id="open-test")
        day = tracer.begin("stream.day", community="c0000")
        with tracer.span("stream.slot", community="c0000"):
            pass
        assert day is not None  # never closed
        tracer.disable()
        doc = to_fleet_chrome_trace(tracer, LAYOUT)
        events = {
            event["name"]: event
            for event in doc["traceEvents"]
            if event["ph"] == "X"
        }
        assert events["stream.day"]["dur"] >= 0
        assert (events["stream.day"]["pid"], events["stream.day"]["tid"]) == (
            2,
            2,
        )

    def test_write_round_trips_through_json(self, tmp_path):
        tracer = _recorded_tracer()
        out = tmp_path / "nested" / "fleet_trace.json"
        path = write_fleet_trace(tracer, LAYOUT, out)
        assert path == out
        assert json.loads(out.read_text(encoding="utf-8")) == (
            to_fleet_chrome_trace(tracer, LAYOUT)
        )


class TestTraceContext:
    def test_round_trip(self):
        context = TraceContext(run_id="r", span_id=7)
        assert TraceContext.from_dict(context.to_dict()) == context

    @pytest.mark.parametrize(
        "payload",
        [
            {"run_id": "r", "span_id": 1, "extra": 0},
            {"run_id": "", "span_id": 1},
            {"run_id": 3, "span_id": 1},
            {"span_id": 1},
            {"run_id": "r", "span_id": 0},
            {"run_id": "r", "span_id": True},
            {"run_id": "r", "span_id": "1"},
            {"run_id": "r"},
        ],
    )
    def test_malformed_payloads_are_rejected(self, payload):
        with pytest.raises(ValueError):
            TraceContext.from_dict(payload)

    def test_current_context_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current_context() is None
        tracer.enable(run_id="ctx-test")
        with tracer.span("outer") as outer:
            context = tracer.current_context()
            assert context == TraceContext(
                run_id="ctx-test", span_id=outer.span_id
            )
        assert tracer.current_context() is None
        tracer.disable()


class TestEnvelopeSplice:
    """Cross-shard propagation: the envelope span joins the sender's tree."""

    @pytest.fixture()
    def fleet(self, fleet_config):
        generator = LoadGenerator(
            fleet_config, n_communities=2, n_days=1, seed=11
        )
        fleet = build_fleet(
            generator.specs(), n_shards=1, cache=GameSolutionCache()
        )
        envelope = next(generator.envelopes())
        return fleet, envelope

    def _envelope_span(self):
        spans = [s for s in TRACER.spans() if s.name == "fleet.envelope"]
        assert len(spans) == 1
        return spans[0]

    def test_matching_run_id_splices_under_the_sender(self, fleet):
        engine, envelope = fleet
        TRACER.enable(run_id="splice-test")
        try:
            with TRACER.span("sender.batch") as parent:
                context = TRACER.current_context()
                assert context is not None
            engine.ingest_envelope({**envelope, "trace": context.to_dict()})
            assert self._envelope_span().parent_id == parent.span_id
        finally:
            TRACER.disable()
            TRACER.enable(run_id="flush")
            TRACER.disable()

    def test_foreign_run_id_is_ignored(self, fleet):
        engine, envelope = fleet
        TRACER.enable(run_id="splice-test")
        try:
            foreign = TraceContext(run_id="some-other-run", span_id=1)
            engine.ingest_envelope({**envelope, "trace": foreign.to_dict()})
            assert self._envelope_span().parent_id is None
        finally:
            TRACER.disable()
            TRACER.enable(run_id="flush")
            TRACER.disable()

    def test_malformed_trace_field_rejects_the_envelope(self, fleet):
        engine, envelope = fleet
        with pytest.raises(ValueError, match="trace"):
            engine.ingest_envelope({**envelope, "trace": "not-an-object"})
        with pytest.raises(ValueError, match="span_id"):
            engine.ingest_envelope(
                {**envelope, "trace": {"run_id": "r", "span_id": -1}}
            )


class TestTraceCliSummary:
    """``repro trace`` auto-detects Chrome-trace exports and summarises."""

    @pytest.fixture()
    def trace_file(self, tmp_path):
        return write_fleet_trace(
            _recorded_tracer(), LAYOUT, tmp_path / "fleet_trace.json"
        )

    def test_table_summary_prints_the_grid(self, trace_file, capsys):
        from repro.obs.cli import trace_main

        assert trace_main([str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "run_id=grid-test" in out
        assert "shard:s0" in out
        assert "community:c0001" in out
        assert "fleet.shard_tick" in out

    def test_json_summary_round_trips(self, trace_file, capsys):
        from repro.obs.cli import trace_main

        assert trace_main([str(trace_file), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["processes"]["1"] == "repro-fleet:grid-test"
        assert summary["threads"]["2/3"] == "community:c0001"
        assert summary["spans"]["fleet.shard_tick"]["count"] == 2
        assert summary["spans"]["stream.slot"]["count"] == 2

    def test_audit_jsonl_still_takes_the_audit_path(self, tmp_path, capsys):
        from repro.obs.cli import trace_main

        path = tmp_path / "audit.jsonl"
        path.write_text(
            json.dumps({"slot": 0, "day": 0, "kind": "gap", "gap_reason": "drop"})
            + "\n",
            encoding="utf-8",
        )
        assert trace_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 record(s)" in out
