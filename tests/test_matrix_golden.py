"""Golden-master regression for the tariff × attack scenario matrix.

``tests/golden/matrix_digests.json`` pins a small corner of the full
matrix (``docs/SCENARIOS.md``) at the smoke preset: flat vs NEM-3.0
spread tariffs × peak-increase vs meter-outage campaigns × all three
detector variants, at the golden 48-slot horizon.  Two contracts:

1. A fresh :func:`~repro.reporting.golden.compute_matrix_digests` run
   matches the committed fixture leaf for leaf (metrics verbatim, array
   digests bitwise) — on every kernel backend (CI reruns this file
   under ``REPRO_BACKEND=reference`` and ``REPRO_BACKEND=fused``).
2. The matrix *contains* the paper's Table 1 run as cells: the
   ``("flat", "peak_increase")`` column is digest-identical to the
   scenario entries already pinned by ``smoke_digests.json``, because
   the flat tariff resolves to ``tariff=None`` — the exact pre-tariff
   code path.

After an intentional change, regenerate with ``make refresh-golden``
(or ``python scripts/refresh_golden.py --matrix``) and commit the diff.
"""

import json
from pathlib import Path

from repro.core.presets import smoke_preset
from repro.reporting.golden import (
    MATRIX_GOLDEN_DETECTORS,
    MATRIX_GOLDEN_FAMILIES,
    MATRIX_GOLDEN_TARIFFS,
    compute_matrix_digests,
    diff_digests,
    load_golden_digests,
)
from repro.simulation.sweep import MATRIX_FORMAT, MATRIX_VERSION

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _load_matrix_fixture() -> dict:
    payload = json.loads(
        (GOLDEN_DIR / "matrix_digests.json").read_text(encoding="utf-8")
    )
    assert payload["format"] == MATRIX_FORMAT
    assert payload["version"] == MATRIX_VERSION
    return payload


class TestMatrixFixture:
    def test_fixture_is_committed_and_well_formed(self):
        fixture = _load_matrix_fixture()
        axes = fixture["axes"]
        assert tuple(axes["tariff"]) == MATRIX_GOLDEN_TARIFFS
        assert tuple(axes["attack_family"]) == MATRIX_GOLDEN_FAMILIES
        assert tuple(axes["detector"]) == MATRIX_GOLDEN_DETECTORS
        n_expected = (
            len(axes["tariff"])
            * len(axes["attack_family"])
            * len(axes["pv_adoption"])
            * len(axes["detector"])
        )
        assert len(fixture["cells"]) == n_expected
        for cell in fixture["cells"]:
            assert len(cell["truth_sha256"]) == 64
            assert len(cell["flags_sha256"]) == 64
            assert len(cell["realized_grid_sha256"]) == 64

    def test_fixture_passes_the_artifact_validator(self):
        """The committed fixture is itself a valid sweep-matrix artifact."""
        import importlib.util

        script = (
            Path(__file__).resolve().parent.parent
            / "scripts"
            / "validate_matrix.py"
        )
        spec = importlib.util.spec_from_file_location("validate_matrix", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        fixture = _load_matrix_fixture()
        assert module.validate_matrix(fixture) == len(fixture["cells"])

    def test_fresh_matrix_matches_committed_digests(self):
        """The matrix regression gate: recompute the grid, diff every leaf."""
        expected = _load_matrix_fixture()
        actual = compute_matrix_digests(smoke_preset())
        # diff_digests walks dicts; index the cell list by coordinate so a
        # drifted cell is named rather than positional.
        def by_coord(doc: dict) -> dict:
            return {
                "axes": doc["axes"],
                "n_slots": doc["n_slots"],
                "config_sha256": doc["config_sha256"],
                "cells": {
                    f"{c['tariff']}/{c['attack_family']}"
                    f"/pv{c['pv_adoption']}/{c['detector']}": c
                    for c in doc["cells"]
                },
            }

        diffs = diff_digests(by_coord(expected), by_coord(actual))
        assert not diffs, (
            "matrix drift (run `make refresh-golden` only if intentional):\n"
            + "\n".join(diffs)
        )


class TestTableOneCell:
    def test_flat_column_is_the_pinned_table1_run(self):
        """The flat/peak-increase cells ARE the seed Table 1 scenarios.

        ``smoke_digests.json`` predates the tariff layer; the matrix's
        flat column must reproduce its scenario digests bitwise — this
        is the net-metering-vs-flat acceptance contract.
        """
        matrix = _load_matrix_fixture()
        legacy = load_golden_digests(GOLDEN_DIR / "smoke_digests.json")
        assert matrix["n_slots"] == legacy["n_slots"]
        # Same community fingerprint: tariff=None is omitted from the
        # config payload, so pre-tariff and matrix hashes coincide.
        assert matrix["config_sha256"] == legacy["config_sha256"]
        pv = matrix["axes"]["pv_adoption"][0]
        for detector in ("none", "unaware", "aware"):
            (cell,) = [
                c
                for c in matrix["cells"]
                if c["tariff"] == "flat"
                and c["attack_family"] == "peak_increase"
                and c["pv_adoption"] == pv
                and c["detector"] == detector
            ]
            pinned = legacy["scenarios"][detector]
            assert cell["truth_sha256"] == pinned["truth_sha256"]
            assert cell["flags_sha256"] == pinned["flags_sha256"]
            assert cell["realized_grid_sha256"] == pinned["realized_grid_sha256"]
            assert cell["mean_par"] == pinned["mean_par"]
            assert cell["observation_accuracy"] == pinned["observation_accuracy"]
            assert cell["n_repairs"] == pinned["n_repairs"]


class TestCellScoreboards:
    """Every matrix cell carries an internally consistent scoreboard."""

    def test_every_cell_scoreboard_is_consistent(self):
        matrix = _load_matrix_fixture()
        for cell in matrix["cells"]:
            board = cell["scoreboard"]
            assert board["format"] == "repro-scoreboard"
            episodes = board["episodes"]
            assert episodes["resolved"] + episodes["open"] == episodes["total"]
            # A still-open episode may be neither detected nor missed yet.
            assert episodes["detected"] + episodes["missed"] <= episodes["total"]
            undecided = (
                episodes["total"] - episodes["detected"] - episodes["missed"]
            )
            assert undecided <= episodes["open"]
            slots = board["slots"]
            assert (
                slots["scored"] + slots["unscored"] + slots["gaps"]
                == slots["total"]
            )
            assert slots["total"] == matrix["n_slots"]
            # Batch arrays have no telemetry gaps or unscored slots.
            assert slots["gaps"] == 0 and slots["unscored"] == 0
            assert len(board["mttd"]["samples"]) == episodes["detected"]
            assert board["mttd"]["total_slots"] == sum(board["mttd"]["samples"])

    def test_family_attribution_is_the_cell_axis(self):
        """The batch path attributes every episode to the cell's family."""
        matrix = _load_matrix_fixture()
        for cell in matrix["cells"]:
            board = cell["scoreboard"]
            families = board["families"]
            if board["episodes"]["total"]:
                assert set(families) == {cell["attack_family"]}
                block = families[cell["attack_family"]]
                assert block["episodes"] == board["episodes"]["total"]
                assert block["detected"] == board["episodes"]["detected"]
            else:
                assert families == {}

    def test_none_detector_monitors_but_never_repairs(self):
        """Table 1's "none" column: flags fire, nothing ever resolves.

        The "none" detector keeps monitoring but never repairs, so every
        compromise persists to the horizon — one perpetual open episode,
        zero resolutions, an empty MTTR ledger.
        """
        matrix = _load_matrix_fixture()
        none_cells = [c for c in matrix["cells"] if c["detector"] == "none"]
        assert none_cells
        for cell in none_cells:
            board = cell["scoreboard"]
            assert cell["n_repairs"] == 0
            assert board["episodes"]["resolved"] == 0
            assert board["episodes"]["open"] == board["episodes"]["total"]
            assert board["mttr"]["samples"] == []

    def test_fresh_cell_scoreboard_matches_its_arrays(self):
        """A recomputed cell's block equals the fold of its own arrays.

        Closes the loop between the fixture (pinned bitwise by
        ``test_fresh_matrix_matches_committed_digests``) and the
        scoreboard semantics: the block really is a pure function of the
        already-digested truth/flags/repairs arrays.
        """
        from repro.obs.scoreboard import scoreboard_from_arrays
        from repro.simulation.sweep import run_long_term_scenario

        matrix = _load_matrix_fixture()
        pv = matrix["axes"]["pv_adoption"][0]
        (cell,) = [
            c
            for c in matrix["cells"]
            if c["tariff"] == "flat"
            and c["attack_family"] == "peak_increase"
            and c["pv_adoption"] == pv
            and c["detector"] == "aware"
        ]
        result = run_long_term_scenario(
            smoke_preset(),
            detector="aware",
            n_slots=matrix["n_slots"],
            attack_family="peak_increase",
        )
        board = scoreboard_from_arrays(
            truth=result.truth,
            flags=result.flags,
            repairs=result.repairs,
            family="peak_increase",
        )
        assert board.report() == cell["scoreboard"]
