"""Tests for multi-seed scenario aggregation."""

import numpy as np
import pytest

from repro.simulation.aggregate import AggregateMetric, run_aggregate_scenario


class TestAggregateMetric:
    def test_from_values(self):
        metric = AggregateMetric.from_values([1.0, 2.0, 3.0])
        assert metric.mean == pytest.approx(2.0)
        assert metric.std == pytest.approx(np.std([1.0, 2.0, 3.0]))
        assert metric.values == (1.0, 2.0, 3.0)

    def test_single_value(self):
        metric = AggregateMetric.from_values([4.2])
        assert metric.mean == pytest.approx(4.2)
        assert metric.std == pytest.approx(0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AggregateMetric.from_values([])

    def test_str_format(self):
        text = str(AggregateMetric.from_values([1.0, 2.0]))
        assert "±" in text and "n=2" in text


class TestRunAggregateScenario:
    def test_aggregates_across_seeds(self, tiny_config):
        result = run_aggregate_scenario(
            tiny_config,
            detector="none",
            seeds=(1, 2),
            n_slots=24,
            calibration_trials=3,
        )
        assert result.detector == "none"
        assert len(result.runs) == 2
        assert len(result.observation_accuracy.values) == 2
        assert result.labor_cost.mean == pytest.approx(0.0)  # no repairs without detection
        assert 1.0 <= result.mean_par.mean

    def test_seeds_produce_different_runs(self, tiny_config):
        result = run_aggregate_scenario(
            tiny_config,
            detector="none",
            seeds=(1, 2),
            n_slots=24,
            calibration_trials=3,
        )
        a, b = result.runs
        assert not np.array_equal(a.truth, b.truth)

    def test_rejects_empty_seeds(self, tiny_config):
        with pytest.raises(ValueError):
            run_aggregate_scenario(
                tiny_config, detector="none", seeds=(), n_slots=24
            )
