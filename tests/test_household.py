"""Tests for the single-household response simulator."""

import numpy as np
import pytest

from repro.core.config import BatteryConfig, GameConfig
from repro.scheduling.household import HouseholdResponseSimulator
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=2,
    inner_iterations=1,
    ce_samples=12,
    ce_elites=3,
    ce_iterations=4,
)


@pytest.fixture
def plain_household():
    return HouseholdResponseSimulator(make_customer(0), game_config=FAST)


@pytest.fixture
def nm_household():
    customer = make_customer(
        1,
        battery=BatteryConfig(
            capacity_kwh=2.0, initial_kwh=0.0, max_charge_kw=1.0, max_discharge_kw=1.0
        ),
        pv_peak=0.8,
    )
    return HouseholdResponseSimulator(customer, game_config=FAST)


def prices(value: float = 0.03) -> np.ndarray:
    return np.full(HORIZON, value)


class TestLoadResponse:
    def test_includes_base_and_tasks(self, plain_household):
        load = plain_household.load_response(prices())
        customer = plain_household.customer
        assert load.sum() == pytest.approx(
            customer.base_load_array.sum() + customer.total_task_energy
        )

    def test_chases_cheap_slots(self, plain_household):
        p = prices()
        p[10:12] = 0.001  # inside the washer window (8-15)
        load = plain_household.load_response(p)
        flat_load = plain_household.load_response(prices())
        assert load[10:12].sum() >= flat_load[10:12].sum()

    def test_cached(self, plain_household):
        a = plain_household.load_response(prices())
        b = plain_household.load_response(prices())
        np.testing.assert_array_equal(a, b)
        # defensive copies: mutating the result must not poison the cache
        a[0] = 99.0
        c = plain_household.load_response(prices())
        assert c[0] != pytest.approx(99.0)

    def test_shape_validation(self, plain_household):
        with pytest.raises(ValueError, match="prices"):
            plain_household.load_response(np.ones(5))


class TestNetResponse:
    def test_plain_household_net_equals_load(self, plain_household):
        p = prices()
        np.testing.assert_array_equal(
            plain_household.net_response(p), plain_household.load_response(p)
        )

    def test_nm_household_nets_out_pv(self, nm_household):
        p = prices()
        net = nm_household.net_response(p)
        load = nm_household.load_response(p)
        # daytime PV means buying less (or selling) at midday
        assert net[10:15].sum() < load[10:15].sum()

    def test_negative_prices_handled(self, nm_household):
        p = prices()
        p[16] = 0.0
        net = nm_household.net_response(p)
        assert np.all(np.isfinite(net))

    def test_energy_balance(self, nm_household):
        """Net purchases = load + battery gain - PV over the day."""
        p = prices()
        net = nm_household.net_response(p)
        load = nm_household.load_response(p)
        pv = nm_household.customer.pv_array
        battery_gain = net.sum() - (load.sum() - pv.sum())
        capacity = nm_household.customer.battery.capacity_kwh
        assert -1e-9 <= battery_gain <= capacity + 1e-9
