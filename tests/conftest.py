"""Shared fixtures: tiny deterministic model objects for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    PricingConfig,
    SolarConfig,
    TimeGrid,
)
from repro.netmetering.cost import NetMeteringCostModel
from repro.scheduling.appliance import ApplianceTask
from repro.scheduling.customer import Customer
from repro.scheduling.game import Community

HORIZON = 24


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def time_grid() -> TimeGrid:
    return TimeGrid(slots_per_day=HORIZON, n_days=1)


@pytest.fixture
def simple_task() -> ApplianceTask:
    """2 kWh over an 18:00-23:00 window at 0/0.5/1 kW."""
    return ApplianceTask(
        name="dishwasher",
        power_levels=(0.0, 0.5, 1.0),
        energy_kwh=2.0,
        earliest_start=18,
        deadline=23,
    )


@pytest.fixture
def tight_task() -> ApplianceTask:
    """A task whose window exactly fits its energy (forced schedule)."""
    return ApplianceTask(
        name="forced",
        power_levels=(0.0, 1.0),
        energy_kwh=3.0,
        earliest_start=5,
        deadline=7,
    )


@pytest.fixture
def battery_spec() -> BatteryConfig:
    return BatteryConfig(
        capacity_kwh=2.0, initial_kwh=0.5, max_charge_kw=1.0, max_discharge_kw=1.0
    )


@pytest.fixture
def flat_cost_model() -> NetMeteringCostModel:
    return NetMeteringCostModel(prices=tuple([0.03] * HORIZON), sellback_divisor=2.0)


def make_customer(
    customer_id: int = 0,
    *,
    tasks: tuple[ApplianceTask, ...] | None = None,
    battery: BatteryConfig | None = None,
    pv_peak: float = 0.0,
    base: float = 0.5,
) -> Customer:
    """A hand-built customer with optional PV bell and battery."""
    if tasks is None:
        tasks = (
            ApplianceTask(
                name="washer",
                power_levels=(0.0, 0.5, 1.0),
                energy_kwh=1.5,
                earliest_start=8,
                deadline=15,
            ),
            ApplianceTask(
                name="ev",
                power_levels=(0.0, 1.0),
                energy_kwh=3.0,
                earliest_start=18,
                deadline=23,
            ),
        )
    if battery is None:
        battery = BatteryConfig(capacity_kwh=0.0, initial_kwh=0.0)
    hours = np.arange(HORIZON) + 0.5
    pv = pv_peak * np.clip(np.sin(np.pi * (hours - 6.0) / 13.0), 0.0, None)
    pv[hours < 6.0] = 0.0
    pv[hours > 19.0] = 0.0
    return Customer(
        customer_id=customer_id,
        tasks=tasks,
        battery=battery,
        pv=tuple(pv),
        base_load=tuple(np.full(HORIZON, base)),
    )


@pytest.fixture
def small_customer() -> Customer:
    return make_customer()


@pytest.fixture
def nm_customer(battery_spec: BatteryConfig) -> Customer:
    return make_customer(1, battery=battery_spec, pv_peak=0.8)


@pytest.fixture
def small_community(small_customer: Customer, nm_customer: Customer) -> Community:
    return Community(customers=(small_customer, nm_customer), counts=(3, 2))


@pytest.fixture
def tiny_config() -> CommunityConfig:
    """Minimal community config for integration tests."""
    return CommunityConfig(
        n_customers=8,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        solar=SolarConfig(peak_kw=0.7),
        pricing=PricingConfig(),
        game=GameConfig(
            max_rounds=3,
            inner_iterations=1,
            ce_samples=12,
            ce_elites=3,
            ce_iterations=3,
        ),
        detection=DetectionConfig(n_monitored_meters=4),
        seed=99,
    )


@pytest.fixture(scope="session")
def fleet_config() -> CommunityConfig:
    """Tiny per-community config shared by the fleet test modules.

    Session-scoped (frozen dataclass) so every fleet test builds
    communities from the same world and the session-wide game-solution
    cache keeps solves shared across modules.
    """
    return CommunityConfig(
        n_customers=8,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        solar=SolarConfig(peak_kw=0.7),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4, hack_probability=0.15),
        seed=11,
    )
