"""`# repro: noqa` suppression handling."""

import textwrap

from repro.analysis.engine import LintConfig, LintEngine
from repro.analysis.rules import default_rules
from repro.analysis.suppressions import ALL_RULES, SuppressionIndex

SRC_PATH = "src/repro/fake_module.py"


def lint(source: str):
    engine = LintEngine(default_rules(), LintConfig())
    return engine.check_source(textwrap.dedent(source), display_path=SRC_PATH)


class TestSuppressionIndex:
    def test_bare_noqa_suppresses_everything(self):
        index = SuppressionIndex.from_source("x = 1  # repro: noqa\n")
        assert index.is_suppressed(1, "DET001")
        assert index.is_suppressed(1, "FLT001")
        assert not index.is_suppressed(2, "DET001")

    def test_bracketed_noqa_suppresses_listed_rules_only(self):
        index = SuppressionIndex.from_source(
            "x = 1  # repro: noqa[DET001,FLT001] reason goes here\n"
        )
        assert index.is_suppressed(1, "DET001")
        assert index.is_suppressed(1, "FLT001")
        assert not index.is_suppressed(1, "DET002")

    def test_rule_ids_case_insensitive(self):
        index = SuppressionIndex.from_source("x = 1  # repro: noqa[det001]\n")
        assert index.is_suppressed(1, "DET001")

    def test_plain_comment_is_not_a_suppression(self):
        index = SuppressionIndex.from_source("x = 1  # not a noqa\n")
        assert index.by_line == {}

    def test_all_rules_sentinel(self):
        index = SuppressionIndex.from_source("x = 1  # repro: noqa\n")
        assert ALL_RULES in index.by_line[1]


class TestEngineRespectsSuppressions:
    def test_matching_rule_suppressed(self):
        violations = lint(
            """\
            def check(x: float) -> bool:
                return x == 0.5  # repro: noqa[FLT001] exact sentinel
            """
        )
        assert violations == []

    def test_other_rule_not_suppressed(self):
        violations = lint(
            """\
            import numpy as np

            def draw() -> float:
                return float(np.random.rand())  # repro: noqa[FLT001] wrong id
            """
        )
        assert [v.rule for v in violations] == ["DET001"]

    def test_bare_noqa_silences_multiple_rules_on_one_line(self):
        violations = lint(
            """\
            import numpy as np

            def draw() -> bool:
                return float(np.random.rand()) == 0.5  # repro: noqa
            """
        )
        assert violations == []

    def test_suppression_is_per_line(self):
        violations = lint(
            """\
            def check(x: float) -> bool:
                a = x == 0.5  # repro: noqa[FLT001]
                b = x == 0.5
                return a and b
            """
        )
        assert [(v.rule, v.line) for v in violations] == [("FLT001", 3)]


class TestContinuationLines:
    """A noqa anywhere on a multi-line logical statement covers the
    whole statement, so the comment can live on the readable line even
    though the AST anchors violations to the statement's first line."""

    def test_noqa_on_continuation_line_covers_statement_start(self):
        index = SuppressionIndex.from_source(
            "value = compare(\n"
            "    x,  # repro: noqa[FLT001] exact sentinel\n"
            "    0.5,\n"
            ")\n"
        )
        assert index.is_suppressed(1, "FLT001")
        assert index.is_suppressed(2, "FLT001")
        assert index.is_suppressed(3, "FLT001")
        assert index.is_suppressed(4, "FLT001")
        assert not index.is_suppressed(5, "FLT001")

    def test_noqa_inside_comprehension_covers_statement(self):
        index = SuppressionIndex.from_source(
            "rngs = [\n"
            "    make(seed)  # repro: noqa[SEED003] lockstep on purpose\n"
            "    for _ in range(3)\n"
            "]\n"
        )
        assert index.is_suppressed(1, "SEED003")
        assert not index.is_suppressed(1, "SEED001")

    def test_statement_scope_does_not_leak_to_neighbours(self):
        index = SuppressionIndex.from_source(
            "a = 1\n"
            "b = f(\n"
            "    2,  # repro: noqa[DET001]\n"
            ")\n"
            "c = 3\n"
        )
        assert not index.is_suppressed(1, "DET001")
        assert index.is_suppressed(2, "DET001")
        assert not index.is_suppressed(5, "DET001")

    def test_multi_rule_list_spreads_across_statement(self):
        index = SuppressionIndex.from_source(
            "x = g(\n"
            "    y,  # repro: noqa[DET001, FLT001] both justified\n"
            ")\n"
        )
        assert index.is_suppressed(1, "DET001")
        assert index.is_suppressed(1, "FLT001")
        assert not index.is_suppressed(1, "DET002")

    def test_standalone_comment_line_stays_local(self):
        index = SuppressionIndex.from_source(
            "# repro: noqa[DET001] explanation block\n"
            "x = 1\n"
        )
        assert index.is_suppressed(1, "DET001")
        assert not index.is_suppressed(2, "DET001")

    def test_engine_sees_continuation_noqa(self):
        violations = lint(
            """\
            def check(x: float, y: float) -> bool:
                return (
                    x
                    == 0.5  # repro: noqa[FLT001] exact sentinel
                ) and y > 0
            """
        )
        assert violations == []
