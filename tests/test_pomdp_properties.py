"""Property-based tests on the POMDP model and belief dynamics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.pomdp import MONITOR, REPAIR, build_detection_pomdp
from repro.detection.solvers import BeliefFilter, QmdpPolicy, value_iteration_mdp


def make_model(q=0.1, tp=0.9, fp=0.05, n=5, damage=1.0, discount=0.9):
    return build_detection_pomdp(
        n,
        hack_probability=q,
        tp_rate=tp,
        fp_rate=fp,
        damage_per_meter=damage,
        repair_fixed_cost=2.0,
        repair_cost_per_meter=1.0,
        discount=discount,
    )


class TestModelProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        q=st.floats(0.0, 1.0),
        tp=st.floats(0.0, 1.0),
        fp=st.floats(0.0, 1.0),
        n=st.integers(1, 12),
    )
    def test_stochastic_matrices(self, q, tp, fp, n):
        model = make_model(q=q, tp=tp, fp=fp, n=n)
        np.testing.assert_allclose(model.transitions.sum(axis=2), 1.0, atol=1e-8)
        np.testing.assert_allclose(model.observations.sum(axis=2), 1.0, atol=1e-8)
        assert np.all(model.transitions >= -1e-12)
        assert np.all(model.observations >= -1e-12)

    @settings(max_examples=15, deadline=None)
    @given(q=st.floats(0.01, 0.5), n=st.integers(2, 10))
    def test_monitor_expected_growth(self, q, n):
        """E[s' | s, monitor] = s + (n - s) q exactly (binomial mean)."""
        model = make_model(q=q, n=n)
        states = np.arange(n + 1)
        expected_next = model.transitions[MONITOR] @ states
        np.testing.assert_allclose(expected_next, states + (n - states) * q, atol=1e-8)

    @settings(max_examples=15, deadline=None)
    @given(
        tp=st.floats(0.5, 1.0),
        fp=st.floats(0.0, 0.3),
        n=st.integers(2, 10),
    )
    def test_observation_mean_tracks_state(self, tp, fp, n):
        """E[o | s] = s*tp + (n-s)*fp — the flag count is unbiased up to
        the per-meter rates."""
        model = make_model(tp=tp, fp=fp, n=n)
        observations = np.arange(n + 1)
        for s in range(n + 1):
            mean_obs = model.observations[MONITOR, s] @ observations
            analytic = s * tp + (n - s) * fp
            # truncation to n observations can bite when analytic ~ n
            if analytic < n - 1:
                assert mean_obs == pytest.approx(analytic, abs=0.15)


class TestValueProperties:
    @settings(max_examples=10, deadline=None)
    @given(damage=st.floats(0.1, 5.0))
    def test_values_bounded_by_reward_range(self, damage):
        model = make_model(damage=damage)
        q = value_iteration_mdp(model)
        bound = abs(model.rewards.min()) / (1 - model.discount)
        assert np.all(q <= 1e-9)
        assert np.all(q >= -bound - 1e-6)

    @settings(max_examples=10, deadline=None)
    @given(damage=st.floats(0.1, 5.0))
    def test_value_monotone_in_state(self, damage):
        """More hacked meters can never be better."""
        model = make_model(damage=damage)
        q = value_iteration_mdp(model)
        v = q.max(axis=0)
        assert np.all(np.diff(v) <= 1e-9)

    def test_higher_damage_repairs_sooner(self):
        """The repair region grows with the per-slot damage."""

        def first_repair_state(damage):
            model = make_model(damage=damage)
            q = value_iteration_mdp(model)
            repair_better = q[REPAIR] > q[MONITOR]
            idx = np.flatnonzero(repair_better)
            return idx[0] if idx.size else model.n_states

        assert first_repair_state(3.0) <= first_repair_state(0.3)


class TestBeliefProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        observations=st.lists(st.integers(0, 5), min_size=1, max_size=12),
    )
    def test_belief_stays_normalized(self, observations):
        model = make_model()
        belief_filter = BeliefFilter(model)
        for o in observations:
            belief = belief_filter.update(MONITOR, o)
            assert belief.sum() == pytest.approx(1.0)
            assert np.all(belief >= -1e-12)

    def test_repeated_zero_observations_suppress_belief(self):
        """A run of all-clear observations keeps the expected state below
        the unconditional (no-observation) growth."""
        model = make_model(tp=0.9, fp=0.02)
        with_obs = BeliefFilter(model)
        for _ in range(6):
            with_obs.update(MONITOR, 0)
        blind = model.initial_belief()
        for _ in range(6):
            blind = blind @ model.transitions[MONITOR]
        blind_mean = float(blind @ np.arange(model.n_states))
        assert with_obs.expected_state() < blind_mean

    def test_informative_channel_sharpens_policy(self):
        """With a sharp observation channel the QMDP agent acts on
        observations; with a useless channel its belief barely moves."""
        sharp = make_model(tp=0.95, fp=0.02)
        useless = make_model(tp=0.5, fp=0.5)
        for model, expect_move in ((sharp, True), (useless, False)):
            belief_filter = BeliefFilter(model)
            before = belief_filter.expected_state()
            belief_filter.update(MONITOR, model.n_observations - 1)
            moved = belief_filter.expected_state() - before
            if expect_move:
                assert moved > 1.0
            else:
                assert moved < 1.0

    def test_qmdp_policy_monotone_in_belief_mass(self):
        """Shifting belief mass toward higher states never flips the
        policy from repair back to monitor."""
        model = make_model()
        policy = QmdpPolicy(model)
        n = model.n_states
        actions = []
        for k in range(n):
            belief = np.zeros(n)
            belief[k] = 1.0
            actions.append(policy.action(belief))
        # once repair becomes optimal it stays optimal for higher states
        first_repair = next(
            (i for i, a in enumerate(actions) if a == REPAIR), None
        )
        if first_repair is not None:
            assert all(a == REPAIR for a in actions[first_repair:])
