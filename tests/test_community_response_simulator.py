"""Extended tests for the memoized community response simulator."""

import numpy as np
import pytest

from repro.core.config import GameConfig
from repro.detection.single_event import CommunityResponseSimulator
from repro.scheduling.game import Community
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=2, inner_iterations=1, ce_samples=8, ce_elites=2, ce_iterations=2
)


@pytest.fixture
def simulator():
    community = Community(
        customers=(make_customer(0), make_customer(1)), counts=(4, 4)
    )
    return CommunityResponseSimulator(community, config=FAST, seed=1)


class TestCacheSemantics:
    def test_rounding_tolerance_merges_keys(self, simulator):
        """Price vectors equal to 9 decimals share one cache entry."""
        base = np.full(HORIZON, 0.03)
        tweaked = base + 1e-12
        first = simulator.response(base)
        second = simulator.response(tweaked)
        assert second is first
        assert simulator.cache_size == 1

    def test_distinct_prices_distinct_entries(self, simulator):
        simulator.response(np.full(HORIZON, 0.03))
        simulator.response(np.full(HORIZON, 0.031))
        assert simulator.cache_size == 2

    def test_negative_inputs_clamped_but_cached_by_raw_key(self, simulator):
        """Negative posted prices (attack residue) are clamped before the
        game but keyed as given — the same raw vector hits the cache."""
        p = np.full(HORIZON, 0.03)
        p[5] = -0.01
        a = simulator.response(p)
        b = simulator.response(p.copy())
        assert b is a
        assert np.all(np.isfinite(a.grid_demand))


class TestSeedIsolation:
    def test_different_seeds_may_differ_but_both_valid(self):
        community = Community(
            customers=(make_customer(0), make_customer(1)), counts=(4, 4)
        )
        a = CommunityResponseSimulator(community, config=FAST, seed=1)
        b = CommunityResponseSimulator(community, config=FAST, seed=2)
        prices = np.full(HORIZON, 0.03)
        ra, rb = a.response(prices), b.response(prices)
        # energy conservation holds regardless of the seed
        assert ra.community_load.sum() == pytest.approx(rb.community_load.sum())

    def test_grid_par_consistent_with_response(self, simulator):
        prices = np.full(HORIZON, 0.03)
        par_value = simulator.grid_par(prices)
        grid = simulator.response(prices).grid_demand
        assert par_value == pytest.approx(float(grid.max() / grid.mean()))
