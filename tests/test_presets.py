"""Tests for the experiment presets."""

import pytest

from repro.core.presets import bench_preset, paper_preset, smoke_preset


class TestPresets:
    def test_paper_scale(self):
        config = paper_preset()
        assert config.n_customers == 500
        assert config.time.slots_per_day == 24

    def test_bench_scale_smaller(self):
        assert bench_preset().n_customers < paper_preset().n_customers

    def test_smoke_scale_smallest(self):
        assert smoke_preset().n_customers < bench_preset().n_customers

    def test_seed_parameter(self):
        assert paper_preset(seed=7).seed == 7
        assert bench_preset(seed=8).seed == 8
        assert smoke_preset(seed=9).seed == 9

    def test_all_presets_validate(self):
        """Construction runs every dataclass validator."""
        for preset in (paper_preset, bench_preset, smoke_preset):
            config = preset()
            assert config.pricing.sellback_divisor >= 1.0
            assert 0 <= config.pv_adoption <= 1

    def test_smoke_game_is_cheap(self):
        game = smoke_preset().game
        assert game.max_rounds <= 4
        assert game.ce_samples <= 20

    @pytest.mark.parametrize("preset", [paper_preset, bench_preset, smoke_preset])
    def test_buildable_communities(self, preset):
        """Every preset produces a feasible community."""
        import numpy as np

        from repro.data.community import build_community

        config = preset()
        if config.n_customers > 200:
            config = config.with_updates(n_customers=40)
        community = build_community(config, rng=np.random.default_rng(0))
        assert community.n_customers == config.n_customers
