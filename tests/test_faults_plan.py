"""Unit tests for the fault-plan model and its parsing grammar."""

import json

import pytest

from repro.faults.plan import (
    BUILTIN_PLANS,
    FaultPlan,
    FaultPlanError,
    builtin_plan,
    parse_fault_spec,
)


class TestFaultPlanValidation:
    def test_defaults_are_noop(self):
        plan = FaultPlan()
        assert plan.is_noop
        assert plan.is_lossless

    @pytest.mark.parametrize(
        "field",
        [
            "drop_prob",
            "duplicate_prob",
            "reorder_prob",
            "delay_prob",
            "corrupt_prob",
            "stall_prob",
        ],
    )
    def test_probabilities_must_be_in_unit_interval(self, field):
        with pytest.raises(FaultPlanError, match=field):
            FaultPlan(**{field: 1.5})
        with pytest.raises(FaultPlanError, match=field):
            FaultPlan(**{field: -0.1})

    def test_negative_seed_rejected(self):
        with pytest.raises(FaultPlanError, match="seed"):
            FaultPlan(seed=-1)

    @pytest.mark.parametrize("field", ["max_delay", "max_stall"])
    def test_hold_bounds_must_be_positive(self, field):
        with pytest.raises(FaultPlanError, match=field):
            FaultPlan(**{field: 0})

    def test_lossless_classification(self):
        assert FaultPlan(duplicate_prob=0.3, stall_prob=0.2).is_lossless
        for lossy in ("drop_prob", "corrupt_prob", "delay_prob", "reorder_prob"):
            assert not FaultPlan(**{lossy: 0.1}).is_lossless

    def test_with_updates_returns_new_validated_plan(self):
        plan = FaultPlan(drop_prob=0.1)
        reseeded = plan.with_updates(seed=7)
        assert reseeded.seed == 7
        assert reseeded.drop_prob == plan.drop_prob
        assert plan.seed == 0  # original untouched
        with pytest.raises(FaultPlanError):
            plan.with_updates(drop_prob=2.0)


class TestFaultPlanSerialization:
    def test_round_trip(self):
        plan = BUILTIN_PLANS["chaos"].with_updates(seed=42)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(FaultPlanError, match="drop_probability"):
            FaultPlan.from_dict({"drop_probability": 0.5})

    def test_from_dict_rejects_uncastable_values(self):
        with pytest.raises(FaultPlanError, match="bad fault-plan payload"):
            FaultPlan.from_dict({"drop_prob": "often"})

    def test_from_dict_applies_defaults(self):
        plan = FaultPlan.from_dict({"drop_prob": 0.25})
        assert plan == FaultPlan(drop_prob=0.25)


class TestBuiltinPlans:
    def test_every_builtin_is_valid_and_named_consistently(self):
        assert BUILTIN_PLANS["none"].is_noop
        for name, plan in BUILTIN_PLANS.items():
            if name in ("none", "duplicate", "stall"):
                assert plan.is_lossless, name
            else:
                assert not plan.is_lossless, name

    def test_builtin_plan_lookup_and_reseed(self):
        assert builtin_plan("drop") == BUILTIN_PLANS["drop"]
        assert builtin_plan("drop", seed=9).seed == 9

    def test_unknown_builtin_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown builtin"):
            builtin_plan("earthquake")


class TestParseFaultSpec:
    def test_builtin_name(self):
        assert parse_fault_spec("chaos") == BUILTIN_PLANS["chaos"]

    def test_inline_json(self):
        plan = parse_fault_spec('{"drop_prob": 0.2, "seed": 3}')
        assert plan == FaultPlan(drop_prob=0.2, seed=3)

    def test_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"stall_prob": 0.5, "max_stall": 2}))
        assert parse_fault_spec(str(path)) == FaultPlan(stall_prob=0.5, max_stall=2)

    def test_seed_override_wins(self, tmp_path):
        assert parse_fault_spec("chaos", seed=5).seed == 5
        assert parse_fault_spec('{"seed": 1}', seed=5).seed == 5

    def test_rejects_empty_and_unresolvable_specs(self, tmp_path):
        with pytest.raises(FaultPlanError, match="empty"):
            parse_fault_spec("   ")
        with pytest.raises(FaultPlanError, match="neither a builtin"):
            parse_fault_spec(str(tmp_path / "missing.json"))

    def test_rejects_invalid_inline_json(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            parse_fault_spec("{drop_prob: 0.2}")

    def test_rejects_non_object_payload(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(FaultPlanError, match="JSON object"):
            parse_fault_spec(str(path))
