"""Tests for the price-prediction featurization."""

import numpy as np
import pytest

from repro.core.config import PricingConfig, SolarConfig
from repro.data.pricing import PriceHistory, generate_history
from repro.prediction.features import (
    aware_feature_dataset,
    aware_features_for_day,
    unaware_feature_dataset,
    unaware_features_for_day,
)


@pytest.fixture
def history(rng) -> PriceHistory:
    return generate_history(
        rng,
        n_customers=50,
        pricing=PricingConfig(),
        solar=SolarConfig(peak_kw=0.7),
        n_days_pre_nm=4,
        n_days_nm=4,
    )


class TestUnawareDataset:
    def test_shapes(self, history):
        dataset = unaware_feature_dataset(history)
        expected_rows = (history.n_days - 2) * history.slots_per_day
        assert dataset.features.shape == (expected_rows, 5)
        assert dataset.targets.shape == (expected_rows,)
        assert len(dataset.names) == 5

    def test_lag_feature_values(self, history):
        dataset = unaware_feature_dataset(history)
        spd = history.slots_per_day
        # first row corresponds to day 2, slot 0: lag_1d = day 1 slot 0
        assert dataset.features[0, 0] == pytest.approx(history.prices[spd])
        assert dataset.features[0, 1] == pytest.approx(history.prices[0])
        assert dataset.targets[0] == pytest.approx(history.prices[2 * spd])

    def test_rejects_short_history(self, history):
        with pytest.raises(ValueError, match="history days"):
            unaware_feature_dataset(history.day(0))

    def test_no_renewable_columns(self, history):
        dataset = unaware_feature_dataset(history)
        assert all("net_demand" not in name for name in dataset.names)


class TestAwareDataset:
    def test_has_net_demand_columns(self, history):
        dataset = aware_feature_dataset(history)
        assert "net_demand_lag_1d" in dataset.names
        assert "net_demand_target" in dataset.names

    def test_target_net_demand_feature(self, history):
        dataset = aware_feature_dataset(history)
        spd = history.slots_per_day
        target_col = dataset.names.index("net_demand_target")
        assert dataset.features[0, target_col] == pytest.approx(
            history.net_demand[2 * spd]
        )


class TestPredictionFeatures:
    def test_unaware_day_shape(self, history):
        rows = unaware_features_for_day(history)
        assert rows.shape == (history.slots_per_day, 5)

    def test_unaware_day_uses_last_days(self, history):
        rows = unaware_features_for_day(history)
        spd = history.slots_per_day
        assert rows[0, 0] == pytest.approx(history.prices[-spd])
        assert rows[0, 1] == pytest.approx(history.prices[-2 * spd])

    def test_aware_day_requires_forecasts(self, history):
        spd = history.slots_per_day
        demand = np.full(spd, 100.0)
        renewable = np.full(spd, 20.0)
        rows = aware_features_for_day(
            history, demand_forecast=demand, renewable_forecast=renewable
        )
        assert rows.shape == (spd, 7)
        np.testing.assert_allclose(rows[:, -1], 80.0)

    def test_aware_day_shape_validation(self, history):
        with pytest.raises(ValueError, match="forecasts"):
            aware_features_for_day(
                history,
                demand_forecast=np.ones(3),
                renewable_forecast=np.ones(3),
            )

    def test_consistency_between_training_and_prediction(self, history):
        """Prediction-time rows are built exactly like training rows: the
        features for the last history day (as a training target) match the
        prediction features computed from the truncated history."""
        spd = history.slots_per_day
        truncated = PriceHistory(
            prices=history.prices[:-spd],
            demand=history.demand[:-spd],
            renewable=history.renewable[:-spd],
            nm_active=history.nm_active[:-spd],
            slots_per_day=spd,
        )
        rows = unaware_features_for_day(truncated)
        dataset = unaware_feature_dataset(history)
        np.testing.assert_allclose(rows, dataset.features[-spd:])
