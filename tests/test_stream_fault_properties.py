"""Property-style invariants for checkpoint/resume under random faults.

A seeded sweep over 50+ randomly drawn fault plans and cut points
asserts the harness's core guarantees on every draw:

- cutting a run at an arbitrary event, checkpointing, and resuming
  reproduces the uninterrupted run bitwise;
- the timeline always covers every slot exactly once, in order;
- lossless plans reproduce the clean timeline bitwise.
"""

import json

import numpy as np
import pytest

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    SolarConfig,
    TimeGrid,
)
from repro.faults import FaultPlan
from repro.simulation.cache import GameSolutionCache
from repro.stream.checkpoint import resume_engine, save_checkpoint
from repro.stream.pipeline import build_synthetic_engine

N_DAYS = 2
SLOTS_PER_DAY = 12
N_TRIALS = 52


@pytest.fixture(scope="module")
def tiny_config() -> CommunityConfig:
    return CommunityConfig(
        n_customers=6,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=SLOTS_PER_DAY, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        solar=SolarConfig(peak_kw=0.7),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4, hack_probability=0.15),
        seed=11,
    )


@pytest.fixture(scope="module")
def cache() -> GameSolutionCache:
    return GameSolutionCache()


@pytest.fixture(scope="module")
def clean_text(tiny_config, cache) -> list[str]:
    engine = _engine(tiny_config, cache, None)
    engine.run()
    return _timeline_text(engine)


def _engine(config, cache, faults):
    return build_synthetic_engine(
        config,
        n_days=N_DAYS,
        attack_days=(0, 1),
        detector="aware",
        cache=cache,
        faults=faults,
    )


def _timeline_text(engine) -> list[str]:
    # json text, not dicts: NaN never reaches the timeline, but text
    # comparison keeps the assertion robust if a float repr ever drifts.
    return [json.dumps(det.to_dict(), sort_keys=True) for det in engine.timeline]


def _random_plan(rng: np.random.Generator) -> FaultPlan:
    """One random plan; probabilities kept small enough that most slots
    still process, which keeps cut points meaningful."""
    probs = rng.uniform(0.0, 0.25, size=6) * (rng.random(6) < 0.6)
    return FaultPlan(
        seed=int(rng.integers(0, 2**31)),
        drop_prob=float(probs[0]),
        duplicate_prob=float(probs[1]),
        reorder_prob=float(probs[2]),
        delay_prob=float(probs[3]),
        max_delay=int(rng.integers(1, 4)),
        corrupt_prob=float(probs[4]),
        stall_prob=float(probs[5]),
        max_stall=int(rng.integers(1, 4)),
    )


def test_cut_checkpoint_resume_equals_full_run(
    tiny_config, cache, clean_text, tmp_path
):
    rng = np.random.default_rng(2026)
    for trial in range(N_TRIALS):
        plan = _random_plan(rng)
        label = f"trial {trial}: {plan.to_dict()}"

        full = _engine(tiny_config, cache, plan)
        full.run()
        expected = _timeline_text(full)

        slots = [det.slot for det in full.timeline]
        assert slots == list(range(N_DAYS * SLOTS_PER_DAY)), label

        if plan.is_lossless:
            assert expected == clean_text, f"{label}: lossless must match clean"

        # Cut somewhere strictly inside the run, checkpoint, resume.
        cut = int(rng.integers(1, max(2, full.events_processed)))
        head = _engine(tiny_config, cache, plan)
        head.run(max_events=cut)
        path = tmp_path / f"trial-{trial}.json"
        save_checkpoint(head, path)
        resumed = resume_engine(path, cache=cache)
        resumed.run()
        assert _timeline_text(resumed) == expected, (
            f"{label}: resume at event {cut} diverged"
        )
        path.unlink()


def test_double_cut_still_converges(tiny_config, cache, tmp_path):
    """Checkpointing twice along the same run changes nothing."""
    rng = np.random.default_rng(7)
    plan = _random_plan(rng)
    full = _engine(tiny_config, cache, plan)
    full.run()
    expected = _timeline_text(full)

    engine = _engine(tiny_config, cache, plan)
    for stage, cut in enumerate((5, 9)):
        engine.run(max_events=cut)
        path = tmp_path / f"stage-{stage}.json"
        save_checkpoint(engine, path)
        engine = resume_engine(path, cache=cache)
    engine.run()
    assert _timeline_text(engine) == expected
