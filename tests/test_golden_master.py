"""Golden-master regression: fresh runs must match the committed digests.

The committed fixture under ``tests/golden/`` pins every number the
smoke preset produces for the fig3–fig6/table1 pipeline.  Any silent
behaviour drift — pricing, prediction, game solving, detection,
streaming replay — shows up here as a named leaf diff.  After an
*intentional* change, regenerate with ``make refresh-golden`` and commit
the new fixture alongside the change.
"""

from pathlib import Path

import pytest

from repro.core.presets import smoke_preset
from repro.reporting.golden import (
    GOLDEN_FORMAT,
    GOLDEN_VERSION,
    compute_golden_digests,
    diff_digests,
    load_golden_digests,
    write_golden_digests,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


class TestSmokeFixture:
    def test_fixture_is_committed_and_well_formed(self):
        fixture = load_golden_digests(GOLDEN_DIR / "smoke_digests.json")
        assert fixture["format"] == GOLDEN_FORMAT
        assert fixture["version"] == GOLDEN_VERSION
        assert set(fixture["scenarios"]) == {"none", "unaware", "aware"}
        for digest in fixture["scenarios"].values():
            assert len(digest["flags_sha256"]) == 64

    def test_fresh_run_matches_committed_digests(self):
        """The headline regression gate: recompute everything, diff."""
        expected = load_golden_digests(GOLDEN_DIR / "smoke_digests.json")
        actual = compute_golden_digests(smoke_preset())
        diffs = diff_digests(expected, actual)
        assert not diffs, (
            "golden drift (run `make refresh-golden` only if intentional):\n"
            + "\n".join(diffs)
        )


class TestDigestIo:
    def test_write_load_round_trip(self, tmp_path):
        digests = {"format": GOLDEN_FORMAT, "version": GOLDEN_VERSION, "x": 1.25}
        path = write_golden_digests(digests, tmp_path / "d.json")
        assert load_golden_digests(path) == digests

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else", "version": 1}')
        with pytest.raises(ValueError, match="not a golden digest file"):
            load_golden_digests(path)

    def test_load_rejects_version_skew(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(f'{{"format": "{GOLDEN_FORMAT}", "version": 99}}')
        with pytest.raises(ValueError, match="version"):
            load_golden_digests(path)


class TestDiffDigests:
    def test_equal_documents_diff_empty(self):
        doc = {"a": 1, "nested": {"b": "x"}}
        assert diff_digests(doc, doc) == []

    def test_leaf_change_is_named_with_full_path(self):
        diffs = diff_digests(
            {"scenarios": {"aware": {"mean_par": 1.0}}},
            {"scenarios": {"aware": {"mean_par": 2.0}}},
        )
        assert diffs == ["scenarios.aware.mean_par: expected 1.0, got 2.0"]

    def test_missing_and_unexpected_entries_reported(self):
        diffs = diff_digests({"gone": 1}, {"new": 2})
        assert any("gone: missing" in d for d in diffs)
        assert any("new: unexpected" in d for d in diffs)

    def test_type_change_dict_vs_scalar_is_a_diff(self):
        assert diff_digests({"a": {"b": 1}}, {"a": 5}) == [
            "a: expected {'b': 1}, got 5"
        ]
