"""Tests for the stochastic meter-hacking process."""

import numpy as np
import pytest

from repro.attacks.hacking import MeterHackingProcess


def make_process(q=0.5, n=6, seed=0, **kwargs) -> MeterHackingProcess:
    return MeterHackingProcess(n, q, rng=np.random.default_rng(seed), **kwargs)


class TestValidation:
    def test_rejects_bad_meters(self):
        with pytest.raises(ValueError):
            MeterHackingProcess(0, 0.5)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            MeterHackingProcess(5, 1.5)

    def test_rejects_bad_strength_range(self):
        with pytest.raises(ValueError, match="strength"):
            MeterHackingProcess(5, 0.1, strength_range=(0.9, 0.5))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            MeterHackingProcess(5, 0.1, window_hours=(0, 3))


class TestDynamics:
    def test_monotone_compromise_without_repair(self):
        process = make_process()
        previous = 0
        for _ in range(10):
            process.step()
            assert process.n_hacked >= previous
            previous = process.n_hacked

    def test_all_hacked_with_certainty(self):
        process = make_process(q=1.0)
        process.step()
        assert process.n_hacked == 6

    def test_never_hacked_with_zero_probability(self):
        process = make_process(q=0.0)
        for _ in range(20):
            process.step()
        assert process.n_hacked == 0

    def test_repair_resets(self):
        process = make_process(q=1.0)
        process.step()
        repaired = process.repair_all()
        assert repaired == 6
        assert process.n_hacked == 0
        assert process.hacked_meters == ()

    def test_hacked_mask_consistent(self):
        process = make_process(q=0.7)
        process.step()
        mask = process.hacked_mask
        assert mask.sum() == process.n_hacked
        for meter in process.hacked_meters:
            assert mask[meter.meter_id]

    def test_fresh_meters_reported(self):
        process = make_process(q=1.0)
        fresh = process.step()
        assert len(fresh) == 6
        assert process.step() == ()

    def test_attack_persists_until_repair(self):
        process = make_process(q=1.0, n=1)
        process.step()
        attack_before = process.hacked_meters[0].attack
        process.step()
        assert process.hacked_meters[0].attack is attack_before


class TestReceivedPrice:
    def test_clean_meter_gets_original(self):
        process = make_process(q=0.0)
        prices = np.linspace(0.02, 0.05, 24)
        out = process.received_price(0, prices)
        np.testing.assert_array_equal(out, prices)
        assert out is not prices  # defensive copy

    def test_hacked_meter_gets_manipulated(self):
        process = make_process(q=1.0)
        process.step()
        prices = np.linspace(0.02, 0.05, 24)
        out = process.received_price(0, prices)
        assert not np.array_equal(out, prices)
        assert np.all(out <= prices + 1e-12)  # peak-increase attacks only lower

    def test_meter_id_range(self):
        process = make_process()
        with pytest.raises(IndexError):
            process.received_price(6, np.zeros(24))


class TestDrawAttack:
    def test_attack_parameters_in_range(self):
        process = make_process(strength_range=(0.3, 0.8), window_hours=(2, 4))
        for _ in range(50):
            attack = process.draw_attack()
            assert 0.3 <= attack.strength <= 0.8
            width = attack.end_slot - attack.start_slot + 1
            assert 2 <= width <= 4
            assert 0 <= attack.start_slot
            assert attack.end_slot < 24

    def test_statistical_compromise_rate(self):
        """Empirical per-slot hack rate matches the configured probability."""
        hits = 0
        trials = 400
        for seed in range(trials):
            process = make_process(q=0.3, n=1, seed=seed)
            process.step()
            hits += process.n_hacked
        assert hits / trials == pytest.approx(0.3, abs=0.06)
