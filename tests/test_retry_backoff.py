"""Jitter-free backoff: the retry schedule is exactly reproducible."""

import pytest

from repro.core.config import ConfigError, RetryPolicy
from repro.faults.plan import FaultPlan
from repro.simulation.cache import GameSolutionCache
from repro.stream.pipeline import build_synthetic_engine


class TestDelaySchedule:
    def test_exact_exponential_schedule(self):
        policy = RetryPolicy(max_retries=8, backoff_base_s=0.5, backoff_max_s=3.0)
        assert [policy.delay(a) for a in range(1, 6)] == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_zero_base_never_sleeps(self):
        policy = RetryPolicy(max_retries=8)
        assert all(policy.delay(a) == 0.0 for a in range(1, 10))  # repro: noqa[FLT001] — exact zero
        assert policy.total_backoff(10) == 0.0  # repro: noqa[FLT001] — exact zero

    def test_total_backoff_is_the_exact_sum(self):
        policy = RetryPolicy(max_retries=8, backoff_base_s=0.25, backoff_max_s=1.0)
        # 0.25 + 0.5 + 1.0 + 1.0 + 1.0 — exact binary fractions, so the
        # equality is bitwise, not approximate.
        assert policy.total_backoff(5) == 0.25 + 0.5 + 1.0 + 1.0 + 1.0  # repro: noqa[FLT001] — exact binary fractions
        assert policy.total_backoff(0) == 0.0  # repro: noqa[FLT001] — exact zero
        assert policy.total_backoff(1) == policy.delay(1)

    def test_total_backoff_matches_delay_sum_everywhere(self):
        policy = RetryPolicy(max_retries=8, backoff_base_s=0.125, backoff_max_s=2.0)
        for retries in range(12):
            assert policy.total_backoff(retries) == sum(
                policy.delay(a) for a in range(1, retries + 1)
            )

    def test_validation(self):
        policy = RetryPolicy()
        with pytest.raises(ConfigError, match="attempt"):
            policy.delay(0)
        with pytest.raises(ConfigError, match="retries"):
            policy.total_backoff(-1)


class TestEngineBackoffReproducibility:
    """A stalled seeded run sleeps the same attempts — and the same total
    seconds — every time."""

    POLICY = RetryPolicy(max_retries=8, backoff_base_s=0.125, backoff_max_s=0.5)

    def _recorded_sleeps(self, tiny_config) -> list[float]:
        # Stalls fire on price updates (one per day), so every day of
        # this run opens with a seeded burst of 1-3 empty polls.
        engine = build_synthetic_engine(
            tiny_config,
            n_days=3,
            attack_days=(0, 1),
            cache=GameSolutionCache(),
            faults=FaultPlan(seed=2, stall_prob=1.0, max_stall=3),
            retry=self.POLICY,
        )
        recorded: list[float] = []
        engine._sleep = recorded.append
        engine.run()
        assert engine.exhausted
        return recorded

    def test_sleep_schedule_is_bitwise_reproducible(self, tiny_config):
        first = self._recorded_sleeps(tiny_config)
        second = self._recorded_sleeps(tiny_config)
        assert first, "the stall plan should have stalled at least once"
        assert first == second
        assert sum(first) == sum(second)

    def test_total_sleep_decomposes_into_burst_budgets(self, tiny_config):
        """Every stall burst's cost is exactly ``total_backoff(len)``.

        The engine resets its stall counter on a successful poll, so the
        recorded sleeps split into bursts that each restart at
        ``delay(1)``; per burst, the exact budget accounting holds.
        """
        recorded = self._recorded_sleeps(tiny_config)
        bursts: list[int] = []
        for value in recorded:
            if value == self.POLICY.delay(1) or not bursts:
                bursts.append(1)
            else:
                bursts[-1] += 1
        assert sum(recorded) == sum(
            self.POLICY.total_backoff(length) for length in bursts
        )
