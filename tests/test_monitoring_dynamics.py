"""Closed-loop monitoring dynamics: detector + hacking process coupling.

These tests drive the LongTermDetector against the true
MeterHackingProcess with synthetic (rate-parameterized) observation
channels, checking the feedback behaviours the Table-1 results rest on:
sharp channels clear compromises quickly, blind channels let them pile
up, and labor scales with the repair cadence.
"""

import numpy as np
import pytest

from repro.attacks.hacking import MeterHackingProcess
from repro.detection.long_term import LongTermDetector
from repro.detection.pomdp import build_detection_pomdp

N_METERS = 6


def run_loop(
    *,
    tp: float,
    fp: float,
    hack_probability: float = 0.15,
    n_slots: int = 40,
    seed: int = 0,
) -> tuple[int, float]:
    """Closed loop with a synthetic per-meter observation channel.

    Returns (repairs, mean hacked count).
    """
    rng = np.random.default_rng(seed)
    process = MeterHackingProcess(
        N_METERS, hack_probability, rng=np.random.default_rng(seed + 1)
    )
    model = build_detection_pomdp(
        N_METERS,
        hack_probability=hack_probability,
        tp_rate=tp,
        fp_rate=fp,
        damage_per_meter=1.0,
        repair_fixed_cost=2.0,
        repair_cost_per_meter=1.0,
        discount=0.92,
    )
    detector = LongTermDetector(model)
    hacked_counts = []
    for _ in range(n_slots):
        process.step()
        hacked_counts.append(process.n_hacked)
        mask = process.hacked_mask
        flags = np.where(mask, rng.random(N_METERS) < tp, rng.random(N_METERS) < fp)
        step = detector.step(int(flags.sum()))
        if step.repaired:
            process.repair_all()
    return detector.n_repairs, float(np.mean(hacked_counts))


class TestClosedLoop:
    def test_sharp_channel_contains_compromise(self):
        repairs, mean_hacked = run_loop(tp=0.95, fp=0.02)
        assert repairs >= 2
        assert mean_hacked < N_METERS * 0.5

    def test_blind_channel_lets_compromise_pile_up(self):
        """With near-zero detection the belief follows only the hacking
        prior; repairs are rare and the fleet saturates."""
        _, blind_hacked = run_loop(tp=0.05, fp=0.02)
        _, sharp_hacked = run_loop(tp=0.95, fp=0.02)
        assert blind_hacked > sharp_hacked

    def test_channel_quality_monotone_in_exposure(self):
        """Exposure (mean hacked) decreases as the channel sharpens,
        averaged over seeds."""
        def mean_exposure(tp):
            return np.mean(
                [run_loop(tp=tp, fp=0.02, seed=s)[1] for s in range(4)]
            )

        assert mean_exposure(0.9) <= mean_exposure(0.3) + 0.3

    def test_false_alarm_storm_handled_rationally(self):
        """A noisy channel (high fp) calibrated INTO the model does not
        cause constant repairs: the belief discounts the flood."""
        repairs_noisy, _ = run_loop(tp=0.9, fp=0.45)
        repairs_sharp, _ = run_loop(tp=0.9, fp=0.02)
        assert repairs_noisy <= repairs_sharp + 8

    def test_no_hacking_no_repairs(self):
        repairs, mean_hacked = run_loop(
            tp=0.9, fp=0.02, hack_probability=0.0, n_slots=30
        )
        assert mean_hacked == pytest.approx(0.0)
        assert repairs == 0
