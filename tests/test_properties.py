"""Cross-module property-based tests on core invariants.

These complement the per-module suites with hypothesis-driven checks of
the identities that hold the reproduction together: energy conservation
through the game, Eqn. (1)/(2) consistency, DP optimality under
transformations, and detector monotonicity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.config import BatteryConfig
from repro.netmetering.battery import clamp_trajectory
from repro.netmetering.cost import NetMeteringCostModel
from repro.netmetering.trading import trading_amounts
from repro.scheduling.appliance import ApplianceTask
from repro.scheduling.dp import schedule_appliance_table

H = 8


@st.composite
def cost_models(draw):
    prices = draw(
        arrays(np.float64, H, elements=st.floats(0.001, 0.2))
    )
    w = draw(st.floats(1.0, 5.0))
    return NetMeteringCostModel(prices=tuple(prices), sellback_divisor=w)


class TestCostIdentities:
    @settings(max_examples=60, deadline=None)
    @given(
        model=cost_models(),
        trading=arrays(np.float64, H, elements=st.floats(-3.0, 5.0)),
        others=arrays(np.float64, H, elements=st.floats(0.0, 50.0)),
    )
    def test_buying_costs_money_selling_earns(self, model, trading, others):
        """With positive community demand, buying slots cost >= 0 and
        selling slots cost <= 0."""
        per_slot = model.customer_cost_per_slot(trading, others)
        total = others + trading
        buying = (trading >= 0) & (total > 0)
        selling = (trading < 0) & (total > 0)
        assert np.all(per_slot[buying] >= -1e-12)
        assert np.all(per_slot[selling] <= 1e-12)

    @settings(max_examples=60, deadline=None)
    @given(
        model=cost_models(),
        trading=arrays(np.float64, H, elements=st.floats(-2.0, 4.0)),
        others=arrays(np.float64, H, elements=st.floats(0.0, 30.0)),
        multiplicity=st.integers(1, 8),
    )
    def test_sell_reward_bounded_by_purchase_price(
        self, model, trading, others, multiplicity
    ):
        """W >= 1 means the per-unit sell-back reward never exceeds what a
        buyer would pay at the same community total."""
        per_slot = model.customer_cost_per_slot(
            trading, others, multiplicity=multiplicity
        )
        prices = model.price_array
        total = np.maximum(others + multiplicity * trading, 0.0)
        bound = prices * total * np.abs(trading)
        assert np.all(np.abs(per_slot) <= bound + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        model=cost_models(),
        base=arrays(np.float64, H, elements=st.floats(-1.0, 3.0)),
        others=arrays(np.float64, H, elements=st.floats(0.0, 30.0)),
    )
    def test_marginal_table_telescopes(self, model, base, others):
        """Adding level a then reading the marginal of level b from the new
        base equals the direct marginal of (a+b) from the original base."""
        levels = np.array([0.0, 0.5, 1.0])
        direct = model.marginal_cost_table(base, others, np.array([0.0, 1.0]))
        step1 = model.marginal_cost_table(base, others, np.array([0.0, 0.5]))
        base2 = base + 0.5
        step2 = model.marginal_cost_table(base2, others, np.array([0.0, 0.5]))
        np.testing.assert_allclose(
            direct[:, 1], step1[:, 1] + step2[:, 1], atol=1e-9
        )


class TestBatteryTradingIdentity:
    @settings(max_examples=60, deadline=None)
    @given(
        load=arrays(np.float64, H, elements=st.floats(0.0, 3.0)),
        pv=arrays(np.float64, H, elements=st.floats(0.0, 2.0)),
        raw=arrays(np.float64, H + 1, elements=st.floats(-3.0, 6.0)),
    )
    def test_projected_trajectory_conserves_energy(self, load, pv, raw):
        spec = BatteryConfig(
            capacity_kwh=3.0, initial_kwh=1.0, max_charge_kw=1.0, max_discharge_kw=1.0
        )
        trajectory = clamp_trajectory(raw, spec)
        y = trading_amounts(load, pv, trajectory)
        # Eqn (1) summed over the horizon:
        assert y.sum() == pytest.approx(
            load.sum() + (trajectory[-1] - trajectory[0]) - pv.sum(), abs=1e-9
        )


class TestDpInvariances:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 5_000),
        shift=st.floats(-2.0, 2.0),
    )
    def test_column_shift_invariance(self, seed, shift):
        """Adding a constant to one slot's whole column shifts every
        feasible plan equally only if the level-0 column shifts too; with
        level costs scaled by power, the argmin is scale-invariant."""
        rng = np.random.default_rng(seed)
        task = ApplianceTask("t", (0.0, 1.0), 2.0, 1, 4)
        table = rng.uniform(0.0, 1.0, size=(6, 2))
        table[:, 0] = 0.0
        schedule_a, diag_a = schedule_appliance_table(task, table)
        scaled = table * 3.0
        schedule_b, diag_b = schedule_appliance_table(task, scaled)
        assert schedule_a.power == schedule_b.power
        assert diag_b.optimal_cost == pytest.approx(3.0 * diag_a.optimal_cost)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_schedule_always_feasible(self, seed):
        rng = np.random.default_rng(seed)
        width = int(rng.integers(3, 7))
        start = int(rng.integers(0, 3))
        energy = float(rng.integers(1, width))
        task = ApplianceTask("t", (0.0, 0.5, 1.0), energy, start, start + width)
        table = rng.normal(0.0, 1.0, size=(start + width + 2, 3))
        table[:, 0] = 0.0
        schedule, _ = schedule_appliance_table(task, table)
        schedule.validate()


class TestDetectionMonotonicity:
    def test_stronger_attack_larger_margin(self):
        """On the same window, a stronger price cut never reduces the
        margin (the community can only chase a cheaper window harder)."""
        from repro.attacks.pricing import PeakIncreaseAttack
        from repro.core.config import GameConfig
        from repro.detection.single_event import (
            CommunityResponseSimulator,
            SingleEventDetector,
        )
        from repro.scheduling.game import Community
        from tests.conftest import make_customer

        fast = GameConfig(
            max_rounds=2, inner_iterations=1, ce_samples=8,
            ce_elites=2, ce_iterations=2,
        )
        community = Community(
            customers=(make_customer(0), make_customer(1)), counts=(6, 6)
        )
        simulator = CommunityResponseSimulator(community, config=fast, seed=1)
        prices = np.full(24, 0.03)
        detector = SingleEventDetector(
            simulator, prices, threshold=0.1, margin_noise_std=0.0
        )
        margins = [
            detector.check(
                PeakIncreaseAttack(18, 19, strength=s).apply(prices)
            ).margin
            for s in (0.0, 0.5, 1.0)
        ]
        assert margins[0] <= margins[1] + 0.05
        assert margins[1] <= margins[2] + 0.05
