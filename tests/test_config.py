"""Tests for the configuration dataclasses."""

import pytest

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    ConfigError,
    DetectionConfig,
    GameConfig,
    PricingConfig,
    SolarConfig,
    TimeGrid,
)


class TestTimeGrid:
    def test_defaults(self):
        grid = TimeGrid()
        assert grid.horizon == 24
        assert grid.hours_per_slot == pytest.approx(1.0)

    def test_multi_day(self):
        grid = TimeGrid(slots_per_day=24, n_days=2)
        assert grid.horizon == 48

    def test_subhourly(self):
        grid = TimeGrid(slots_per_day=48)
        assert grid.hours_per_slot == pytest.approx(0.5)

    def test_slot_of_hour(self):
        grid = TimeGrid(slots_per_day=24, n_days=2)
        assert grid.slot_of_hour(0.0) == 0
        assert grid.slot_of_hour(13.5) == 13
        assert grid.slot_of_hour(24.0) == 23  # clamped to last slot
        assert grid.slot_of_hour(1.0, day=1) == 25

    def test_hour_of_slot_roundtrip(self):
        grid = TimeGrid(slots_per_day=24, n_days=2)
        assert grid.hour_of_slot(30) == pytest.approx(6.0)
        assert grid.day_of_slot(30) == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            TimeGrid(slots_per_day=0)
        with pytest.raises(ConfigError):
            TimeGrid(n_days=0)
        grid = TimeGrid()
        with pytest.raises(ConfigError):
            grid.slot_of_hour(25.0)
        with pytest.raises(ConfigError):
            grid.hour_of_slot(24)
        with pytest.raises(ConfigError):
            grid.slot_of_hour(1.0, day=1)


class TestBatteryConfig:
    def test_defaults_valid(self):
        BatteryConfig()

    def test_initial_within_capacity(self):
        with pytest.raises(ConfigError):
            BatteryConfig(capacity_kwh=1.0, initial_kwh=2.0)

    def test_negative_rates(self):
        with pytest.raises(ConfigError):
            BatteryConfig(max_charge_kw=-1.0)

    def test_zero_capacity_allowed(self):
        spec = BatteryConfig(capacity_kwh=0.0, initial_kwh=0.0)
        assert spec.capacity_kwh == pytest.approx(0.0)


class TestSolarConfig:
    def test_sun_ordering(self):
        with pytest.raises(ConfigError):
            SolarConfig(sunrise_hour=20.0, sunset_hour=6.0)

    def test_negative_peak(self):
        with pytest.raises(ConfigError):
            SolarConfig(peak_kw=-0.5)


class TestPricingConfig:
    def test_w_at_least_one(self):
        with pytest.raises(ConfigError, match="W"):
            PricingConfig(sellback_divisor=0.9)

    def test_nonnegative_fields(self):
        with pytest.raises(ConfigError):
            PricingConfig(base_price=-0.1)
        with pytest.raises(ConfigError):
            PricingConfig(noise_std=-0.1)


class TestGameConfig:
    def test_elite_bound(self):
        with pytest.raises(ConfigError):
            GameConfig(ce_samples=8, ce_elites=9)

    def test_positive_rounds(self):
        with pytest.raises(ConfigError):
            GameConfig(max_rounds=0)

    def test_hysteresis_nonnegative(self):
        with pytest.raises(ConfigError):
            GameConfig(hysteresis=-0.1)


class TestDetectionConfig:
    def test_probability_bounds(self):
        with pytest.raises(ConfigError):
            DetectionConfig(hack_probability=1.5)

    def test_discount_open_interval(self):
        with pytest.raises(ConfigError):
            DetectionConfig(discount=1.0)

    def test_meters_positive(self):
        with pytest.raises(ConfigError):
            DetectionConfig(n_monitored_meters=0)


class TestCommunityConfig:
    def test_defaults(self):
        config = CommunityConfig()
        assert config.n_customers == 500

    def test_appliance_range(self):
        with pytest.raises(ConfigError):
            CommunityConfig(appliances_per_customer=(3, 2))
        with pytest.raises(ConfigError):
            CommunityConfig(appliances_per_customer=(0, 2))

    def test_adoption_bounds(self):
        with pytest.raises(ConfigError):
            CommunityConfig(pv_adoption=1.5)

    def test_with_updates(self):
        config = CommunityConfig()
        updated = config.with_updates(n_customers=10, seed=1)
        assert updated.n_customers == 10
        assert updated.seed == 1
        assert config.n_customers == 500  # original untouched
