"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import PRESETS, main


class TestArgumentHandling:
    def test_unknown_command_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_presets_registered(self):
        assert set(PRESETS) == {"smoke", "bench", "paper"}


class TestFigureCommands:
    def test_fig3_smoke(self, capsys):
        assert main(["fig3", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Fig3b predicted PAR" in out
        assert "1.4700" in out  # the paper target appears in the table

    def test_fig4_smoke(self, capsys):
        assert main(["fig4", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "1.3986" in out

    def test_fig5_smoke(self, capsys):
        assert main(["fig5", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "attacked" in out

    def test_seed_override_changes_numbers(self, capsys):
        main(["fig3", "--preset", "smoke", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig3", "--preset", "smoke", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second


class TestScenarioCommands:
    def test_fig6_smoke_with_json(self, capsys, tmp_path):
        assert (
            main(
                [
                    "fig6",
                    "--preset",
                    "smoke",
                    "--slots",
                    "24",
                    "--json",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "observation accuracy" in out
        assert (tmp_path / "fig6_aware.json").exists()
        assert (tmp_path / "fig6_unaware.json").exists()

    def test_table1_smoke(self, capsys):
        assert main(["table1", "--preset", "smoke", "--slots", "24"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "PAR (none)" in out
