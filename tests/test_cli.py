"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import PRESETS, main


class TestArgumentHandling:
    def test_unknown_command_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_presets_registered(self):
        assert set(PRESETS) == {"smoke", "bench", "paper"}


class TestFigureCommands:
    def test_fig3_smoke(self, capsys):
        assert main(["fig3", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Fig3b predicted PAR" in out
        assert "1.4700" in out  # the paper target appears in the table

    def test_fig4_smoke(self, capsys):
        assert main(["fig4", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "1.3986" in out

    def test_fig5_smoke(self, capsys):
        assert main(["fig5", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "attacked" in out

    def test_seed_override_changes_numbers(self, capsys):
        main(["fig3", "--preset", "smoke", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig3", "--preset", "smoke", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second


class TestStreamCommand:
    def test_stream_smoke_ascii(self, capsys):
        assert main(["stream", "--preset", "smoke", "--days", "2"]) == 0
        out = capsys.readouterr().out
        assert "day   0" in out
        assert "repairs" in out
        assert "slots 48" in out

    def test_stream_json_format(self, capsys):
        import json

        assert main(["stream", "--preset", "smoke", "--days", "1", "--format", "json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 24
        first = json.loads(lines[0])
        assert first["slot"] == 0 and "flags" in first

    def test_stream_checkpoint_and_resume(self, capsys, tmp_path):
        assert (
            main(
                [
                    "stream", "--preset", "smoke", "--days", "3",
                    "--until-day", "1", "--checkpoint-dir", str(tmp_path),
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert "checkpoint saved" in first
        assert (tmp_path / "stream-synthetic.json").exists()
        assert (
            main(
                [
                    "stream", "--preset", "smoke", "--days", "3",
                    "--checkpoint-dir", str(tmp_path), "--resume",
                ]
            )
            == 0
        )
        second = capsys.readouterr().out
        assert "day   2" in second

    def test_resume_without_checkpoint_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "stream", "--preset", "smoke",
                    "--checkpoint-dir", str(tmp_path), "--resume",
                ]
            )

    def test_bad_days_rejected(self):
        with pytest.raises(SystemExit):
            main(["stream", "--preset", "smoke", "--days", "0"])


class TestScenarioCommands:
    def test_fig6_smoke_with_json(self, capsys, tmp_path):
        assert (
            main(
                [
                    "fig6",
                    "--preset",
                    "smoke",
                    "--slots",
                    "24",
                    "--json",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "observation accuracy" in out
        assert (tmp_path / "fig6_aware.json").exists()
        assert (tmp_path / "fig6_unaware.json").exists()

    def test_table1_smoke(self, capsys):
        assert main(["table1", "--preset", "smoke", "--slots", "24"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "PAR (none)" in out
