"""Tests for battery trajectory validation, projection and trading."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.config import BatteryConfig
from repro.netmetering.battery import (
    BatteryViolation,
    clamp_trajectory,
    validate_trajectory,
)
from repro.netmetering.trading import net_position, trading_amounts

SPEC = BatteryConfig(
    capacity_kwh=2.0, initial_kwh=0.5, max_charge_kw=1.0, max_discharge_kw=1.0
)


class TestValidateTrajectory:
    def test_accepts_feasible(self):
        b = np.array([0.5, 1.0, 2.0, 1.5, 0.5])
        out = validate_trajectory(b, SPEC)
        np.testing.assert_allclose(out, b)

    def test_rejects_wrong_initial(self):
        with pytest.raises(BatteryViolation, match="initial"):
            validate_trajectory([0.0, 0.5], SPEC)

    def test_rejects_over_capacity(self):
        with pytest.raises(BatteryViolation, match="storage"):
            validate_trajectory([0.5, 1.5, 2.5], SPEC)

    def test_rejects_negative(self):
        with pytest.raises(BatteryViolation, match="storage"):
            validate_trajectory([0.5, -0.5], SPEC)

    def test_rejects_charge_rate(self):
        with pytest.raises(BatteryViolation, match="charge"):
            validate_trajectory([0.5, 2.0], SPEC)

    def test_rejects_discharge_rate(self):
        with pytest.raises(BatteryViolation, match="discharge"):
            validate_trajectory([0.5, 1.5, 0.0], SPEC)

    def test_rejects_nan(self):
        with pytest.raises(BatteryViolation, match="NaN"):
            validate_trajectory([0.5, np.nan], SPEC)

    def test_rejects_scalar(self):
        with pytest.raises(BatteryViolation, match="1-D"):
            validate_trajectory([0.5], SPEC)


class TestClampTrajectory:
    def test_identity_on_feasible(self):
        b = np.array([0.5, 1.0, 1.5, 1.0])
        np.testing.assert_allclose(clamp_trajectory(b, SPEC), b)

    def test_pins_initial(self):
        out = clamp_trajectory([9.0, 1.0], SPEC)
        assert out[0] == SPEC.initial_kwh

    def test_projection_feasible(self):
        raw = np.array([0.5, 5.0, -3.0, 2.0, 0.0])
        out = clamp_trajectory(raw, SPEC)
        validate_trajectory(out, SPEC)

    def test_handles_nan_inf(self):
        raw = np.array([0.5, np.nan, np.inf, -np.inf])
        out = clamp_trajectory(raw, SPEC)
        validate_trajectory(out, SPEC)

    @settings(max_examples=60, deadline=None)
    @given(
        arrays(
            np.float64,
            st.integers(min_value=2, max_value=26),
            elements=st.floats(-10, 10),
        )
    )
    def test_projection_always_feasible(self, raw):
        out = clamp_trajectory(raw, SPEC)
        validate_trajectory(out, SPEC)

    @settings(max_examples=40, deadline=None)
    @given(
        arrays(
            np.float64,
            st.integers(min_value=2, max_value=16),
            elements=st.floats(-5, 5),
        )
    )
    def test_projection_idempotent(self, raw):
        once = clamp_trajectory(raw, SPEC)
        twice = clamp_trajectory(once, SPEC)
        np.testing.assert_allclose(once, twice, atol=1e-12)


class TestTradingAmounts:
    def test_balance_identity(self):
        """y = l + diff(b) - theta (Eqn. 1 rearranged)."""
        load = np.array([1.0, 2.0, 1.5])
        pv = np.array([0.5, 1.0, 0.0])
        b = np.array([0.0, 0.5, 0.0, 0.5])
        y = trading_amounts(load, pv, b)
        np.testing.assert_allclose(y, [1.0, 0.5, 2.0])

    def test_no_battery_no_pv(self):
        load = np.array([1.0, 2.0])
        y = trading_amounts(load, np.zeros(2), np.zeros(3))
        np.testing.assert_allclose(y, load)

    def test_selling_when_pv_exceeds(self):
        y = trading_amounts([0.5], [2.0], [0.0, 0.0])
        assert y[0] == pytest.approx(-1.5)

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            trading_amounts([1.0], [1.0, 2.0], [0.0, 0.0])
        with pytest.raises(ValueError):
            trading_amounts([1.0], [1.0], [0.0])

    @settings(max_examples=50, deadline=None)
    @given(
        arrays(np.float64, 6, elements=st.floats(0, 5)),
        arrays(np.float64, 6, elements=st.floats(0, 5)),
        arrays(np.float64, 7, elements=st.floats(0, 3)),
    )
    def test_energy_conservation(self, load, pv, b):
        """Total purchases equal consumption plus storage gain minus PV."""
        y = trading_amounts(load, pv, b)
        lhs = y.sum()
        rhs = load.sum() + (b[-1] - b[0]) - pv.sum()
        assert lhs == pytest.approx(rhs, abs=1e-9)


class TestNetPosition:
    def test_split(self):
        bought, sold = net_position([1.0, -2.0, 0.0])
        np.testing.assert_allclose(bought, [1.0, 0.0, 0.0])
        np.testing.assert_allclose(sold, [0.0, 2.0, 0.0])

    def test_reconstruction(self):
        y = np.array([1.5, -0.5, 0.0, 3.0])
        bought, sold = net_position(y)
        np.testing.assert_allclose(bought - sold, y)
