"""Unit tests for the event-stream fault injector (scripted source)."""

import json
from typing import Any

import numpy as np
import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.stream.events import (
    DayBoundary,
    MeterReading,
    PriceUpdate,
    event_to_dict,
)


class ScriptedSource:
    """Minimal EventSource: replays a fixed event list, counts repairs."""

    def __init__(self, events):
        self.events = list(events)
        self.cursor = 0
        self.repairs = 0

    @property
    def exhausted(self) -> bool:
        return self.cursor >= len(self.events)

    def next_event(self):
        if self.exhausted:
            return None
        event = self.events[self.cursor]
        self.cursor += 1
        return event

    def apply_repair(self) -> int:
        self.repairs += 1
        return 1

    def state_dict(self) -> dict[str, Any]:
        return {"cursor": self.cursor, "repairs": self.repairs}

    def load_state(self, state: dict[str, Any]) -> None:
        self.cursor = int(state["cursor"])
        self.repairs = int(state["repairs"])


def day_events(day: int, *, slots_per_day: int = 6, n_meters: int = 3):
    """One day's worth of events: update, readings, boundary."""
    prices = np.linspace(1.0, 2.0, slots_per_day)
    events = [PriceUpdate(day=day, clean_prices=prices, predicted_prices=prices)]
    for s in range(slots_per_day):
        slot = day * slots_per_day + s
        received = np.tile(prices, (n_meters, 1)) + 0.01 * slot
        events.append(MeterReading(slot=slot, received=received))
    events.append(DayBoundary(day=day))
    return events


def pump(injector: FaultInjector, *, max_polls: int = 10_000):
    """Drain the injector, recording delivered events (None polls skipped)."""
    delivered = []
    for _ in range(max_polls):
        if injector.exhausted:
            break
        event = injector.next_event()
        if event is not None:
            delivered.append(event)
    assert injector.exhausted, "injector did not drain within the poll budget"
    return delivered


def stream(n_days: int = 2):
    events = []
    for day in range(n_days):
        events.extend(day_events(day))
    return events


class TestNoopAndDeterminism:
    def test_noop_plan_passes_stream_through_unchanged(self):
        events = stream()
        delivered = pump(FaultInjector(ScriptedSource(events), FaultPlan()))
        assert [event_to_dict(e) for e in delivered] == [
            event_to_dict(e) for e in events
        ]

    def test_same_seed_means_identical_fault_pattern(self):
        plan = FaultPlan(
            seed=7,
            drop_prob=0.2,
            duplicate_prob=0.2,
            reorder_prob=0.2,
            delay_prob=0.2,
            corrupt_prob=0.2,
            stall_prob=0.3,
        )
        runs = []
        for _ in range(2):
            injector = FaultInjector(ScriptedSource(stream()), plan)
            runs.append(
                (
                    # json text, not dicts: NaN-corrupted cells must
                    # compare equal to themselves across runs
                    [json.dumps(event_to_dict(e)) for e in pump(injector)],
                    dict(injector.counts),
                )
            )
        assert runs[0] == runs[1]

    def test_different_seed_changes_the_pattern(self):
        plan = FaultPlan(seed=1, drop_prob=0.5)
        a = pump(FaultInjector(ScriptedSource(stream()), plan))
        b = pump(
            FaultInjector(ScriptedSource(stream()), plan.with_updates(seed=2))
        )
        assert [event_to_dict(e) for e in a] != [event_to_dict(e) for e in b]


class TestFaultFamilies:
    def test_drop_removes_readings_only(self):
        injector = FaultInjector(ScriptedSource(stream()), FaultPlan(drop_prob=1.0))
        delivered = pump(injector)
        assert not any(isinstance(e, MeterReading) for e in delivered)
        # Structure events always survive.
        assert sum(isinstance(e, PriceUpdate) for e in delivered) == 2
        assert sum(isinstance(e, DayBoundary) for e in delivered) == 2
        assert injector.counts["drop"] == 12

    def test_duplicate_delivers_replica_immediately_after(self):
        injector = FaultInjector(
            ScriptedSource(stream(1)), FaultPlan(duplicate_prob=1.0)
        )
        delivered = pump(injector)
        readings = [e for e in delivered if isinstance(e, MeterReading)]
        assert [r.slot for r in readings] == [0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5]
        assert injector.counts["duplicate"] == 6

    def test_corrupt_always_fails_validation(self):
        injector = FaultInjector(
            ScriptedSource(stream(1)), FaultPlan(corrupt_prob=1.0)
        )
        for event in pump(injector):
            if isinstance(event, MeterReading):
                assert event.validation_error() is not None
        assert injector.counts["corrupt"] == 6

    def test_reorder_swaps_adjacent_readings(self):
        injector = FaultInjector(
            ScriptedSource(stream(1)), FaultPlan(reorder_prob=1.0)
        )
        delivered = pump(injector)
        slots = [e.slot for e in delivered if isinstance(e, MeterReading)]
        assert sorted(slots) == list(range(6))
        assert slots != list(range(6))
        # A reading never crosses a day-structure event.
        kinds = [type(e).__name__ for e in delivered]
        assert kinds[0] == "PriceUpdate" and kinds[-1] == "DayBoundary"

    def test_delay_holds_readings_but_loses_none(self):
        injector = FaultInjector(
            ScriptedSource(stream(1)), FaultPlan(delay_prob=1.0, max_delay=3)
        )
        delivered = pump(injector)
        slots = sorted(e.slot for e in delivered if isinstance(e, MeterReading))
        assert slots == list(range(6))
        assert injector.counts["delay"] == 6

    def test_stall_emits_empty_polls_then_the_update(self):
        injector = FaultInjector(
            ScriptedSource(stream(1)), FaultPlan(stall_prob=1.0, max_stall=3)
        )
        polls = []
        while not injector.exhausted:
            polls.append(injector.next_event())
        assert None in polls  # at least one stalled poll
        updates = [e for e in polls if isinstance(e, PriceUpdate)]
        assert len(updates) == 1  # the update still arrives exactly once
        assert injector.counts["stall"] == 1


class TestInjectorCheckpoint:
    def test_state_round_trips_mid_stream(self):
        plan = FaultPlan(
            seed=13,
            drop_prob=0.15,
            duplicate_prob=0.15,
            reorder_prob=0.15,
            delay_prob=0.15,
            corrupt_prob=0.15,
            stall_prob=0.2,
        )
        reference = FaultInjector(ScriptedSource(stream()), plan)
        expected = [
            None if e is None else json.dumps(event_to_dict(e))
            for e in _poll_all(reference)
        ]

        probe = FaultInjector(ScriptedSource(stream()), plan)
        head = [probe.next_event() for _ in range(9)]
        state = probe.state_dict()
        resumed = FaultInjector(ScriptedSource(stream()), plan)
        resumed.load_state(state)
        tail = _poll_all(resumed)
        got = [
            None if e is None else json.dumps(event_to_dict(e))
            for e in head + tail
        ]
        assert got == expected

    def test_load_rejects_plan_mismatch(self):
        a = FaultInjector(ScriptedSource(stream()), FaultPlan(drop_prob=0.5))
        state = a.state_dict()
        b = FaultInjector(ScriptedSource(stream()), FaultPlan(drop_prob=0.4))
        with pytest.raises(ValueError, match="fault plan differs"):
            b.load_state(state)

    def test_load_rejects_foreign_state(self):
        injector = FaultInjector(ScriptedSource(stream()), FaultPlan())
        with pytest.raises(ValueError, match="not a fault-injector state"):
            injector.load_state({"kind": "synthetic"})


def _poll_all(injector: FaultInjector, *, max_polls: int = 10_000):
    """Every poll result (including None stalls) until exhaustion."""
    polls = []
    for _ in range(max_polls):
        if injector.exhausted:
            break
        polls.append(injector.next_event())
    assert injector.exhausted
    return polls
