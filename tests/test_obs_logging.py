"""Tests for structured logging and run manifests (`repro.obs`)."""

import io
import json
import logging

import pytest

from repro.core.presets import smoke_preset
from repro.obs.logs import configure_logging, get_logger
from repro.obs.manifest import MANIFEST_FORMAT, build_manifest, config_digest
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def _clean_repro_logger():
    yield
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)


class TestConfigureLogging:
    def test_plain_format(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        get_logger("unit").info("hello %d", 7)
        assert stream.getvalue() == "repro.unit INFO hello 7\n"

    def test_json_lines_format(self):
        stream = io.StringIO()
        configure_logging(stream=stream, json_lines=True)
        get_logger("unit").warning("look out", extra={"slot": 3})
        record = json.loads(stream.getvalue())
        assert record["level"] == "WARNING"
        assert record["logger"] == "repro.unit"
        assert record["message"] == "look out"
        assert record["slot"] == 3
        assert record["ts"] >= 0

    def test_reconfigure_replaces_handler(self):
        first = io.StringIO()
        second = io.StringIO()
        configure_logging(stream=first)
        configure_logging(stream=second)
        get_logger("unit").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging(stream=stream, level=logging.WARNING)
        get_logger("unit").info("quiet")
        get_logger("unit").error("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_exception_serialized_in_json(self):
        stream = io.StringIO()
        configure_logging(stream=stream, json_lines=True)
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger("unit").exception("failed")
        record = json.loads(stream.getvalue())
        assert "ValueError: boom" in record["exception"]

    def test_get_logger_normalizes_names(self):
        assert get_logger("stream").name == "repro.stream"
        assert get_logger("repro.service").name == "repro.service"
        assert get_logger("repro").name == "repro"


class TestRunCorrelation:
    def test_run_and_span_ids_stamped(self, monkeypatch):
        tracer = Tracer()
        monkeypatch.setattr("repro.obs.logs.TRACER", tracer)
        tracer.enable(run_id="corr-run")
        stream = io.StringIO()
        configure_logging(stream=stream, json_lines=True)
        with tracer.span("outer") as span:
            get_logger("unit").info("inside")
        record = json.loads(stream.getvalue())
        assert record["run_id"] == "corr-run"
        assert record["span_id"] == span.span_id

    def test_no_ids_when_tracer_idle(self):
        stream = io.StringIO()
        configure_logging(stream=stream, json_lines=True)
        get_logger("unit").info("plain")
        record = json.loads(stream.getvalue())
        assert "span_id" not in record


class TestManifest:
    def test_shape_and_no_timestamps(self):
        manifest = build_manifest(
            smoke_preset(), seeds={"stream": 7}, command="stream"
        )
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["command"] == "stream"
        assert manifest["seeds"] == {"stream": 7}
        assert set(manifest["platform"]) == {"python", "numpy", "system"}
        assert len(manifest["config_sha256"]) == 64
        # Checkpoints embed manifests: no clock-derived fields allowed,
        # or bitwise checkpoint identity breaks.
        flat = json.dumps(manifest).lower()
        for banned in ("time", "date", "clock"):
            assert banned not in flat

    def test_config_digest_stable_and_sensitive(self):
        config = smoke_preset()
        assert config_digest(config) == config_digest(config)
        changed = config.with_updates(seed=config.seed + 1)
        assert config_digest(config) != config_digest(changed)

    def test_dict_config_matches_object_digest(self):
        from repro.core.config import config_to_dict

        config = smoke_preset()
        assert config_digest(config_to_dict(config)) == config_digest(config)

    def test_manifest_without_config(self):
        manifest = build_manifest()
        assert "config_sha256" not in manifest
        assert "seeds" not in manifest
        assert manifest["format"] == MANIFEST_FORMAT

    def test_extra_fields_merged(self):
        manifest = build_manifest(extra={"preset": "smoke"})
        assert manifest["preset"] == "smoke"

    def test_version_matches_package(self):
        from repro import __version__

        assert build_manifest()["package_version"] == __version__
