"""Tests for the deterministic serial/process execution layer."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.perf.parallel import SERIAL_MAP, ParallelMap, spawn_seeds
from repro.simulation.aggregate import run_aggregate_scenario


def _cube(item: int) -> int:
    """Module-level so the process backend can pickle it."""
    return item**3


def _seeded_draw(item: tuple[int, int]) -> float:
    """Self-seeding task: the item carries its own seed."""
    seed, n = item
    return float(np.random.default_rng(seed).normal(size=n).sum())


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(42, 5) == spawn_seeds(42, 5)

    def test_distinct_children(self):
        seeds = spawn_seeds(42, 8)
        assert len(set(seeds)) == 8

    def test_master_seed_matters(self):
        assert spawn_seeds(1, 3) != spawn_seeds(2, 3)

    def test_empty(self):
        assert spawn_seeds(0, 0) == ()

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestParallelMapValidation:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ParallelMap(backend="threads")  # type: ignore[arg-type]

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ParallelMap(backend="process", max_workers=0)

    def test_rejects_bad_chunksize(self):
        with pytest.raises(ValueError):
            ParallelMap(chunksize=0)

    def test_effective_workers(self):
        assert SERIAL_MAP.effective_workers == 1
        # The process pool never claims more parallelism than the
        # machine has cores for — requesting 3 workers on a smaller box
        # reports what can actually run concurrently.
        expected = min(3, os.cpu_count() or 1)
        pmap = ParallelMap(backend="process", max_workers=3)
        assert pmap.effective_workers == expected

    def test_effective_workers_capped_at_cpu_count(self):
        huge = ParallelMap(backend="process", max_workers=10_000)
        assert huge.effective_workers == (os.cpu_count() or 1)


class TestBackendEquivalence:
    def test_serial_map_preserves_order(self):
        assert SERIAL_MAP.map(_cube, range(6)) == [i**3 for i in range(6)]

    def test_process_matches_serial(self):
        pmap = ParallelMap(backend="process", max_workers=2)
        assert pmap.map(_cube, range(10)) == SERIAL_MAP.map(_cube, range(10))

    def test_self_seeding_tasks_identical_across_backends(self):
        items = [(seed, 16) for seed in spawn_seeds(7, 6)]
        serial = SERIAL_MAP.map(_seeded_draw, items)
        process = ParallelMap(backend="process", max_workers=2).map(
            _seeded_draw, items
        )
        assert serial == process

    def test_single_item_short_circuits(self):
        # One item never pays process-pool startup.
        assert ParallelMap(backend="process").map(_cube, [3]) == [27]

    def test_empty_items(self):
        assert ParallelMap(backend="process").map(_cube, []) == []


class TestAggregateParallelism:
    def test_process_pool_bitwise_identical_to_serial(self, tiny_config):
        kwargs = dict(
            detector="none", seeds=(1, 2), n_slots=24, calibration_trials=3
        )
        serial = run_aggregate_scenario(tiny_config, **kwargs)
        pooled = run_aggregate_scenario(
            tiny_config,
            **kwargs,
            parallel=ParallelMap(backend="process", max_workers=2),
        )
        assert serial.observation_accuracy == pooled.observation_accuracy
        assert serial.mean_par == pooled.mean_par
        assert serial.n_repairs == pooled.n_repairs
        for run_a, run_b in zip(serial.runs, pooled.runs):
            np.testing.assert_array_equal(run_a.truth, run_b.truth)
            np.testing.assert_array_equal(run_a.realized_grid, run_b.realized_grid)
