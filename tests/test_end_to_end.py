"""End-to-end pipeline tests reproducing the paper's causal chain.

One tiny-but-complete run of every stage in sequence, asserting the
qualitative claims the paper's evaluation rests on.  These are the
repository's smoke-level guarantees: if any stage's contract drifts,
the chain breaks here before it breaks in the benchmarks.
"""

import numpy as np
import pytest

from repro.attacks.pricing import ZeroPriceAttack
from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    SolarConfig,
    TimeGrid,
)
from repro.data.community import build_community
from repro.data.pricing import GuidelinePriceModel, baseline_demand_profile, generate_history
from repro.detection.single_event import (
    CommunityResponseSimulator,
    SingleEventDetector,
)
from repro.metrics.errors import rmse
from repro.prediction.price import AwarePricePredictor, UnawarePricePredictor


@pytest.fixture(scope="module")
def chain():
    """Build the full chain once: community, history, predictors, sims."""
    config = CommunityConfig(
        n_customers=16,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.5, initial_kwh=0.0, max_charge_kw=0.75, max_discharge_kw=0.75
        ),
        solar=SolarConfig(peak_kw=0.6),
        game=GameConfig(
            max_rounds=3,
            inner_iterations=1,
            ce_samples=12,
            ce_elites=3,
            ce_iterations=4,
            convergence_tol=0.05,
        ),
        detection=DetectionConfig(n_monitored_meters=4),
        seed=2015,
    )
    rng = np.random.default_rng(config.seed)
    community = build_community(config, rng=rng)
    demand = baseline_demand_profile(config.time) * config.n_customers
    price_model = GuidelinePriceModel(
        config=config.pricing, n_customers=config.n_customers
    )
    history = generate_history(
        rng,
        n_customers=config.n_customers,
        pricing=config.pricing,
        solar=config.solar,
        mean_pv_per_customer_kw=config.solar.peak_kw * config.pv_adoption,
    )
    renewable = community.total_pv
    clean = price_model.price(demand, renewable, rng=rng)
    aware = (
        AwarePricePredictor()
        .fit(history)
        .predict_day(demand_forecast=demand, renewable_forecast=renewable)
    )
    unaware = UnawarePricePredictor().fit(history).predict_day()
    truth_sim = CommunityResponseSimulator(community, config=config.game, seed=3)
    unaware_sim = CommunityResponseSimulator(
        community.without_net_metering(), config=config.game, seed=3
    )
    return {
        "config": config,
        "clean": clean,
        "aware": aware,
        "unaware": unaware,
        "truth_sim": truth_sim,
        "unaware_sim": unaware_sim,
    }


class TestPredictionStage:
    def test_aware_tracks_received_better(self, chain):
        assert rmse(chain["clean"], chain["aware"]) < rmse(
            chain["clean"], chain["unaware"]
        )

    def test_prices_positive(self, chain):
        for key in ("clean", "aware", "unaware"):
            assert np.all(chain[key] >= 0)


class TestSimulationStage:
    def test_aware_par_matches_reality_better(self, chain):
        true_par = chain["truth_sim"].grid_par(chain["clean"])
        aware_par = chain["truth_sim"].grid_par(chain["aware"])
        unaware_par = chain["unaware_sim"].grid_par(chain["unaware"])
        assert abs(aware_par - true_par) < abs(unaware_par - true_par) + 0.1


class TestDetectionStage:
    def test_attack_visible_benign_quiet(self, chain):
        detector = SingleEventDetector(
            chain["truth_sim"],
            chain["aware"],
            threshold=0.1,
            margin_noise_std=0.0,
        )
        benign_margin = detector.check(chain["clean"]).margin
        attacked = ZeroPriceAttack(17, 18).apply(chain["clean"])
        attack_margin = detector.check(attacked).margin
        assert attack_margin > benign_margin

    def test_unaware_offset_reduces_attack_margin(self, chain):
        """The chain's punchline: the unaware model's P_p offset subtracts
        from every attack margin, which is what costs it detections."""
        aware_detector = SingleEventDetector(
            chain["truth_sim"], chain["aware"], threshold=0.1, margin_noise_std=0.0
        )
        unaware_detector = SingleEventDetector(
            chain["truth_sim"],
            chain["unaware"],
            predicted_simulator=chain["unaware_sim"],
            threshold=0.1,
            margin_noise_std=0.0,
        )
        attacked = ZeroPriceAttack(17, 18).apply(chain["clean"])
        aware_margin = aware_detector.check(attacked).margin
        unaware_margin = unaware_detector.check(attacked).margin
        offset = aware_detector.predicted_par - unaware_detector.predicted_par
        # identical received-side simulation => margins differ by exactly
        # the predicted-side offset (margin = P_r - P_p)
        assert unaware_margin - aware_margin == pytest.approx(offset, abs=1e-9)
