"""Extended SVR tests: tube behaviour, regularization, standardization."""

import numpy as np
import pytest

from repro.prediction.svr import SupportVectorRegressor


class TestEpsilonTube:
    def test_wide_tube_flat_prediction(self):
        """When the tube swallows the whole (standardized) target range,
        the dual stays at zero and the prediction is the target mean."""
        x = np.linspace(0, 1, 30)[:, None]
        y = 5.0 + 0.1 * x[:, 0]
        model = SupportVectorRegressor(kernel="linear", epsilon=10.0)
        model.fit(x, y)
        assert model.support_vector_count == 0
        np.testing.assert_allclose(model.predict(x), y.mean(), atol=1e-9)

    def test_shrinking_tube_adds_support_vectors(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(40, 1))
        y = np.sin(4 * x[:, 0])
        counts = []
        for epsilon in (0.5, 0.1, 0.01):
            model = SupportVectorRegressor(kernel="rbf", epsilon=epsilon, c=10.0)
            model.fit(x, y)
            counts.append(model.support_vector_count)
        assert counts[0] <= counts[1] <= counts[2]


class TestRegularization:
    def test_small_c_shrinks_fit(self):
        """A tiny box constraint keeps the function near the mean even when
        the data has structure."""
        x = np.linspace(-1, 1, 40)[:, None]
        y = 3.0 * x[:, 0]
        weak = SupportVectorRegressor(kernel="linear", c=1e-3, epsilon=0.01)
        strong = SupportVectorRegressor(kernel="linear", c=100.0, epsilon=0.01)
        weak.fit(x, y)
        strong.fit(x, y)
        assert weak.score_rmse(x, y) > strong.score_rmse(x, y)

    def test_dual_respects_box(self):
        x = np.random.default_rng(1).normal(size=(30, 2))
        y = x[:, 0]
        model = SupportVectorRegressor(kernel="linear", c=0.5, epsilon=0.01)
        model.fit(x, y)
        assert np.all(np.abs(model._beta) <= 0.5 + 1e-9)


class TestStandardization:
    def test_feature_scale_invariance(self):
        """Internally standardized features: scaling a column by 1000
        leaves predictions (nearly) unchanged."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(50, 2))
        y = x[:, 0] - 0.5 * x[:, 1]
        scaled = x.copy()
        scaled[:, 1] *= 1000.0
        a = SupportVectorRegressor(kernel="rbf", c=10.0).fit(x, y).predict(x)
        b = SupportVectorRegressor(kernel="rbf", c=10.0).fit(scaled, y).predict(scaled)
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_target_shift_equivariance(self):
        """Adding a constant to the targets shifts predictions by the same
        constant."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(40, 2))
        y = np.sin(x[:, 0])
        base = SupportVectorRegressor(kernel="rbf", c=10.0).fit(x, y).predict(x)
        shifted = (
            SupportVectorRegressor(kernel="rbf", c=10.0)
            .fit(x, y + 100.0)
            .predict(x)
        )
        np.testing.assert_allclose(shifted, base + 100.0, atol=1e-6)

    def test_constant_feature_column_handled(self):
        """Zero-variance feature columns must not divide by zero."""
        x = np.ones((20, 2))
        x[:, 0] = np.linspace(0, 1, 20)
        y = x[:, 0]
        model = SupportVectorRegressor(kernel="linear", c=10.0)
        model.fit(x, y)
        assert np.all(np.isfinite(model.predict(x)))


class TestGammaHeuristic:
    def test_explicit_gamma_used(self):
        x = np.linspace(0, 1, 30)[:, None]
        y = np.sin(6 * x[:, 0])
        narrow = SupportVectorRegressor(kernel="rbf", gamma=100.0, c=50.0)
        narrow.fit(x, y)
        assert narrow._gamma == pytest.approx(100.0)

    def test_heuristic_gamma_positive(self):
        x = np.random.default_rng(4).normal(size=(20, 3))
        model = SupportVectorRegressor(kernel="rbf")
        model.fit(x, x[:, 0])
        assert model._gamma > 0
