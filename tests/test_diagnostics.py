"""Tests for the game equilibrium diagnostics."""

import numpy as np
import pytest

from repro.core.config import GameConfig
from repro.scheduling.diagnostics import (
    NashGapReport,
    cost_breakdown,
    equilibrium_quality,
    nash_gap,
)
from repro.scheduling.game import Community, SchedulingGame
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=4,
    inner_iterations=1,
    ce_samples=12,
    ce_elites=3,
    ce_iterations=3,
    convergence_tol=0.05,
)


@pytest.fixture(scope="module")
def solved_game():
    community = Community(
        customers=(make_customer(0), make_customer(1)), counts=(4, 4)
    )
    game = SchedulingGame(community, np.full(HORIZON, 0.03), config=FAST)
    return game, game.solve(rng=np.random.default_rng(0))


class TestNashGapReport:
    def test_max_gap(self):
        report = NashGapReport(
            per_customer_gap=(0.1, 0.5, 0.0), per_customer_cost=(10.0, 5.0, 1.0)
        )
        assert report.max_gap == pytest.approx(0.5)
        assert report.max_relative_gap == pytest.approx(0.1)


class TestNashGap:
    def test_gaps_nonnegative(self, solved_game):
        game, result = solved_game
        report = nash_gap(game, result)
        assert len(report.per_customer_gap) == len(result.states)
        assert all(g >= 0.0 for g in report.per_customer_gap)

    def test_converged_solution_has_small_relative_gap(self, solved_game):
        """The annealed loop terminates at an epsilon-equilibrium with
        epsilon a small fraction of each customer's bill."""
        game, result = solved_game
        report = nash_gap(game, result)
        assert report.max_relative_gap < 0.2

    def test_initial_state_has_larger_gap(self, solved_game):
        """The warm start is further from equilibrium than the solution."""
        game, result = solved_game
        from repro.scheduling.game import GameResult

        initial = GameResult(
            states=tuple(
                game.initial_state(c) for c in game.community.customers
            ),
            counts=result.counts,
            rounds=0,
            converged=False,
        )
        gap_initial = nash_gap(game, initial).max_gap
        gap_solved = nash_gap(game, result).max_gap
        assert gap_solved <= gap_initial + 1e-9


class TestCostBreakdown:
    def test_one_cost_per_archetype(self, solved_game):
        game, result = solved_game
        costs = cost_breakdown(game, result)
        assert len(costs) == len(result.states)
        # all customers buy energy at positive prices
        assert all(c > 0 for c in costs)


class TestEquilibriumQuality:
    def test_solved_game_passes(self, solved_game):
        game, result = solved_game
        assert equilibrium_quality(game, result)
