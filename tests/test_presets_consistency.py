"""Cross-preset consistency: the three scales share one model structure."""

import numpy as np
import pytest

from repro.core.presets import bench_preset, paper_preset, smoke_preset
from repro.data.community import build_community
from repro.data.pricing import GuidelinePriceModel, baseline_demand_profile


@pytest.mark.parametrize("preset", [smoke_preset, bench_preset])
def test_preset_price_scale_comparable(preset):
    """Per-customer demand and price ranges are scale-free: presets differ
    in population, not in physics."""
    config = preset()
    rng = np.random.default_rng(0)
    community = build_community(config, rng=rng)
    demand = baseline_demand_profile(config.time) * config.n_customers
    model = GuidelinePriceModel(config=config.pricing, n_customers=config.n_customers)
    prices = model.price(demand, community.total_pv)
    assert 0.005 < prices.min() < prices.max() < 0.2
    per_customer_peak = demand.max() / config.n_customers
    assert 0.5 < per_customer_peak < 3.0


def test_bench_and_paper_share_detection_economics():
    bench = bench_preset()
    paper = paper_preset()
    assert bench.detection.par_threshold == paper.detection.par_threshold
    assert bench.detection.hack_probability == paper.detection.hack_probability
    assert bench.pricing == paper.pricing
    assert bench.battery == paper.battery
    assert bench.solar == paper.solar


def test_pv_energy_share_is_minority():
    """Net metering is a correction, not the dominant supply: community PV
    energy stays well below community demand at every preset scale."""
    for preset in (smoke_preset, bench_preset):
        config = preset()
        community = build_community(config, rng=np.random.default_rng(0))  # repro: noqa[SEED003] same stream per preset on purpose
        demand = baseline_demand_profile(config.time).sum() * config.n_customers
        pv = community.total_pv.sum()
        assert pv < 0.5 * demand


def test_deferrable_share_is_minority():
    """Schedulable appliance energy stays below the non-schedulable base —
    the calibration regime the PAR targets assume."""
    config = bench_preset()
    community = build_community(config, rng=np.random.default_rng(0))
    base = sum(
        count * customer.base_load_array.sum()
        for customer, count in zip(community.customers, community.counts)
    )
    tasks = sum(
        count * customer.total_task_energy
        for customer, count in zip(community.customers, community.counts)
    )
    assert tasks < base
