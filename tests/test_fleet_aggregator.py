"""Live-socket tests for the fleet aggregator HTTP service."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.fleet.aggregator import FleetAggregator, create_fleet_server
from repro.fleet.checkpoint import resume_fleet
from repro.fleet.engine import build_fleet
from repro.fleet.loadgen import LoadGenerator
from repro.obs.prometheus import parse_prometheus_text
from repro.simulation.cache import GameSolutionCache


@pytest.fixture()
def fleet_url(fleet_config, tmp_path):
    """A live aggregator on an ephemeral port, torn down after the test."""
    generator = LoadGenerator(fleet_config, n_communities=3, n_days=2, seed=5)
    fleet = build_fleet(
        generator.specs(), n_shards=2, cache=GameSolutionCache()
    )
    aggregator = FleetAggregator(fleet, checkpoint_dir=tmp_path / "ckpt")
    server = create_fleet_server(aggregator, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", aggregator
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def _get_text(base: str, path: str) -> str:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.read().decode("utf-8")


def _post(base: str, path: str, body: dict | None = None) -> dict:
    data = json.dumps(body or {}).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def _error(base: str, path: str, body: dict | None = None) -> tuple[int, dict]:
    try:
        if body is None:
            urllib.request.urlopen(base + path, timeout=10)
        else:
            _post(base, path, body)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError("expected an HTTP error")


class TestEndpoints:
    def test_healthz(self, fleet_url):
        base, _ = fleet_url
        assert _get(base, "/healthz") == {"ok": True}

    def test_advance_and_status(self, fleet_url):
        base, _ = fleet_url
        summary = _post(base, "/advance", {"until_day": 1})
        assert summary["detections"] == 3 * 24
        assert not summary["exhausted"]
        status = _get(base, "/status")
        assert status["totals"]["communities"] == 3
        assert status["totals"]["slots_processed"] == 3 * 24
        assert set(status["ring"]["assignments"]) == {"c0000", "c0001", "c0002"}

    def test_shards_layout(self, fleet_url):
        base, aggregator = fleet_url
        payload = _get(base, "/shards")
        assert payload["shards"] == list(aggregator.fleet.shard_ids)
        assert set(payload["assignments"].values()) <= set(payload["shards"])

    def test_detections_merged_and_filtered(self, fleet_url):
        base, _ = fleet_url
        _post(base, "/advance", {"until_day": 1})
        merged = _get(base, "/detections?since=20&limit=6")
        assert merged["truncated"]
        assert len(merged["detections"]) == 6
        assert {"community", "shard"} <= set(merged["detections"][0])
        single = _get(base, "/detections?community=c0001")
        assert all(d["community"] == "c0001" for d in single["detections"])

    def test_envelope_post(self, fleet_url, fleet_config):
        base, _ = fleet_url
        generator = LoadGenerator(
            fleet_config, n_communities=3, n_days=2, seed=5
        )
        envelope = next(generator.envelopes())
        result = _post(base, "/envelope", envelope)
        assert result["accepted"] == len(envelope["entries"])

    def test_metrics_json_and_prometheus(self, fleet_url):
        base, _ = fleet_url
        _post(base, "/advance", {"ticks": 4})
        metrics = _get(base, "/metrics")
        # PERF is process-global; the interval delta is scoped to this
        # aggregator's scrape window, so it sees exactly this advance.
        assert metrics["interval"].get("fleet.ticks") == 4.0  # repro: noqa[FLT001] — integral counter
        assert metrics["interval"].get("fleet.events") == 12.0  # repro: noqa[FLT001] — integral counter
        assert metrics["events_processed"] == 12

        text = _get_text(base, "/metrics?format=prometheus")
        parsed = parse_prometheus_text(text)
        samples = parsed["samples"]
        assert samples[("repro_fleet_ticks_total", ())] >= 4.0
        assert parsed["types"]["repro_fleet_advance"] == "summary"
        assert ("repro_fleet_advance", (("quantile", "0.99"),)) in samples
        # Per-shard gauges are published on every Prometheus scrape.
        gauge_names = [
            metric for metric, _ in samples if "fleet_shard_" in metric
        ]
        assert any(n.endswith("_events_processed") for n in gauge_names)

    def test_checkpoint_post_and_resume(self, fleet_url, tmp_path):
        base, aggregator = fleet_url
        _post(base, "/advance", {"ticks": 9})
        receipt = _post(base, "/checkpoint")
        assert receipt["events_processed"] == 27
        resumed = resume_fleet(aggregator.checkpoint_dir)
        assert resumed.events_processed == 27
        assert resumed.community_ids == aggregator.fleet.community_ids


class TestErrors:
    def test_unknown_route_is_404(self, fleet_url):
        base, _ = fleet_url
        code, payload = _error(base, "/nope")
        assert code == 404
        assert payload["code"] == "not_found"

    def test_bad_advance_fields(self, fleet_url):
        base, _ = fleet_url
        code, payload = _error(base, "/advance", {"bogus": 1})
        assert code == 400
        assert "unknown fields" in payload["error"]
        code, payload = _error(base, "/advance", {"ticks": -2})
        assert code == 400

    def test_bad_envelope_is_400(self, fleet_url):
        base, _ = fleet_url
        code, payload = _error(base, "/envelope", {"entries": "nope"})
        assert code == 400
        assert payload["code"] == "bad_request"

    def test_unknown_community_is_400(self, fleet_url):
        base, _ = fleet_url
        code, payload = _error(base, "/detections?community=zz")
        assert code == 400
        assert "not owned" in payload["error"]

    def test_bad_metrics_format(self, fleet_url):
        base, _ = fleet_url
        code, payload = _error(base, "/metrics?format=xml")
        assert code == 400

    def test_checkpoint_without_directory(self, fleet_config):
        generator = LoadGenerator(
            fleet_config, n_communities=1, n_days=1, seed=5
        )
        fleet = build_fleet(generator.specs(), cache=GameSolutionCache())
        aggregator = FleetAggregator(fleet)
        from repro.service.app import ServiceError

        with pytest.raises(ServiceError, match="checkpoint directory"):
            aggregator.checkpoint()


class TestConcurrentHammer:
    """Mixed concurrent ``POST /envelope`` + ``/advance`` + ``/checkpoint``.

    The aggregator lock serializes every request, so hammering the
    service from many threads must land in the bitwise-same final state
    a serial caller would produce, and every mid-flight response must
    be a consistent snapshot (never a torn read).

    Two workload shapes keep the expected outcome schedule-independent:

    - *envelope-driven*: each community's envelope stream is posted in
      order by a dedicated thread.  Communities are independent, so
      cross-community interleaving cannot change per-community state;
      ``/advance`` runs as an ``until_day=0`` bound-hit whose
      before/after delta accounting would go nonzero if an envelope
      ever landed inside a supposedly-atomic advance.
    - *advance-driven*: threads race ``/advance`` ticks until the fleet
      drains.  Lockstep ticks pump one event per community, so any
      consistent snapshot sees ``events_processed`` at a tick boundary
      — a multiple of the community count (the regression check for
      torn checkpoint receipts).
    """

    def _serve(self, fleet, tmp_path):
        aggregator = FleetAggregator(fleet, checkpoint_dir=tmp_path / "ckpt")
        server = create_fleet_server(aggregator, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        return aggregator, server, thread, base

    @staticmethod
    def _canon(payload: dict) -> str:
        return json.dumps(payload, sort_keys=True)

    def test_envelope_hammer_matches_serial_reference(
        self, fleet_config, tmp_path
    ):
        cache = GameSolutionCache()
        generator = LoadGenerator(fleet_config, n_communities=3, n_days=2, seed=5)
        specs = generator.specs()

        # Split the lockstep envelope stream into per-community streams:
        # one posting thread per community preserves each community's
        # event order no matter how the threads interleave.
        per_community: dict[str, list[dict]] = {
            spec.community_id: [] for spec in specs
        }
        for envelope in generator.envelopes(specs):
            for entry in envelope["entries"]:
                per_community[entry["community"]].append({"entries": [entry]})

        fleet = build_fleet(specs, n_shards=2, cache=cache)
        aggregator, server, thread, base = self._serve(fleet, tmp_path)
        errors: list[Exception] = []
        advance_results: list[dict] = []
        receipts: list[dict] = []
        accepted: dict[str, int] = {cid: 0 for cid in per_community}
        barrier = threading.Barrier(len(per_community) + 4)

        def post_envelopes(cid: str) -> None:
            try:
                barrier.wait(timeout=10)
                for envelope in per_community[cid]:
                    accepted[cid] += _post(base, "/envelope", envelope)["accepted"]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def post_advances() -> None:
            try:
                barrier.wait(timeout=10)
                for _ in range(10):
                    advance_results.append(
                        _post(base, "/advance", {"until_day": 0})
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def post_checkpoints() -> None:
            try:
                barrier.wait(timeout=10)
                for _ in range(4):
                    receipts.append(_post(base, "/checkpoint"))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = (
            [
                threading.Thread(target=post_envelopes, args=(cid,))
                for cid in per_community
            ]
            + [threading.Thread(target=post_advances) for _ in range(2)]
            + [threading.Thread(target=post_checkpoints) for _ in range(2)]
        )
        try:
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=60)
            assert not errors
            final_status = _get(base, "/status")
            final_status.pop("checkpoint_dir")
            final_detections = _get(base, "/detections")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

        # Every envelope was applied exactly once.
        for cid, envelopes in per_community.items():
            assert accepted[cid] == len(envelopes)

        # Each advance ran atomically: an envelope landing inside the
        # advance's before/after accounting would show up as a nonzero
        # detections/events delta on this bound-hit no-op.
        assert len(advance_results) == 20
        for result in advance_results:
            assert result["ticks"] == 0
            assert result["events"] == 0
            assert result["detections"] == 0
            assert not result["exhausted"]

        # Bitwise-stable outcome: identical to a serial one-thread run
        # ingesting the same envelopes.
        reference = build_fleet(specs, n_shards=2, cache=cache)
        for envelopes in per_community.values():
            for envelope in envelopes:
                reference.ingest_envelope(envelope)
        assert self._canon(final_status) == self._canon(reference.status())
        assert self._canon(final_detections) == self._canon(
            reference.detections()
        )

        # The surviving checkpoint is a consistent snapshot from some
        # serialization point: each community's restored timeline is a
        # prefix of the final timeline, never a torn mixture.
        assert len(receipts) == 8
        resumed = resume_fleet(aggregator.checkpoint_dir, cache=cache)
        assert resumed.community_ids == fleet.community_ids
        for cid in fleet.community_ids:
            final_timeline = [
                det.to_dict() for det in fleet.engine_of(cid).timeline
            ]
            restored = [det.to_dict() for det in resumed.engine_of(cid).timeline]
            assert restored == final_timeline[: len(restored)]

    def test_advance_hammer_drains_once_and_snapshots_cleanly(
        self, fleet_config, tmp_path
    ):
        cache = GameSolutionCache()
        generator = LoadGenerator(fleet_config, n_communities=3, n_days=2, seed=5)
        specs = generator.specs()
        fleet = build_fleet(specs, n_shards=2, cache=cache)
        aggregator, server, thread, base = self._serve(fleet, tmp_path)
        errors: list[Exception] = []
        advance_results: list[dict] = []
        receipts: list[dict] = []
        rejected = 0
        barrier = threading.Barrier(6)

        def post_advances() -> None:
            try:
                barrier.wait(timeout=10)
                for _ in range(200):
                    result = _post(base, "/advance", {"ticks": 7})
                    advance_results.append(result)
                    if result["exhausted"]:
                        return
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def post_checkpoints() -> None:
            try:
                barrier.wait(timeout=10)
                for _ in range(6):
                    receipts.append(_post(base, "/checkpoint"))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def post_bad_envelopes() -> None:
            nonlocal rejected
            try:
                barrier.wait(timeout=10)
                for _ in range(6):
                    code, payload = _error(
                        base,
                        "/envelope",
                        {"entries": [{"community": "zz", "event": {}}]},
                    )
                    assert code == 400, payload
                    rejected += 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = (
            [threading.Thread(target=post_advances) for _ in range(3)]
            + [threading.Thread(target=post_checkpoints) for _ in range(2)]
            + [threading.Thread(target=post_bad_envelopes)]
        )
        try:
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=120)
            assert not errors
            final_status = _get(base, "/status")
            final_status.pop("checkpoint_dir")
            final_detections = _get(base, "/detections")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

        # Rejected envelopes are atomic no-ops even under contention.
        assert rejected == 6

        # Conservation: racing advances pumped every event exactly once.
        total_events = sum(r["events"] for r in advance_results)
        assert advance_results and advance_results[-1] is not None
        assert any(r["exhausted"] for r in advance_results)
        assert final_status["totals"]["events_processed"] == total_events

        # Every checkpoint receipt is a tick-boundary snapshot: lockstep
        # ticks pump one event per community, so a torn read would show
        # an events_processed that is not a multiple of the fleet size.
        assert len(receipts) == 12
        for receipt in receipts:
            assert receipt["events_processed"] % len(specs) == 0
            assert 0 <= receipt["events_processed"] <= total_events

        # Bitwise-stable outcome: the drained fleet equals a serial
        # single-caller drain of the same specs.
        reference = build_fleet(specs, n_shards=2, cache=cache)
        stats = reference.advance()
        assert stats.exhausted
        assert reference.events_processed == total_events
        assert self._canon(final_status) == self._canon(reference.status())
        assert self._canon(final_detections) == self._canon(
            reference.detections()
        )

        # The last-written checkpoint restores to a consistent prefix.
        resumed = resume_fleet(aggregator.checkpoint_dir, cache=cache)
        for cid in fleet.community_ids:
            final_timeline = [
                det.to_dict() for det in fleet.engine_of(cid).timeline
            ]
            restored = [det.to_dict() for det in resumed.engine_of(cid).timeline]
            assert restored == final_timeline[: len(restored)]


class TestScoreboardAndTrace:
    """``GET /scoreboard``, the Prometheus scoreboard series, ``GET /trace``."""

    @pytest.fixture()
    def campaign_fleet_url(self, fleet_config, tmp_path):
        """A live aggregator over a scripted-campaign fleet."""
        generator = LoadGenerator(
            fleet_config, n_communities=3, n_days=2, seed=5,
            announce_attacks=True,
        )
        fleet = build_fleet(
            generator.specs(), n_shards=2, cache=GameSolutionCache()
        )
        aggregator = FleetAggregator(fleet, checkpoint_dir=tmp_path / "ckpt")
        server = create_fleet_server(aggregator, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://127.0.0.1:{server.server_address[1]}", aggregator
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_scoreboard_route_merges_exactly(self, campaign_fleet_url):
        from repro.obs.scoreboard import merge_reports

        base, aggregator = campaign_fleet_url
        _post(base, "/advance", {"until_day": 2})
        payload = _get(base, "/scoreboard")
        assert set(payload) == {"fleet", "shards", "communities"}
        assert sorted(payload["communities"]) == ["c0000", "c0001", "c0002"]
        assert payload["fleet"] == merge_reports(
            [payload["communities"][cid] for cid in sorted(payload["communities"])]
        )
        assert payload["fleet"]["slots"]["total"] == 3 * 48
        # Campaign mode: the ledger names every episode's family.
        assert payload["fleet"]["episodes"]["total"] >= 1
        assert "unattributed" not in payload["fleet"]["families"]
        # The shard split covers the fleet exactly.
        assert payload["fleet"] == merge_reports(
            [payload["shards"][sid] for sid in sorted(payload["shards"])]
        )

    def test_prometheus_scoreboard_series_round_trip(self, campaign_fleet_url):
        base, _ = campaign_fleet_url
        _post(base, "/advance", {"until_day": 2})
        scoreboard = _get(base, "/scoreboard")

        parsed = parse_prometheus_text(
            _get_text(base, "/metrics?format=prometheus")
        )
        samples = parsed["samples"]
        fleet = scoreboard["fleet"]
        assert samples[("repro_fleet_scoreboard_episodes", ())] == float(
            fleet["episodes"]["total"]
        )
        assert samples[("repro_fleet_scoreboard_episodes_detected", ())] == float(
            fleet["episodes"]["detected"]
        )
        assert samples[("repro_fleet_scoreboard_attacked_slots", ())] == float(
            fleet["availability"]["attacked_slots"]
        )
        fraction = fleet["availability"]["fraction"]
        assert samples[("repro_fleet_scoreboard_availability", ())] == (
            1.0 if fraction is None else float(fraction)
        )
        # Per-shard gauges still ride the same exposition.
        gauge_names = {metric for metric, _ in samples}
        assert any("fleet_shard_" in n for n in gauge_names)
        # Every MTTD sample was observed into the summary exactly once,
        # cursors holding across repeated scrapes.
        n_ttd = len(fleet["mttd"]["samples"])
        if n_ttd:
            assert parsed["types"]["repro_fleet_scoreboard_mttd_slots"] == "summary"
            # PERF is process-global, so the histogram may carry samples
            # from earlier aggregators; this fleet contributed exactly
            # its own, and re-scraping observes nothing twice (cursors).
            count = samples[("repro_fleet_scoreboard_mttd_slots_count", ())]
            assert count >= float(n_ttd)
            parsed_again = parse_prometheus_text(
                _get_text(base, "/metrics?format=prometheus")
            )
            assert parsed_again["samples"][
                ("repro_fleet_scoreboard_mttd_slots_count", ())
            ] == count

    def test_trace_route_serves_the_merged_fleet_trace(self, campaign_fleet_url):
        from repro.obs.trace import TRACER

        base, aggregator = campaign_fleet_url
        TRACER.enable(run_id="aggregator-trace-test")
        try:
            _post(base, "/advance", {"ticks": 6})
            doc = _get(base, "/trace")
        finally:
            TRACER.disable()
        events = doc["traceEvents"]
        layout = aggregator.fleet.trace_layout()
        # The metadata carries the pid/tid grid (the community->shard
        # reverse index is an in-process convenience, not exported).
        assert doc["metadata"]["fleet_layout"]["shards"] == layout["shards"]
        assert (
            doc["metadata"]["fleet_layout"]["aggregator_pid"]
            == layout["aggregator_pid"]
        )
        phases = [event["ph"] for event in events]
        first_x = phases.index("X")
        assert set(phases[:first_x]) == {"M"}
        assert "M" not in phases[first_x:]
        names = {event["name"] for event in events}
        assert {"fleet.tick", "fleet.shard_tick", "stream.slot"} <= names
        # One process per shard plus the aggregator, deterministic pids.
        pids = {
            event["args"]["name"]: event["pid"]
            for event in events
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert pids["shard:s0"] == 2
        assert pids["shard:s1"] == 3

    def test_trace_route_without_tracer_is_an_error(self, campaign_fleet_url):
        from repro.obs.trace import TRACER

        base, _ = campaign_fleet_url
        # The tracer is process-global: flush spans left by earlier
        # tests (enable clears; disable stops recording).
        TRACER.enable(run_id="flush")
        TRACER.disable()
        code, payload = _error(base, "/trace")
        assert code == 400
        assert payload["code"] == "trace_disabled"
