"""Live-socket tests for the fleet aggregator HTTP service."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.fleet.aggregator import FleetAggregator, create_fleet_server
from repro.fleet.checkpoint import resume_fleet
from repro.fleet.engine import build_fleet
from repro.fleet.loadgen import LoadGenerator
from repro.obs.prometheus import parse_prometheus_text
from repro.simulation.cache import GameSolutionCache


@pytest.fixture()
def fleet_url(fleet_config, tmp_path):
    """A live aggregator on an ephemeral port, torn down after the test."""
    generator = LoadGenerator(fleet_config, n_communities=3, n_days=2, seed=5)
    fleet = build_fleet(
        generator.specs(), n_shards=2, cache=GameSolutionCache()
    )
    aggregator = FleetAggregator(fleet, checkpoint_dir=tmp_path / "ckpt")
    server = create_fleet_server(aggregator, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", aggregator
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def _get_text(base: str, path: str) -> str:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.read().decode("utf-8")


def _post(base: str, path: str, body: dict | None = None) -> dict:
    data = json.dumps(body or {}).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def _error(base: str, path: str, body: dict | None = None) -> tuple[int, dict]:
    try:
        if body is None:
            urllib.request.urlopen(base + path, timeout=10)
        else:
            _post(base, path, body)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError("expected an HTTP error")


class TestEndpoints:
    def test_healthz(self, fleet_url):
        base, _ = fleet_url
        assert _get(base, "/healthz") == {"ok": True}

    def test_advance_and_status(self, fleet_url):
        base, _ = fleet_url
        summary = _post(base, "/advance", {"until_day": 1})
        assert summary["detections"] == 3 * 24
        assert not summary["exhausted"]
        status = _get(base, "/status")
        assert status["totals"]["communities"] == 3
        assert status["totals"]["slots_processed"] == 3 * 24
        assert set(status["ring"]["assignments"]) == {"c0000", "c0001", "c0002"}

    def test_shards_layout(self, fleet_url):
        base, aggregator = fleet_url
        payload = _get(base, "/shards")
        assert payload["shards"] == list(aggregator.fleet.shard_ids)
        assert set(payload["assignments"].values()) <= set(payload["shards"])

    def test_detections_merged_and_filtered(self, fleet_url):
        base, _ = fleet_url
        _post(base, "/advance", {"until_day": 1})
        merged = _get(base, "/detections?since=20&limit=6")
        assert merged["truncated"]
        assert len(merged["detections"]) == 6
        assert {"community", "shard"} <= set(merged["detections"][0])
        single = _get(base, "/detections?community=c0001")
        assert all(d["community"] == "c0001" for d in single["detections"])

    def test_envelope_post(self, fleet_url, fleet_config):
        base, _ = fleet_url
        generator = LoadGenerator(
            fleet_config, n_communities=3, n_days=2, seed=5
        )
        envelope = next(generator.envelopes())
        result = _post(base, "/envelope", envelope)
        assert result["accepted"] == len(envelope["entries"])

    def test_metrics_json_and_prometheus(self, fleet_url):
        base, _ = fleet_url
        _post(base, "/advance", {"ticks": 4})
        metrics = _get(base, "/metrics")
        # PERF is process-global; the interval delta is scoped to this
        # aggregator's scrape window, so it sees exactly this advance.
        assert metrics["interval"].get("fleet.ticks") == 4.0  # repro: noqa[FLT001] — integral counter
        assert metrics["interval"].get("fleet.events") == 12.0  # repro: noqa[FLT001] — integral counter
        assert metrics["events_processed"] == 12

        text = _get_text(base, "/metrics?format=prometheus")
        parsed = parse_prometheus_text(text)
        samples = parsed["samples"]
        assert samples[("repro_fleet_ticks_total", ())] >= 4.0
        assert parsed["types"]["repro_fleet_advance"] == "summary"
        assert ("repro_fleet_advance", (("quantile", "0.99"),)) in samples
        # Per-shard gauges are published on every Prometheus scrape.
        gauge_names = [
            metric for metric, _ in samples if "fleet_shard_" in metric
        ]
        assert any(n.endswith("_events_processed") for n in gauge_names)

    def test_checkpoint_post_and_resume(self, fleet_url, tmp_path):
        base, aggregator = fleet_url
        _post(base, "/advance", {"ticks": 9})
        receipt = _post(base, "/checkpoint")
        assert receipt["events_processed"] == 27
        resumed = resume_fleet(aggregator.checkpoint_dir)
        assert resumed.events_processed == 27
        assert resumed.community_ids == aggregator.fleet.community_ids


class TestErrors:
    def test_unknown_route_is_404(self, fleet_url):
        base, _ = fleet_url
        code, payload = _error(base, "/nope")
        assert code == 404
        assert payload["code"] == "not_found"

    def test_bad_advance_fields(self, fleet_url):
        base, _ = fleet_url
        code, payload = _error(base, "/advance", {"bogus": 1})
        assert code == 400
        assert "unknown fields" in payload["error"]
        code, payload = _error(base, "/advance", {"ticks": -2})
        assert code == 400

    def test_bad_envelope_is_400(self, fleet_url):
        base, _ = fleet_url
        code, payload = _error(base, "/envelope", {"entries": "nope"})
        assert code == 400
        assert payload["code"] == "bad_request"

    def test_unknown_community_is_400(self, fleet_url):
        base, _ = fleet_url
        code, payload = _error(base, "/detections?community=zz")
        assert code == 400
        assert "not owned" in payload["error"]

    def test_bad_metrics_format(self, fleet_url):
        base, _ = fleet_url
        code, payload = _error(base, "/metrics?format=xml")
        assert code == 400

    def test_checkpoint_without_directory(self, fleet_config):
        generator = LoadGenerator(
            fleet_config, n_communities=1, n_days=1, seed=5
        )
        fleet = build_fleet(generator.specs(), cache=GameSolutionCache())
        aggregator = FleetAggregator(fleet)
        from repro.service.app import ServiceError

        with pytest.raises(ServiceError, match="checkpoint directory"):
            aggregator.checkpoint()
