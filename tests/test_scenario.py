"""Integration tests for the long-term monitoring scenario."""

import numpy as np
import pytest

from repro.metrics.cost import LaborCostModel
from repro.simulation.scenario import ScenarioResult, run_long_term_scenario


@pytest.fixture(scope="module")
def scenario_results(tiny_scenario_config):
    """Run all three detector variants once on the tiny config."""
    results = {}
    for kind in ("aware", "unaware", "none"):
        results[kind] = run_long_term_scenario(
            tiny_scenario_config,
            detector=kind,
            n_slots=24,
            calibration_trials=5,
        )
    return results


@pytest.fixture(scope="module")
def tiny_scenario_config():
    from repro.core.config import (
        BatteryConfig,
        CommunityConfig,
        DetectionConfig,
        GameConfig,
        SolarConfig,
        TimeGrid,
    )

    return CommunityConfig(
        n_customers=8,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        solar=SolarConfig(peak_kw=0.7),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4, hack_probability=0.15),
        seed=11,
    )


class TestScenarioShapes:
    def test_result_arrays(self, scenario_results):
        result = scenario_results["aware"]
        assert result.truth.shape == (24, 4)
        assert result.flags.shape == (24, 4)
        assert result.observations.shape == (24,)
        assert result.realized_grid.shape == (24,)
        assert result.n_slots == 24

    def test_observations_match_flags(self, scenario_results):
        result = scenario_results["aware"]
        np.testing.assert_array_equal(
            result.observations, result.flags.sum(axis=1)
        )

    def test_accuracy_in_unit_interval(self, scenario_results):
        for result in scenario_results.values():
            assert 0.0 <= result.observation_accuracy <= 1.0
            per_slot = result.accuracy_per_slot
            assert per_slot.shape == (24,)
            assert np.all((0 <= per_slot) & (per_slot <= 1))

    def test_grid_demand_nonnegative(self, scenario_results):
        for result in scenario_results.values():
            assert np.all(result.realized_grid >= 0.0)

    def test_mean_par_at_least_one(self, scenario_results):
        for result in scenario_results.values():
            assert result.mean_par >= 1.0


class TestDetectorBehaviour:
    def test_none_never_repairs(self, scenario_results):
        result = scenario_results["none"]
        assert result.n_repairs == 0
        assert not result.repairs.any()
        assert result.tp_rate == pytest.approx(0.0) and result.fp_rate == pytest.approx(0.0)

    def test_none_accumulates_compromise(self, scenario_results):
        """Without repairs the compromise count is monotone nondecreasing."""
        truth_counts = scenario_results["none"].truth.sum(axis=1)
        assert np.all(np.diff(truth_counts) >= 0)

    def test_repairs_reset_truth(self, scenario_results):
        """After a repair slot, the next slot's count restarts from fresh
        compromises only."""
        result = scenario_results["aware"]
        for slot in np.flatnonzero(result.repairs[:-1]):
            next_count = result.truth[slot + 1].sum()
            assert next_count <= result.truth[slot].sum() + 1

    def test_repaired_counts_only_on_repairs(self, scenario_results):
        result = scenario_results["aware"]
        assert np.all(result.repaired_counts[~result.repairs] == 0)

    def test_labor_cost_consistent(self, scenario_results):
        result = scenario_results["aware"]
        model = LaborCostModel(fixed_cost=2.0, per_meter_cost=1.0)
        expected = (
            result.n_repairs * 2.0 + result.repaired_counts.sum() * 1.0
        )
        assert result.labor_cost(model) == pytest.approx(expected)

    def test_calibrated_rates_recorded(self, scenario_results):
        for kind in ("aware", "unaware"):
            result = scenario_results[kind]
            assert 0.0 < result.tp_rate < 1.0
            assert 0.0 < result.fp_rate < 1.0


class TestScenarioValidation:
    def test_rejects_bad_slots(self, tiny_scenario_config):
        with pytest.raises(ValueError, match="multiple"):
            run_long_term_scenario(tiny_scenario_config, detector="aware", n_slots=25)
        with pytest.raises(ValueError, match="n_slots"):
            run_long_term_scenario(tiny_scenario_config, detector="aware", n_slots=0)

    def test_seed_override_reproducible(self, tiny_scenario_config):
        a = run_long_term_scenario(
            tiny_scenario_config, detector="none", n_slots=24, seed=5
        )
        b = run_long_term_scenario(
            tiny_scenario_config, detector="none", n_slots=24, seed=5
        )
        np.testing.assert_array_equal(a.truth, b.truth)
        np.testing.assert_allclose(a.realized_grid, b.realized_grid)

    def test_pbvi_policy_variant(self, tiny_scenario_config):
        result = run_long_term_scenario(
            tiny_scenario_config,
            detector="aware",
            n_slots=24,
            policy="pbvi",
            calibration_trials=4,
        )
        assert isinstance(result, ScenarioResult)
