"""Fleet engine wiring: build, advance, envelopes, checkpoint damage."""

import json

import pytest

from repro.fleet.checkpoint import (
    FLEET_MANIFEST_NAME,
    load_fleet_manifest,
    resume_fleet,
    save_fleet_checkpoint,
)
from repro.fleet.engine import CommunitySpec, FleetEngine, build_fleet
from repro.fleet.loadgen import LoadGenerator
from repro.fleet.ring import HashRing
from repro.fleet.worker import ShardWorker
from repro.perf.counters import PERF
from repro.simulation.cache import GameSolutionCache
from repro.stream.checkpoint import CheckpointError


@pytest.fixture(scope="module")
def fleet_cache():
    """Module-wide solve cache: every test's communities share one world."""
    return GameSolutionCache()


@pytest.fixture(scope="module")
def specs(fleet_config):
    generator = LoadGenerator(fleet_config, n_communities=3, n_days=2, seed=5)
    return generator.specs()


@pytest.fixture()
def fleet(specs, fleet_cache):
    return build_fleet(specs, n_shards=2, cache=fleet_cache)


class TestCommunitySpec:
    def test_round_trip(self, specs):
        for spec in specs:
            clone = CommunitySpec.from_dict(spec.to_dict())
            assert clone == spec

    def test_json_serializable(self, specs):
        json.dumps([spec.to_dict() for spec in specs])

    def test_validation(self, fleet_config):
        with pytest.raises(ValueError, match="community_id"):
            CommunitySpec(community_id="", config=fleet_config)
        with pytest.raises(ValueError, match="n_days"):
            CommunitySpec(community_id="c0", config=fleet_config, n_days=0)


class TestBuildFleet:
    def test_ring_owns_every_community(self, fleet):
        for worker in fleet.workers:
            for cid in worker.community_ids:
                assert fleet.ring.assign(cid) == worker.shard_id

    def test_community_ids_sorted_and_complete(self, fleet, specs):
        assert fleet.community_ids == tuple(
            sorted(s.community_id for s in specs)
        )
        assert fleet.n_communities == len(specs)

    def test_duplicate_ids_rejected(self, specs):
        with pytest.raises(ValueError, match="unique"):
            build_fleet(list(specs) + [specs[0]], n_shards=1)

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError, match="at least one community"):
            build_fleet([], n_shards=1)

    def test_explicit_shard_ids(self, specs, fleet_cache):
        fleet = build_fleet(
            specs, shard_ids=["east", "west"], cache=fleet_cache
        )
        assert fleet.shard_ids == ("east", "west")


class TestFleetEngineValidation:
    def test_worker_on_wrong_shard_rejected(self, specs, fleet_cache):
        ring = HashRing(["s0", "s1"])
        engines = {
            spec.community_id: spec.build_engine(cache=fleet_cache)
            for spec in specs
        }
        # Deliberately hand every community to s0, defying the ring.
        workers = {
            "s0": ShardWorker("s0", engines),
            "s1": ShardWorker("s1", {}),
        }
        with pytest.raises(ValueError, match="owned by ring shard"):
            FleetEngine(ring, workers)

    def test_shard_set_mismatch_rejected(self):
        ring = HashRing(["s0", "s1"])
        with pytest.raises(ValueError, match="do not match"):
            FleetEngine(ring, {"s0": ShardWorker("s0", {})})

    def test_mis_keyed_worker_rejected(self):
        ring = HashRing(["s0"])
        with pytest.raises(ValueError, match="reports shard"):
            FleetEngine(ring, {"s0": ShardWorker("sX", {})})

    def test_unknown_community_lookup(self, fleet):
        with pytest.raises(ValueError, match="not owned by shard"):
            fleet.engine_of("c9999")


class TestAdvance:
    def test_until_day_stops_every_community(self, fleet):
        stats = fleet.advance(until_day=1)
        assert not stats.exhausted
        for cid in fleet.community_ids:
            assert fleet.engine_of(cid).pipeline.days_completed >= 1

    def test_max_ticks_bounds_the_call(self, fleet):
        stats = fleet.advance(max_ticks=3)
        assert stats.ticks == 3
        assert stats.events == 3 * fleet.n_communities

    def test_drain_to_exhaustion(self, fleet):
        stats = fleet.advance()
        assert stats.exhausted
        assert fleet.exhausted
        assert stats.detections == sum(
            fleet.engine_of(cid).pipeline.n_slots_processed
            for cid in fleet.community_ids
        )
        # A drained fleet advances no further.
        again = fleet.advance()
        assert again.ticks == 0

    def test_argument_validation(self, fleet):
        with pytest.raises(ValueError, match="max_ticks"):
            fleet.advance(max_ticks=-1)
        with pytest.raises(ValueError, match="until_day"):
            fleet.advance(until_day=-1)


class TestStatusAndDetections:
    def test_status_totals_are_consistent(self, fleet):
        fleet.advance(until_day=1)
        status = fleet.status()
        assert status["totals"]["communities"] == fleet.n_communities
        assert status["totals"]["shards"] == len(fleet.shard_ids)
        per_shard_slots = sum(
            shard["totals"]["slots_processed"]
            for shard in status["shards"].values()
        )
        assert status["totals"]["slots_processed"] == per_shard_slots
        assert set(status["ring"]["assignments"]) == set(fleet.community_ids)

    def test_detections_merged_and_tagged(self, fleet):
        fleet.advance(until_day=1)
        payload = fleet.detections()
        assert payload["total_slots"] == 24 * fleet.n_communities
        keys = [(d["slot"], d["community"]) for d in payload["detections"]]
        assert keys == sorted(keys)
        for det in payload["detections"]:
            assert fleet.ring.assign(det["community"]) == det["shard"]

    def test_detections_filtered_sliced(self, fleet):
        fleet.advance(until_day=1)
        cid = fleet.community_ids[0]
        payload = fleet.detections(community=cid, since=10, limit=5)
        assert payload["truncated"]
        assert len(payload["detections"]) == 5
        assert all(d["community"] == cid for d in payload["detections"])
        assert payload["detections"][0]["slot"] == 10

    def test_detections_validation(self, fleet):
        with pytest.raises(ValueError, match="since"):
            fleet.detections(since=-1)
        with pytest.raises(ValueError, match="limit"):
            fleet.detections(limit=0)
        with pytest.raises(ValueError, match="not owned"):
            fleet.detections(community="nope")

    def test_publish_shard_gauges(self, fleet):
        fleet.advance(max_ticks=2)
        fleet.publish_shard_gauges()
        gauges = PERF.gauges()
        for sid in fleet.shard_ids:
            assert f"fleet.shard.{sid}.communities" in gauges
            assert f"fleet.shard.{sid}.events_processed" in gauges


class TestEnvelope:
    def _one_envelope(self, fleet_config, specs):
        generator = LoadGenerator(fleet_config, n_communities=3, n_days=2, seed=5)
        return next(generator.envelopes(specs))

    def test_ingest_routes_and_reports(self, fleet, fleet_config, specs):
        envelope = self._one_envelope(fleet_config, specs)
        result = fleet.ingest_envelope(envelope)
        assert result["accepted"] == len(envelope["entries"])
        for item in result["results"]:
            assert fleet.ring.assign(item["community"]) == item["shard"]

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"entries": None}, "list field 'entries'"),
            ({"entries": [], "extra": 1}, "unknown envelope fields"),
            ({"entries": ["nope"]}, "not an object"),
            ({"entries": [{"community": "", "event": {}}]}, "community id"),
            ({"entries": [{"community": "c0000"}]}, "needs an event"),
            (
                {"entries": [{"community": "c0000", "event": {}, "x": 1}]},
                "unknown fields",
            ),
            (
                {"entries": [{"community": "c0000", "event": {"type": "?"}}]},
                "bad event",
            ),
            (
                {
                    "entries": [
                        {
                            "community": "c9999",
                            "event": {"type": "day_boundary", "day": 0},
                        }
                    ]
                },
                "not owned",
            ),
        ],
    )
    def test_malformed_envelopes_rejected(self, fleet, payload, match):
        with pytest.raises(ValueError, match=match):
            fleet.ingest_envelope(payload)

    def test_rejection_is_atomic(self, fleet, fleet_config, specs):
        envelope = self._one_envelope(fleet_config, specs)
        bad = {
            "entries": envelope["entries"][:1]
            + [{"community": "c9999", "event": {"type": "day_boundary", "day": 0}}]
        }
        before = {
            cid: fleet.engine_of(cid).pipeline.n_slots_processed
            for cid in fleet.community_ids
        }
        with pytest.raises(ValueError):
            fleet.ingest_envelope(bad)
        after = {
            cid: fleet.engine_of(cid).pipeline.n_slots_processed
            for cid in fleet.community_ids
        }
        assert after == before


class TestCheckpointDamage:
    def _checkpointed(self, fleet, tmp_path):
        fleet.advance(max_ticks=5)
        save_fleet_checkpoint(fleet, tmp_path)
        return tmp_path

    def test_manifest_round_trip(self, fleet, tmp_path):
        directory = self._checkpointed(fleet, tmp_path)
        manifest = load_fleet_manifest(directory)
        assert set(manifest["shards"]) == set(fleet.shard_ids)
        assert set(manifest["communities"]) == set(fleet.community_ids)

    def test_corrupt_manifest(self, fleet, tmp_path):
        directory = self._checkpointed(fleet, tmp_path)
        (directory / FLEET_MANIFEST_NAME).write_text("{not json")
        with pytest.raises(CheckpointError, match="invalid JSON"):
            resume_fleet(directory)

    def test_wrong_manifest_format(self, fleet, tmp_path):
        directory = self._checkpointed(fleet, tmp_path)
        (directory / FLEET_MANIFEST_NAME).write_text(json.dumps({"format": "x"}))
        with pytest.raises(CheckpointError, match="not a fleet checkpoint"):
            resume_fleet(directory)

    def test_missing_shard_file(self, fleet, tmp_path):
        directory = self._checkpointed(fleet, tmp_path)
        victim = f"shard-{fleet.shard_ids[0]}.json"
        (directory / victim).unlink()
        with pytest.raises(CheckpointError, match="cannot read"):
            resume_fleet(directory)

    def test_shard_claiming_wrong_id(self, fleet, tmp_path):
        directory = self._checkpointed(fleet, tmp_path)
        victim = directory / f"shard-{fleet.shard_ids[0]}.json"
        payload = json.loads(victim.read_text())
        payload["shard"] = "imposter"
        victim.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="claims shard"):
            resume_fleet(directory)

    def test_assignment_drift_detected(self, fleet, tmp_path):
        directory = self._checkpointed(fleet, tmp_path)
        manifest_path = directory / FLEET_MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        # Pretend the ring had an extra shard: re-hashing must notice
        # that the shard files no longer match the manifest's ring.
        manifest["ring"]["shards"] = list(manifest["ring"]["shards"]) + ["ghost"]
        manifest["shards"]["ghost"] = "shard-ghost.json"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError):
            resume_fleet(directory)
