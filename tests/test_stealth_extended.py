"""Extended stealth-planner tests against the caching simulator."""

import numpy as np
import pytest

from repro.attacks.stealth import plan_stealthy_attack
from repro.billing.realtime import RealTimePriceModel
from repro.core.config import GameConfig, PricingConfig
from repro.detection.single_event import CommunityResponseSimulator
from repro.scheduling.game import Community
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=2, inner_iterations=1, ce_samples=8, ce_elites=2, ce_iterations=2
)


@pytest.fixture(scope="module")
def setup():
    community = Community(
        customers=(make_customer(0), make_customer(1)), counts=(6, 6)
    )
    simulator = CommunityResponseSimulator(community, config=FAST, seed=1)
    price_model = RealTimePriceModel(
        config=PricingConfig(), n_customers=12, surge_exponent=1.5
    )
    return simulator, price_model


class TestPlannerCacheReuse:
    def test_repeated_planning_reuses_solutions(self, setup):
        """Two plans over overlapping grids share cached game solves."""
        simulator, price_model = setup
        prices = np.full(HORIZON, 0.03)
        kwargs = dict(
            price_model=price_model,
            strengths=np.array([0.3, 0.6]),
            window_starts=np.array([10, 16]),
        )
        plan_stealthy_attack(simulator, prices, threshold=0.2, **kwargs)
        size_after_first = simulator.cache_size
        plan_stealthy_attack(simulator, prices, threshold=0.4, **kwargs)
        assert simulator.cache_size == size_after_first  # all cache hits

    def test_plan_reports_evaluation_count(self, setup):
        simulator, price_model = setup
        prices = np.full(HORIZON, 0.03)
        plan = plan_stealthy_attack(
            simulator,
            prices,
            threshold=0.2,
            price_model=price_model,
            strengths=np.array([0.3, 0.5, 0.7]),
            window_starts=np.array([8, 14, 20]),
        )
        assert plan.evaluated == 9


class TestPlannerOutcomes:
    def test_found_attack_is_executable(self, setup):
        simulator, price_model = setup
        prices = np.full(HORIZON, 0.03)
        plan = plan_stealthy_attack(
            simulator,
            prices,
            threshold=0.5,
            price_model=price_model,
            strengths=np.array([0.3, 0.6, 0.9]),
            window_starts=np.array([10, 16]),
        )
        if plan.found:
            out = plan.attack.apply(prices)
            assert out.shape == prices.shape
            assert np.all(out <= prices + 1e-12)

    def test_damage_never_negative(self, setup):
        simulator, price_model = setup
        prices = np.full(HORIZON, 0.03)
        plan = plan_stealthy_attack(
            simulator,
            prices,
            threshold=1.0,
            price_model=price_model,
            strengths=np.array([0.2, 0.8]),
            window_starts=np.array([12]),
        )
        assert plan.bill_damage >= 0.0
