"""Tests for the scratch-built epsilon-SVR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prediction.svr import SupportVectorRegressor, _kernel_matrix


class TestKernelMatrix:
    def test_linear(self):
        a = np.array([[1.0, 0.0], [0.0, 2.0]])
        k = _kernel_matrix(a, a, "linear", 1.0, 3, 1.0)
        np.testing.assert_allclose(k, a @ a.T)

    def test_rbf_diagonal_ones(self):
        a = np.random.default_rng(0).normal(size=(5, 3))
        k = _kernel_matrix(a, a, "rbf", 0.5, 3, 1.0)
        np.testing.assert_allclose(np.diag(k), 1.0)

    def test_rbf_symmetric_psd(self):
        a = np.random.default_rng(1).normal(size=(6, 2))
        k = _kernel_matrix(a, a, "rbf", 1.0, 3, 1.0)
        np.testing.assert_allclose(k, k.T)
        eigenvalues = np.linalg.eigvalsh(k)
        assert eigenvalues.min() > -1e-10

    def test_poly(self):
        a = np.array([[1.0], [2.0]])
        k = _kernel_matrix(a, a, "poly", 1.0, 2, 1.0)
        np.testing.assert_allclose(k, (a @ a.T + 1.0) ** 2)

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            _kernel_matrix(np.ones((1, 1)), np.ones((1, 1)), "spline", 1.0, 3, 1.0)


class TestValidation:
    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            SupportVectorRegressor(kernel="spline")

    def test_rejects_bad_c(self):
        with pytest.raises(ValueError):
            SupportVectorRegressor(c=0.0)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            SupportVectorRegressor(epsilon=-0.1)

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError, match="2-D"):
            SupportVectorRegressor().fit(np.ones(5), np.ones(5))

    def test_rejects_target_mismatch(self):
        with pytest.raises(ValueError, match="targets"):
            SupportVectorRegressor().fit(np.ones((5, 2)), np.ones(4))

    def test_rejects_nan(self):
        x = np.ones((3, 1))
        x[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            SupportVectorRegressor().fit(x, np.ones(3))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            SupportVectorRegressor().predict(np.ones((1, 2)))

    def test_predict_dimension_mismatch(self):
        model = SupportVectorRegressor().fit(np.ones((4, 2)), np.arange(4.0))
        with pytest.raises(ValueError, match="dimension"):
            model.predict(np.ones((1, 3)))


class TestRegressionQuality:
    def test_linear_function_linear_kernel(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(80, 2))
        y = 3.0 * x[:, 0] - 2.0 * x[:, 1] + 0.5
        model = SupportVectorRegressor(kernel="linear", c=100.0, epsilon=0.01)
        model.fit(x, y)
        assert model.score_rmse(x, y) < 0.1

    def test_sine_rbf(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 2 * np.pi, 120)[:, None]
        y = np.sin(x[:, 0]) + rng.normal(0, 0.02, size=120)
        model = SupportVectorRegressor(kernel="rbf", c=50.0, epsilon=0.02, gamma=2.0)
        model.fit(x, y)
        grid = np.linspace(0.3, 2 * np.pi - 0.3, 40)[:, None]
        assert model.score_rmse(grid, np.sin(grid[:, 0])) < 0.1

    def test_quadratic_poly_kernel(self):
        x = np.linspace(-1, 1, 60)[:, None]
        y = x[:, 0] ** 2
        model = SupportVectorRegressor(kernel="poly", degree=2, c=100.0, epsilon=0.01)
        model.fit(x, y)
        assert model.score_rmse(x, y) < 0.05

    def test_constant_target(self):
        """Degenerate zero-variance target: prediction equals the constant."""
        x = np.random.default_rng(2).normal(size=(20, 2))
        y = np.full(20, 7.0)
        model = SupportVectorRegressor().fit(x, y)
        np.testing.assert_allclose(model.predict(x), 7.0, atol=1e-6)

    def test_1d_feature_prediction(self):
        model = SupportVectorRegressor(kernel="linear", c=10.0)
        model.fit(np.arange(10.0)[:, None], np.arange(10.0))
        single = model.predict(np.array([4.5]))
        assert single.shape == (1,)
        assert single[0] == pytest.approx(4.5, abs=0.3)

    @settings(max_examples=10, deadline=None)
    @given(
        slope=st.floats(-3.0, 3.0),
        intercept=st.floats(-2.0, 2.0),
    )
    def test_recovers_affine(self, slope, intercept):
        x = np.linspace(-2, 2, 50)[:, None]
        y = slope * x[:, 0] + intercept
        model = SupportVectorRegressor(kernel="linear", c=100.0, epsilon=0.01)
        model.fit(x, y)
        assert model.score_rmse(x, y) < 0.1 + 0.02 * abs(slope)


class TestDualProperties:
    def test_support_vector_count(self):
        x = np.linspace(0, 1, 30)[:, None]
        y = 2.0 * x[:, 0]
        model = SupportVectorRegressor(kernel="linear", c=10.0, epsilon=0.2)
        model.fit(x, y)
        # wide epsilon tube: most points are inside, few support vectors
        assert model.support_vector_count < 30

    def test_sweeps_reported(self):
        model = SupportVectorRegressor(max_iterations=5)
        model.fit(np.random.default_rng(0).normal(size=(10, 2)), np.arange(10.0))
        assert 1 <= model.n_sweeps <= 5

    def test_deterministic(self):
        x = np.random.default_rng(3).normal(size=(25, 2))
        y = x[:, 0] - x[:, 1]
        a = SupportVectorRegressor().fit(x, y).predict(x)
        b = SupportVectorRegressor().fit(x, y).predict(x)
        np.testing.assert_array_equal(a, b)
