"""Extended solar-model tests: envelopes, multi-day traces, correlation."""

import numpy as np
import pytest

from repro.core.config import SolarConfig, TimeGrid
from repro.data.solar import clear_sky_profile, generate_pv


class TestClearSkyEnvelope:
    def test_respects_custom_daylight(self):
        config = SolarConfig(sunrise_hour=8.0, sunset_hour=16.0)
        grid = TimeGrid(slots_per_day=24)
        profile = clear_sky_profile(grid, config)
        assert profile[7] == pytest.approx(0.0)
        assert profile[16] == pytest.approx(0.0)
        assert profile[12] > 0.9

    def test_multi_day_tiles(self):
        grid = TimeGrid(slots_per_day=24, n_days=3)
        profile = clear_sky_profile(grid, SolarConfig())
        np.testing.assert_allclose(profile[:24], profile[24:48])
        np.testing.assert_allclose(profile[:24], profile[48:])

    def test_subhourly_resolution(self):
        fine = clear_sky_profile(TimeGrid(slots_per_day=48), SolarConfig())
        coarse = clear_sky_profile(TimeGrid(slots_per_day=24), SolarConfig())
        # same peak height, finer sampling
        assert fine.max() == pytest.approx(coarse.max(), abs=0.02)
        assert fine.size == 2 * coarse.size

    def test_bounded_unit(self):
        profile = clear_sky_profile(TimeGrid(), SolarConfig())
        assert np.all((0.0 <= profile) & (profile <= 1.0))


class TestGeneratedTraces:
    def test_bounded_by_envelope(self, rng):
        grid = TimeGrid(slots_per_day=24)
        config = SolarConfig(peak_kw=2.0)
        envelope = clear_sky_profile(grid, config) * 2.0
        for _ in range(5):
            trace = generate_pv(rng, grid, config)
            assert np.all(trace <= envelope + 1e-9)
            assert np.all(trace >= 0.0)

    def test_temporal_correlation_of_clouds(self):
        """Cloud attenuation is mean-reverting, so adjacent daylight slots
        correlate more than distant ones on average."""
        grid = TimeGrid(slots_per_day=24)
        config = SolarConfig(peak_kw=1.0, cloud_volatility=0.3, cloud_reversion=0.2)
        envelope = clear_sky_profile(grid, config)
        day = envelope > 0.3
        ratios = []
        for seed in range(200):
            trace = generate_pv(np.random.default_rng(seed), grid, config)
            attenuation = trace[day] / envelope[day]
            ratios.append(attenuation)
        stacked = np.array(ratios)
        def corr(lag):
            a = stacked[:, :-lag].ravel()
            b = stacked[:, lag:].ravel()
            return np.corrcoef(a, b)[0, 1]
        assert corr(1) > corr(5)

    def test_zero_volatility_equals_envelope_scale(self):
        grid = TimeGrid(slots_per_day=24)
        config = SolarConfig(peak_kw=1.0, cloud_volatility=0.0, cloud_reversion=0.5)
        trace = generate_pv(np.random.default_rng(0), grid, config)
        envelope = clear_sky_profile(grid, config)
        np.testing.assert_allclose(trace, envelope, atol=1e-9)

    def test_multi_day_trace_spans_horizon(self, rng):
        grid = TimeGrid(slots_per_day=24, n_days=2)
        trace = generate_pv(rng, grid, SolarConfig(peak_kw=1.0))
        assert trace.shape == (48,)
        # both days generate something
        assert trace[:24].sum() > 0
        assert trace[24:].sum() > 0
