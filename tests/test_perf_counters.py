"""Tests for the perf-counter registry, including interval deltas."""

from repro.perf.counters import PerfRegistry
import pytest


class TestCounters:
    def test_add_and_get(self):
        registry = PerfRegistry()
        registry.add("x")
        registry.add("x", 2.5)
        assert registry.get("x") == pytest.approx(3.5)
        assert registry.get("missing") == pytest.approx(0.0)

    def test_snapshot_includes_timers_with_suffix(self):
        registry = PerfRegistry()
        with registry.timer("work"):
            pass
        snap = registry.snapshot()
        assert "work_s" in snap
        assert snap["work_s"] >= 0.0

    def test_reset(self):
        registry = PerfRegistry()
        registry.add("x")
        registry.reset()
        assert registry.snapshot() == {}


class TestDeltaSince:
    def test_reports_only_changes(self):
        registry = PerfRegistry()
        registry.add("a", 2)
        registry.add("b", 1)
        baseline = registry.snapshot()
        registry.add("a", 3)
        delta = registry.delta_since(baseline)
        assert delta == {"a": 3.0}  # b unchanged → dropped

    def test_new_counter_counts_from_zero(self):
        registry = PerfRegistry()
        baseline = registry.snapshot()
        registry.add("fresh", 7)
        assert registry.delta_since(baseline) == {"fresh": 7.0}

    def test_empty_interval_is_empty(self):
        registry = PerfRegistry()
        registry.add("a")
        baseline = registry.snapshot()
        assert registry.delta_since(baseline) == {}

    def test_successive_scrapes_partition_the_work(self):
        """snapshot→delta pairs must tile the total without overlap."""
        registry = PerfRegistry()
        registry.add("events", 10)
        first_baseline = registry.snapshot()
        registry.add("events", 4)
        first = registry.delta_since(first_baseline)
        second_baseline = registry.snapshot()
        registry.add("events", 6)
        second = registry.delta_since(second_baseline)
        assert first == {"events": 4.0}
        assert second == {"events": 6.0}
        assert registry.get("events") == pytest.approx(20.0)
