"""Exact storage-arbitrage oracle vs the CE battery optimizer.

For a *single* customer (``others_trading = 0``, ``multiplicity = 1``)
with no appliances, the scheduling problem degenerates to storage
arbitrage under the quadratic net-metering tariff: choose a feasible
battery trajectory minimizing ``sum_h p_h * max(y_h, 0) * y_h`` with
``y = load + diff(b) - pv``.  That problem admits an exact
lattice-dynamic-program oracle (in the style of Hashmi et al.'s
storage-arbitrage DPs): discretize the state of charge, take the exact
stage cost on the grid, and backward-induct.  The oracle restricted to
the grid upper-bounds nothing and lower-bounds the continuous optimum
to within the grid resolution, so it brackets what the CE solver may
return.

These tests pin (1) the oracle itself against an analytically solvable
instance, (2) structural properties of the oracle, and (3) the property
that the production CE optimizer lands within tolerance of the oracle
on random storage-only instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.config import BatteryConfig
from repro.netmetering.cost import NetMeteringCostModel
from repro.optimization.battery import BatteryOptimizer, BatteryProblem

H = 12

SPEC = BatteryConfig(
    capacity_kwh=2.0, initial_kwh=0.5, max_charge_kw=1.0, max_discharge_kw=1.0
)


def storage_problem(
    load: np.ndarray,
    prices: np.ndarray,
    *,
    spec: BatteryConfig = SPEC,
    pv: np.ndarray | None = None,
) -> BatteryProblem:
    """A single-customer, storage-only instance (no siblings, no export gain)."""
    pv = pv if pv is not None else np.zeros(len(load))
    return BatteryProblem(
        load=tuple(load),
        pv=tuple(pv),
        others_trading=tuple(np.zeros(len(load))),
        spec=spec,
        cost_model=NetMeteringCostModel(
            prices=tuple(prices), sellback_divisor=2.0
        ),
    )


def lattice_oracle(problem: BatteryProblem, *, n_grid: int = 161) -> float:
    """Exact optimal cost over an ``n_grid``-point state-of-charge lattice.

    Backward induction over slots with the *exact* stage cost evaluated
    on every feasible grid transition.  The initial charge must lie on
    the grid so the returned value is the true optimum of the latticed
    problem (no interpolation error).
    """
    spec = problem.spec
    levels = np.linspace(0.0, spec.capacity_kwh, n_grid)
    load = np.asarray(problem.load)
    pv = np.asarray(problem.pv)
    prices = problem.cost_model.price_array
    divisor = problem.cost_model.sellback_divisor
    others = np.asarray(problem.others_trading)
    mult = problem.multiplicity
    dt = problem.slot_hours

    value = np.zeros(n_grid)
    for h in reversed(range(problem.horizon)):
        delta = levels[None, :] - levels[:, None]
        feasible = (delta <= spec.max_charge_kw * dt + 1e-9) & (
            delta >= -spec.max_discharge_kw * dt - 1e-9
        )
        y = load[h] + delta - pv[h]
        total = np.maximum(others[h] + mult * y, 0.0)
        stage = np.where(
            y >= 0, prices[h] * total * y, (prices[h] / divisor) * total * y
        )
        value = np.where(feasible, stage + value[None, :], np.inf).min(axis=1)

    start = int(round(spec.initial_kwh / spec.capacity_kwh * (n_grid - 1)))
    assert abs(levels[start] - spec.initial_kwh) < 1e-12, (
        "initial charge must lie on the lattice"
    )
    return float(value[start])


def ce_cost(problem: BatteryProblem, *, seed: int = 0) -> float:
    result = BatteryOptimizer(
        n_samples=64, n_elites=10, n_iterations=40, smoothing=0.7
    ).optimize(problem, rng=np.random.default_rng(seed))
    return result.fun


class TestOracleExactness:
    def test_flat_instance_matches_closed_form(self):
        # Flat load, flat prices, empty battery: convexity makes the
        # do-nothing trajectory optimal, so cost = H * p * l^2 exactly.
        load, price = 0.8, 0.03
        spec = BatteryConfig(
            capacity_kwh=2.0, initial_kwh=0.0,
            max_charge_kw=1.0, max_discharge_kw=1.0,
        )
        problem = storage_problem(
            np.full(H, load), np.full(H, price), spec=spec
        )
        analytic = H * price * load**2
        assert lattice_oracle(problem) == pytest.approx(analytic, rel=1e-9)

    def test_oracle_never_exceeds_do_nothing(self):
        rng = np.random.default_rng(1)
        load = rng.uniform(0.1, 1.2, H)
        prices = rng.uniform(0.01, 0.08, H)
        problem = storage_problem(load, prices)
        do_nothing = problem.cost(np.full(H, SPEC.initial_kwh))
        assert lattice_oracle(problem) <= do_nothing + 1e-12

    def test_larger_battery_never_hurts(self):
        rng = np.random.default_rng(2)
        load = rng.uniform(0.1, 1.2, H)
        prices = rng.uniform(0.01, 0.08, H)
        small = storage_problem(load, prices)
        bigger_spec = BatteryConfig(
            capacity_kwh=4.0, initial_kwh=0.5,
            max_charge_kw=2.0, max_discharge_kw=2.0,
        )
        big = storage_problem(load, prices, spec=bigger_spec)
        assert lattice_oracle(big, n_grid=321) <= lattice_oracle(small) + 1e-9

    def test_finer_grid_only_improves(self):
        rng = np.random.default_rng(3)
        load = rng.uniform(0.1, 1.2, H)
        prices = rng.uniform(0.01, 0.08, H)
        problem = storage_problem(load, prices)
        coarse = lattice_oracle(problem, n_grid=41)
        fine = lattice_oracle(problem, n_grid=161)
        assert fine <= coarse + 1e-12


class TestCeWithinTolerance:
    # Empirically the production CE settings land 0-14% above the exact
    # optimum on random instances of this size; the bounds below leave
    # headroom while still catching a broken solver or cost kernel.
    UPPER_MARGIN = 1.5
    LOWER_SLACK = 0.02

    @pytest.mark.parametrize("seed", [0, 7, 25, 42, 47])
    def test_regression_instances(self, seed):
        rng = np.random.default_rng(seed)
        load = rng.uniform(0.1, 1.2, H)
        prices = rng.uniform(0.01, 0.08, H)
        problem = storage_problem(load, prices)
        oracle = lattice_oracle(problem)
        cost = ce_cost(problem, seed=seed)
        assert cost <= oracle * 1.2 + 1e-4
        assert cost >= oracle * (1 - self.LOWER_SLACK) - 1e-6

    @settings(max_examples=10, deadline=None)
    @given(
        load=arrays(
            np.float64, H, elements=st.floats(min_value=0.1, max_value=1.2)
        ),
        prices=arrays(
            np.float64, H, elements=st.floats(min_value=0.01, max_value=0.08)
        ),
    )
    def test_ce_brackets_oracle(self, load, prices):
        problem = storage_problem(load, prices)
        oracle = lattice_oracle(problem)
        cost = ce_cost(problem)
        # The oracle lower-bounds the continuous optimum up to grid
        # resolution; CE can only do worse than the true optimum.  The
        # absolute slack covers near-degenerate instances whose optimal
        # cost is tiny compared to the battery's energy scale, where
        # CE's absolute plateau dwarfs any relative margin.
        assert cost >= oracle * (1 - self.LOWER_SLACK) - 1e-6
        assert cost <= oracle * self.UPPER_MARGIN + 0.01

    def test_ce_exploits_cheap_pv_window(self):
        # A canonical arbitrage instance: free midday PV surplus and an
        # expensive evening peak.  Any sane storage policy beats
        # do-nothing, and CE must find such a policy.
        load = np.concatenate([np.full(H // 2, 0.2), np.full(H - H // 2, 1.0)])
        pv = np.concatenate([np.full(H // 2, 0.8), np.zeros(H - H // 2)])
        prices = np.concatenate(
            [np.full(H // 2, 0.01), np.full(H - H // 2, 0.08)]
        )
        problem = storage_problem(load, prices, pv=pv)
        do_nothing = problem.cost(np.full(H, SPEC.initial_kwh))
        oracle = lattice_oracle(problem)
        cost = ce_cost(problem)
        assert oracle < do_nothing * 0.9
        assert cost < do_nothing
        assert cost >= oracle * (1 - self.LOWER_SLACK) - 1e-6
