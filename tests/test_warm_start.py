"""Equilibrium warm-starting: near-hit lookup and determinism contracts.

Warm-starting seeds a game solve from the nearest cached equilibrium
(Chebyshev distance over rounded price vectors).  The contracts under
test:

- ``register_prices`` / ``nearest`` behave as a deterministic index —
  insertion order scan, strict improvement, first-registered wins ties,
  evicted entries pruned;
- warm-started results are deterministic given the cache state;
- a warm-start simulator over an *empty* cache is bitwise-identical to
  a cold simulator (``nearest`` returns ``None``, so the solve runs the
  historical cold path);
- warm solutions live in their own cache namespace and never collide
  with the cold entries golden-master runs rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GameConfig, SolverConfig
from repro.detection.single_event import CommunityResponseSimulator
from repro.scheduling.batch import solve_games
from repro.scheduling.game import Community
from repro.simulation.cache import (
    GameSolutionCache,
    NearHit,
    solution_key,
    solve_context_key,
    warm_context_key,
)
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=3,
    inner_iterations=1,
    ce_samples=12,
    ce_elites=3,
    ce_iterations=3,
)

WARM_SOLVER = SolverConfig(
    warm_start=True, warm_start_max_distance=10.0, ce_warm_std_scale=0.25
)


@pytest.fixture(scope="module")
def community() -> Community:
    from repro.core.config import BatteryConfig

    spec = BatteryConfig(
        capacity_kwh=2.0, initial_kwh=0.5, max_charge_kw=1.0, max_discharge_kw=1.0
    )
    return Community(
        customers=(
            make_customer(0),
            make_customer(1, battery=spec, pv_peak=0.8),
        ),
        counts=(2, 2),
    )


@pytest.fixture(scope="module")
def solved(community) -> dict[str, object]:
    """One solved game reused as cache content across the unit tests."""
    prices = np.linspace(0.01, 0.05, HORIZON)
    [result] = solve_games(community, [prices], config=FAST)
    return {"prices": prices, "result": result}


def _simulator(community, *, solver=None, cache=None) -> CommunityResponseSimulator:
    return CommunityResponseSimulator(
        community,
        config=FAST,
        seed=3,
        cache=cache if cache is not None else GameSolutionCache(),
        solver=solver,
    )


def assert_results_equal(a, b) -> None:
    assert a.rounds == b.rounds
    assert a.residuals == b.residuals
    for state_a, state_b in zip(a.states, b.states):
        assert state_a.battery_decision == state_b.battery_decision
        for sched_a, sched_b in zip(state_a.schedules, state_b.schedules):
            assert sched_a.power == sched_b.power


class TestWarmContextKey:
    def test_differs_from_cold_context(self):
        cold = "a" * 64
        warm = warm_context_key(cold, ce_std_scale=0.25, max_distance=0.05)
        assert warm != cold

    def test_sensitive_to_both_knobs(self):
        cold = "a" * 64
        base = warm_context_key(cold, ce_std_scale=0.25, max_distance=0.05)
        assert base != warm_context_key(cold, ce_std_scale=0.5, max_distance=0.05)
        assert base != warm_context_key(cold, ce_std_scale=0.25, max_distance=0.1)

    def test_deterministic(self):
        cold = "b" * 64
        assert warm_context_key(
            cold, ce_std_scale=0.25, max_distance=0.05
        ) == warm_context_key(cold, ce_std_scale=0.25, max_distance=0.05)


class TestNearestLookup:
    def _put(self, cache, context, prices, result, tag):
        key = solution_key(context, prices) + tag
        cache.put(key, result)
        cache.register_prices(context, prices, key)
        return key

    def test_finds_closest_registered_vector(self, solved):
        cache = GameSolutionCache()
        context = "ctx"
        base = solved["prices"]
        far_key = self._put(cache, context, base + 0.02, solved["result"], "far")
        near_key = self._put(cache, context, base + 0.001, solved["result"], "near")
        hit = cache.nearest(context, base)
        assert isinstance(hit, NearHit)
        assert hit.key == near_key
        assert hit.key != far_key
        assert hit.distance == pytest.approx(0.001)

    def test_max_distance_excludes_far_entries(self, solved):
        cache = GameSolutionCache()
        base = solved["prices"]
        self._put(cache, "ctx", base + 0.02, solved["result"], "far")
        assert cache.nearest("ctx", base, max_distance=0.01) is None
        assert cache.nearest("ctx", base, max_distance=0.05) is not None

    def test_empty_context_returns_none(self, solved):
        cache = GameSolutionCache()
        assert cache.nearest("ctx", solved["prices"]) is None

    def test_first_registered_wins_ties(self, solved):
        cache = GameSolutionCache()
        base = solved["prices"]
        first = self._put(cache, "ctx", base + 0.01, solved["result"], "first")
        self._put(cache, "ctx", base - 0.01, solved["result"], "second")
        hit = cache.nearest("ctx", base)
        assert hit is not None and hit.key == first

    def test_evicted_entries_are_pruned(self, solved):
        cache = GameSolutionCache(max_entries=1)
        base = solved["prices"]
        self._put(cache, "ctx", base + 0.001, solved["result"], "old")
        kept = self._put(cache, "ctx", base + 0.02, solved["result"], "new")
        # The first entry was evicted by the LRU bound; nearest must skip
        # it (and drop it from the index) rather than return a dead key.
        hit = cache.nearest("ctx", base)
        assert hit is not None and hit.key == kept
        assert len(cache._price_index["ctx"]) == 1

    def test_contexts_are_isolated(self, solved):
        cache = GameSolutionCache()
        base = solved["prices"]
        self._put(cache, "ctx-a", base, solved["result"], "a")
        assert cache.nearest("ctx-b", base) is None

    def test_clear_drops_price_index(self, solved):
        cache = GameSolutionCache()
        base = solved["prices"]
        self._put(cache, "ctx", base, solved["result"], "a")
        cache.clear()
        assert cache.nearest("ctx", base) is None


class TestWarmStartSimulator:
    def test_empty_cache_warm_equals_cold(self, community):
        prices = np.linspace(0.012, 0.045, HORIZON)
        cold = _simulator(community).response(prices)
        warm = _simulator(community, solver=WARM_SOLVER).response(prices)
        assert_results_equal(cold, warm)

    def test_warm_runs_deterministic_given_cache_state(self, community):
        base = np.linspace(0.012, 0.045, HORIZON)
        vectors = [base, base * 1.05, base * 0.9, base + 0.003]
        runs = []
        for _ in range(2):
            simulator = _simulator(community, solver=WARM_SOLVER)
            runs.append([simulator.response(p) for p in vectors])
        for a, b in zip(*runs):
            assert_results_equal(a, b)

    def test_warm_and_cold_namespaces_disjoint(self, community):
        cache = GameSolutionCache()
        base = np.linspace(0.012, 0.045, HORIZON)
        cold_sim = _simulator(community, cache=cache)
        warm_sim = _simulator(community, solver=WARM_SOLVER, cache=cache)

        cold_before = cold_sim.response(base * 1.02)
        warm_sim.response(base)
        warm_sim.response(base * 1.02)
        cold_after = _simulator(community, cache=cache).response(base * 1.02)
        # The warm simulator populated the shared cache, but only under
        # its namespaced context key: the cold result is untouched.
        assert_results_equal(cold_before, cold_after)
        assert cold_sim._context_key != warm_sim._context_key

    def test_warm_context_key_matches_helper(self, community):
        cache = GameSolutionCache()
        cold_sim = _simulator(community, cache=cache)
        warm_sim = _simulator(community, solver=WARM_SOLVER, cache=cache)
        expected = warm_context_key(
            solve_context_key(
                community, FAST, sellback_divisor=2.0, seed=3
            ),
            ce_std_scale=WARM_SOLVER.ce_warm_std_scale,
            max_distance=WARM_SOLVER.warm_start_max_distance,
        )
        assert warm_sim._context_key == expected
        assert cold_sim._context_key != expected

    def test_cold_prefetch_then_response_matches_unprefetched(self, community):
        # For the (default) cold solver, prefetching is bitwise-neutral:
        # batched lockstep solving reproduces the sequential loop.
        base = np.linspace(0.012, 0.045, HORIZON)
        vectors = [base, base * 1.05, base * 0.9]
        prefetched = _simulator(community)
        prefetched.prefetch(vectors)
        direct = _simulator(community)
        for p in vectors:
            assert_results_equal(prefetched.response(p), direct.response(p))

    def test_warm_prefetch_is_deterministic(self, community):
        # Warm-started results depend on the cache state at solve time —
        # a prefetched batch sees an emptier cache than sequential
        # responses would — so the warm contract is determinism under the
        # same call pattern, not equality across call patterns.
        base = np.linspace(0.012, 0.045, HORIZON)
        vectors = [base, base * 1.05, base * 0.9]
        runs = []
        for _ in range(2):
            simulator = _simulator(community, solver=WARM_SOLVER)
            simulator.prefetch(vectors)
            runs.append([simulator.response(p) for p in vectors])
        for a, b in zip(*runs):
            assert_results_equal(a, b)
