"""Tests for the community scheduling game."""

import numpy as np
import pytest

from repro.core.config import GameConfig
from repro.scheduling.game import Community, SchedulingGame
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=4,
    inner_iterations=1,
    ce_samples=12,
    ce_elites=3,
    ce_iterations=3,
    convergence_tol=0.05,
)


def flat_prices(value: float = 0.03) -> np.ndarray:
    return np.full(HORIZON, value)


class TestCommunity:
    def test_counts_validation(self, small_customer):
        with pytest.raises(ValueError, match="counts"):
            Community(customers=(small_customer,), counts=(1, 2))

    def test_positive_counts(self, small_customer):
        with pytest.raises(ValueError, match="counts"):
            Community(customers=(small_customer,), counts=(0,))

    def test_horizon_agreement(self, small_customer):
        short = make_customer(5)
        short = type(short)(
            customer_id=5,
            tasks=(
                type(short.tasks[0])(
                    name="t", power_levels=(0.0, 1.0), energy_kwh=1.0,
                    earliest_start=0, deadline=5,
                ),
            ),
            battery=short.battery,
            pv=(0.0,) * 12,
        )
        with pytest.raises(ValueError, match="horizon"):
            Community(customers=(small_customer, short), counts=(1, 1))

    def test_total_pv_weighted(self, small_community):
        total = small_community.total_pv
        expected = (
            3 * small_community.customers[0].pv_array
            + 2 * small_community.customers[1].pv_array
        )
        np.testing.assert_allclose(total, expected)

    def test_without_net_metering(self, small_community):
        stripped = small_community.without_net_metering()
        np.testing.assert_array_equal(stripped.total_pv, 0.0)
        assert stripped.n_customers == small_community.n_customers


class TestSchedulingGame:
    def test_price_shape_validation(self, small_community):
        with pytest.raises(ValueError, match="prices"):
            SchedulingGame(small_community, np.ones(5), config=FAST)

    def test_initial_state_feasible(self, small_community):
        game = SchedulingGame(small_community, flat_prices(), config=FAST)
        for customer in small_community.customers:
            state = game.initial_state(customer)
            for schedule in state.schedules:
                schedule.validate()

    def test_solve_returns_converged_result(self, small_community, rng):
        game = SchedulingGame(small_community, flat_prices(), config=FAST)
        result = game.solve(rng=rng)
        assert result.rounds >= 1
        assert len(result.states) == len(small_community.customers)

    def test_energy_conservation(self, small_community, rng):
        """Community load integrates base load plus every task's energy."""
        game = SchedulingGame(small_community, flat_prices(), config=FAST)
        result = game.solve(rng=rng)
        expected = 0.0
        for customer, count in zip(small_community.customers, small_community.counts):
            expected += count * (
                customer.base_load_array.sum() + customer.total_task_energy
            )
        assert result.community_load.sum() == pytest.approx(expected)

    def test_all_schedules_valid_after_solve(self, small_community, rng):
        game = SchedulingGame(small_community, flat_prices(), config=FAST)
        result = game.solve(rng=rng)
        for state in result.states:
            for schedule in state.schedules:
                schedule.validate()

    def test_battery_trajectories_feasible(self, small_community, rng):
        from repro.netmetering.battery import validate_trajectory

        game = SchedulingGame(small_community, flat_prices(), config=FAST)
        result = game.solve(rng=rng)
        for state in result.states:
            validate_trajectory(state.battery_trajectory, state.customer.battery)

    def test_flattening_effect(self, rng):
        """The quadratic game moves deferrable load off the expensive peak."""
        customer = make_customer()
        community = Community(customers=(customer,), counts=(20,))
        peaky = flat_prices()
        peaky[18:22] = 0.12  # expensive evening
        game = SchedulingGame(community, peaky, config=FAST)
        result = game.solve(rng=rng)
        # the EV task (window 18-23) must concentrate in the cheap tail
        ev_load = result.states[0].schedules[1].load
        assert ev_load[22] + ev_load[23] >= 2.0

    def test_cheap_window_attracts_load(self, small_community, rng):
        prices = flat_prices()
        prices[10:12] = 0.001
        game = SchedulingGame(small_community, prices, config=FAST)
        result = game.solve(rng=rng)
        flat_result = SchedulingGame(
            small_community, flat_prices(), config=FAST
        ).solve(rng=np.random.default_rng(0))
        window_load = result.community_load[10:12].sum()
        flat_window_load = flat_result.community_load[10:12].sum()
        assert window_load >= flat_window_load

    def test_grid_demand_nonnegative(self, small_community, rng):
        game = SchedulingGame(small_community, flat_prices(), config=FAST)
        result = game.solve(rng=rng)
        assert np.all(result.grid_demand >= 0.0)

    def test_trading_identity(self, small_community, rng):
        """Community trading equals load plus battery delta minus PV."""
        game = SchedulingGame(small_community, flat_prices(), config=FAST)
        result = game.solve(rng=rng)
        battery_delta = np.zeros(HORIZON)
        for state, count in zip(result.states, result.counts):
            battery_delta += count * np.diff(state.battery_trajectory)
        expected = result.community_load + battery_delta - (
            3 * small_community.customers[0].pv_array
            + 2 * small_community.customers[1].pv_array
        )
        np.testing.assert_allclose(result.community_trading, expected, atol=1e-9)

    def test_deterministic_given_seed(self, small_community):
        def solve(seed):
            return SchedulingGame(
                small_community, flat_prices(), config=FAST
            ).solve(rng=np.random.default_rng(seed))

        a, b = solve(4), solve(4)
        np.testing.assert_array_equal(a.community_load, b.community_load)

    def test_best_response_does_not_increase_cost(self, small_community, rng):
        """A best-response pass never worsens the customer's own cost."""
        game = SchedulingGame(small_community, flat_prices(), config=FAST)
        state = game.initial_state(small_community.customers[0])
        others = np.full(HORIZON, 5.0)
        before = game.cost_model.customer_cost_per_slot(
            state.trading, others, multiplicity=3
        ).sum()
        new_state = game.best_response(state, others, rng, multiplicity=3)
        after = game.cost_model.customer_cost_per_slot(
            new_state.trading, others, multiplicity=3
        ).sum()
        assert after <= before + 1e-9
