"""Tests for single-event rate calibration."""

import numpy as np
import pytest

from repro.attacks.hacking import MeterHackingProcess
from repro.core.config import GameConfig
from repro.detection.single_event import (
    CommunityResponseSimulator,
    SingleEventDetector,
)
from repro.scheduling.game import Community
from repro.simulation.calibration import SingleEventRates, measure_single_event_rates
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=2,
    inner_iterations=1,
    ce_samples=8,
    ce_elites=2,
    ce_iterations=2,
    convergence_tol=0.1,
)


class TestSingleEventRates:
    def test_validation(self):
        with pytest.raises(ValueError):
            SingleEventRates(tp_rate=1.2, fp_rate=0.0, n_attacked_trials=1, n_clean_trials=1)
        with pytest.raises(ValueError):
            SingleEventRates(tp_rate=0.5, fp_rate=0.0, n_attacked_trials=0, n_clean_trials=1)

    def test_clipping(self):
        rates = SingleEventRates(
            tp_rate=1.0, fp_rate=0.0, n_attacked_trials=10, n_clean_trials=10
        ).clipped()
        assert rates.tp_rate == pytest.approx(0.98)
        assert rates.fp_rate == pytest.approx(0.02)

    def test_clipping_preserves_interior(self):
        rates = SingleEventRates(
            tp_rate=0.7, fp_rate=0.2, n_attacked_trials=5, n_clean_trials=5
        ).clipped()
        assert rates.tp_rate == pytest.approx(0.7)
        assert rates.fp_rate == pytest.approx(0.2)


class TestMeasureRates:
    @pytest.fixture
    def detector(self):
        community = Community(
            customers=(make_customer(0), make_customer(1)), counts=(5, 5)
        )
        simulator = CommunityResponseSimulator(community, config=FAST, seed=1)
        return SingleEventDetector(
            simulator,
            np.full(HORIZON, 0.03),
            threshold=0.05,
            margin_noise_std=0.01,
        )

    def test_rates_measured(self, detector):
        hacking = MeterHackingProcess(
            4, 0.1, rng=np.random.default_rng(0), strength_range=(0.9, 1.0),
            window_hours=(3, 3), window_hour_range=(17, 23),
        )
        rates = measure_single_event_rates(
            detector,
            np.full(HORIZON, 0.03),
            hacking,
            n_trials=6,
            rng=np.random.default_rng(1),
        )
        assert 0.0 <= rates.fp_rate <= 1.0
        assert rates.n_attacked_trials == 6
        # Strong evening attacks on a clean baseline must mostly register.
        assert rates.tp_rate >= 0.5

    def test_clean_baseline_low_fp(self, detector):
        hacking = MeterHackingProcess(4, 0.1, rng=np.random.default_rng(0))
        rates = measure_single_event_rates(
            detector,
            np.full(HORIZON, 0.03),
            hacking,
            n_trials=6,
            rng=np.random.default_rng(2),
        )
        assert rates.fp_rate <= 0.5

    def test_trial_validation(self, detector):
        hacking = MeterHackingProcess(4, 0.1)
        with pytest.raises(ValueError):
            measure_single_event_rates(
                detector, np.full(HORIZON, 0.03), hacking, n_trials=0
            )
