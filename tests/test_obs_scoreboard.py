"""Resilience scoreboard: episode math, merge exactness, pure-observer.

The scoreboard is a fold over two event streams the pipeline already
emits, so the contracts pinned here are arithmetic and behavioural:

- MTTD/MTTR/availability/false-alarm math on hand-built timelines;
- attack-family attribution via the occurrence ledger;
- ``state_dict`` round-trips and equals a from-scratch ``rebuild``;
- ``merge_reports`` is an *exact* integer-sum merge (fold over the
  concatenation, never an average of averages);
- attaching a scoreboard to a live engine leaves the timeline bitwise
  unchanged (the AuditTrail discipline).
"""

import numpy as np
import pytest

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    SolarConfig,
    TimeGrid,
)
from repro.obs.scoreboard import (
    ResilienceScoreboard,
    ScoreboardPublisher,
    attach_scoreboard,
    merge_reports,
    scoreboard_from_arrays,
)
from repro.perf.counters import PerfRegistry
from repro.simulation.cache import GameSolutionCache
from repro.stream.pipeline import SlotDetection, build_synthetic_engine

N_METERS = 2


def _det(
    slot,
    truth_bits,
    flag_bits,
    *,
    repaired=False,
    gap=False,
):
    """A minimal hand-built verdict; truth_bits=None means unscored."""
    return SlotDetection(
        slot=slot,
        day=slot // 24,
        flags=np.asarray(flag_bits or [0] * N_METERS, dtype=bool),
        observation=int(any(flag_bits or [])),
        action=None,
        belief_mean=None,
        repaired=repaired,
        repaired_count=int(repaired),
        realized_grid=None,
        truth=None if truth_bits is None else np.asarray(truth_bits, dtype=bool),
        gap=gap,
        gap_reason="dropped" if gap else None,
    )


def _fold(board, timeline):
    for det in timeline:
        board.record(det)
    return board


CLEAN = [0, 0]
HIT = [1, 0]


class TestEpisodeMath:
    def test_detected_episode_mttd_and_mttr(self):
        # clean, clean, attack onset @2, detect @4, clear @6.
        timeline = [
            _det(0, CLEAN, CLEAN),
            _det(1, CLEAN, CLEAN),
            _det(2, HIT, CLEAN),
            _det(3, HIT, CLEAN),
            _det(4, HIT, HIT),
            _det(5, HIT, HIT),
            _det(6, CLEAN, CLEAN),
        ]
        report = _fold(ResilienceScoreboard(), timeline).report()
        assert report["episodes"] == {
            "total": 1, "detected": 1, "missed": 0, "resolved": 1, "open": 0,
        }
        assert report["mttd"] == {
            "total_slots": 2, "episodes": 1, "samples": [2], "mean_slots": 2.0,
        }
        assert report["mttr"] == {
            "total_slots": 2, "episodes": 1, "samples": [2], "mean_slots": 2.0,
        }
        assert report["slots"] == {"total": 7, "scored": 7, "unscored": 0, "gaps": 0}

    def test_missed_episode(self):
        timeline = [
            _det(0, HIT, CLEAN),
            _det(1, HIT, CLEAN),
            _det(2, CLEAN, CLEAN),
        ]
        report = _fold(ResilienceScoreboard(), timeline).report()
        assert report["episodes"]["missed"] == 1
        assert report["episodes"]["detected"] == 0
        assert report["mttd"]["mean_slots"] is None
        assert report["families"]["unattributed"]["missed"] == 1

    def test_repair_counts_as_detection(self):
        # No flag ever intersects the truth, but a repair is dispatched
        # while under attack — the operator acted, so the episode counts
        # as detected at the repair slot.
        timeline = [
            _det(0, HIT, CLEAN),
            _det(1, HIT, CLEAN, repaired=True),
            _det(2, CLEAN, CLEAN),
        ]
        report = _fold(ResilienceScoreboard(), timeline).report()
        assert report["episodes"]["detected"] == 1
        assert report["mttd"]["samples"] == [1]
        assert report["mttr"]["samples"] == [1]

    def test_open_episode_at_end_of_stream(self):
        timeline = [_det(0, CLEAN, CLEAN), _det(1, HIT, HIT)]
        report = _fold(ResilienceScoreboard(), timeline).report()
        assert report["episodes"] == {
            "total": 1, "detected": 1, "missed": 0, "resolved": 0, "open": 1,
        }
        # Detected but never resolved: a TTD sample, no TTR sample.
        assert report["mttd"]["samples"] == [0]
        assert report["mttr"]["samples"] == []

    def test_gap_slots_count_against_availability(self):
        timeline = [
            _det(0, HIT, CLEAN),
            _det(1, None, None, gap=True),
            _det(2, None, None, gap=True),
            _det(3, HIT, HIT),
            _det(4, CLEAN, CLEAN),
        ]
        report = _fold(ResilienceScoreboard(), timeline).report()
        assert report["availability"] == {
            "attacked_slots": 4,
            "observed_slots": 2,
            "gap_slots": 2,
            "fraction": 0.5,
        }
        # MTTD still measures wall-clock slots, gaps included.
        assert report["mttd"]["samples"] == [3]

    def test_gap_outside_episode_is_not_attacked(self):
        timeline = [_det(0, CLEAN, CLEAN), _det(1, None, None, gap=True)]
        report = _fold(ResilienceScoreboard(), timeline).report()
        assert report["availability"]["attacked_slots"] == 0
        assert report["availability"]["fraction"] is None
        assert report["slots"]["gaps"] == 1

    def test_false_alarms_flags_and_repairs(self):
        timeline = [
            _det(0, CLEAN, CLEAN),
            _det(1, CLEAN, HIT),                    # spurious flag
            _det(2, CLEAN, CLEAN, repaired=True),   # spurious repair
            _det(3, CLEAN, CLEAN),
        ]
        report = _fold(ResilienceScoreboard(), timeline).report()
        assert report["false_alarms"] == {
            "clean_slots": 4, "alarm_slots": 2, "rate": 0.5,
        }

    def test_unscored_slots_hold_the_episode_open(self):
        # Externally pushed readings carry no truth: they cannot close
        # an episode, but they are observed slots while one is open.
        timeline = [
            _det(0, HIT, CLEAN),
            _det(1, None, CLEAN),
            _det(2, HIT, HIT),
            _det(3, CLEAN, CLEAN),
        ]
        report = _fold(ResilienceScoreboard(), timeline).report()
        assert report["episodes"]["total"] == 1
        assert report["slots"]["unscored"] == 1
        assert report["availability"]["attacked_slots"] == 3
        assert report["mttd"]["samples"] == [2]

    def test_confusion_counts_are_per_meter(self):
        timeline = [_det(0, [1, 0], [0, 1])]
        report = _fold(ResilienceScoreboard(), timeline).report()
        assert report["confusion"] == {"tp": 0, "fp": 1, "fn": 1, "tn": 0}


class TestFamilyAttribution:
    def test_latest_mark_at_or_before_onset_wins(self):
        board = ResilienceScoreboard()
        board.record_occurrence({"slot": 0, "kind": "ramp"})
        board.record_occurrence({"slot": 5, "kind": "peak_increase"})
        _fold(board, [
            _det(2, HIT, CLEAN),   # onset @2: ramp announced @0
            _det(3, CLEAN, CLEAN),
            _det(6, HIT, HIT),     # onset @6: peak_increase @5 shadows ramp
            _det(7, CLEAN, CLEAN),
        ])
        families = board.report()["families"]
        assert families["ramp"] == {
            "occurrences": 1, "episodes": 1, "detected": 0, "missed": 1,
        }
        assert families["peak_increase"] == {
            "occurrences": 1, "episodes": 1, "detected": 1, "missed": 0,
        }

    def test_unannounced_episode_falls_back_to_default(self):
        board = ResilienceScoreboard(default_family="window")
        _fold(board, [_det(0, HIT, HIT), _det(1, CLEAN, CLEAN)])
        assert set(board.report()["families"]) == {"window"}


TIMELINE = [
    _det(0, CLEAN, CLEAN),
    _det(1, HIT, CLEAN),
    _det(2, None, None, gap=True),
    _det(3, HIT, HIT),
    _det(4, CLEAN, HIT),
    _det(5, HIT, CLEAN, repaired=True),
]
OCCURRENCES = [{"slot": 1, "kind": "spoof"}]


class TestStateAndRebuild:
    def test_state_dict_round_trip(self):
        board = ResilienceScoreboard()
        for occ in OCCURRENCES:
            board.record_occurrence(occ)
        _fold(board, TIMELINE)  # ends mid-episode (open state serialized)
        clone = ResilienceScoreboard()
        clone.load_state(board.state_dict())
        assert clone.report() == board.report()
        assert clone.state_dict() == board.state_dict()

    def test_resumed_fold_equals_uninterrupted(self):
        full = ResilienceScoreboard()
        for occ in OCCURRENCES:
            full.record_occurrence(occ)
        _fold(full, TIMELINE)

        cut = ResilienceScoreboard()
        for occ in OCCURRENCES:
            cut.record_occurrence(occ)
        _fold(cut, TIMELINE[:3])
        resumed = ResilienceScoreboard()
        resumed.load_state(cut.state_dict())
        _fold(resumed, TIMELINE[3:])
        assert resumed.report() == full.report()

    def test_rebuild_equals_online_fold(self):
        online = ResilienceScoreboard()
        for occ in OCCURRENCES:
            online.record_occurrence(occ)
        _fold(online, TIMELINE)

        rebuilt = ResilienceScoreboard()
        rebuilt.rebuild(TIMELINE, OCCURRENCES)
        assert rebuilt.report() == online.report()
        # rebuild() resets: calling it twice is idempotent.
        rebuilt.rebuild(TIMELINE, OCCURRENCES)
        assert rebuilt.report() == online.report()


class TestMerge:
    def test_merge_equals_fold_over_concatenation(self):
        # Two self-contained segments (each ends clean) on disjoint
        # slot ranges: merging the two reports must equal one board
        # folded over the concatenation, to the last bit.
        seg_a = [_det(s, HIT if s in (1, 2) else CLEAN, HIT if s == 2 else CLEAN)
                 for s in range(4)]
        seg_b = [_det(s, HIT if s == 11 else CLEAN, CLEAN)
                 for s in range(10, 14)]
        merged = merge_reports([
            _fold(ResilienceScoreboard(), seg_a).report(),
            _fold(ResilienceScoreboard(), seg_b).report(),
        ])
        assert merged == _fold(ResilienceScoreboard(), seg_a + seg_b).report()

    def test_merge_recomputes_means_from_sums(self):
        a = _fold(ResilienceScoreboard(), [
            _det(0, HIT, HIT), _det(1, CLEAN, CLEAN),
        ]).report()
        b = _fold(ResilienceScoreboard(), [
            _det(0, HIT, CLEAN), _det(1, HIT, CLEAN), _det(2, HIT, HIT),
            _det(3, CLEAN, CLEAN),
        ]).report()
        merged = merge_reports([a, b])
        # (0 + 2) slots over 2 detected episodes — not mean-of-means 1.0
        # by luck: check the sums directly.
        assert merged["mttd"]["total_slots"] == 2
        assert merged["mttd"]["episodes"] == 2
        assert merged["mttd"]["mean_slots"] == 1.0  # repro: noqa[FLT001] 2/2 from int sums is exact
        assert merged["mttd"]["samples"] == [0, 2]

    def test_merge_of_nothing_is_empty(self):
        merged = merge_reports([])
        assert merged["slots"]["total"] == 0
        assert merged["mttd"]["mean_slots"] is None
        assert merged["availability"]["fraction"] is None

    def test_merge_rejects_foreign_payloads(self):
        with pytest.raises(ValueError, match="not a scoreboard"):
            merge_reports([{"format": "something-else"}])
        with pytest.raises(ValueError, match="version"):
            merge_reports([{"format": "repro-scoreboard", "version": 99}])


class TestArraysPath:
    def test_batch_arrays_equal_slotwise_fold(self):
        rng = np.random.default_rng(3)
        truth = rng.random((30, 3)) < 0.3
        flags = rng.random((30, 3)) < 0.4
        repairs = rng.random(30) < 0.2
        board = scoreboard_from_arrays(
            truth=truth, flags=flags, repairs=repairs, family="ramp"
        )
        manual = ResilienceScoreboard(default_family="ramp")
        for slot in range(30):
            manual.fold_slot(
                slot, flags=flags[slot], truth=truth[slot],
                repaired=bool(repairs[slot]),
            )
        assert board.report() == manual.report()
        assert board.report()["slots"]["total"] == 30

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError, match="misaligned"):
            scoreboard_from_arrays(
                truth=np.zeros((4, 2), dtype=bool),
                flags=np.zeros((3, 2), dtype=bool),
                repairs=np.zeros(4, dtype=bool),
            )


@pytest.fixture(scope="module")
def tiny_config() -> CommunityConfig:
    return CommunityConfig(
        n_customers=8,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5,
            max_discharge_kw=0.5,
        ),
        solar=SolarConfig(peak_kw=0.7),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4, hack_probability=0.15),
        seed=11,
    )


class TestPureObserver:
    def test_scoreboard_on_equals_scoreboard_off_bitwise(self, tiny_config):
        cache = GameSolutionCache()
        plain = build_synthetic_engine(
            tiny_config, n_days=3, attack_days=(1, 2), cache=cache
        )
        plain.run()
        observed = build_synthetic_engine(
            tiny_config, n_days=3, attack_days=(1, 2), cache=cache
        )
        board = attach_scoreboard(observed.pipeline)
        observed.run()
        assert [d.to_dict() for d in observed.timeline] == [
            d.to_dict() for d in plain.timeline
        ]
        report = board.report()
        assert report["slots"]["total"] == len(observed.timeline)
        assert report["episodes"]["total"] >= 1

    def test_live_fold_equals_attach_after_the_fact(self, tiny_config):
        cache = GameSolutionCache()
        live = build_synthetic_engine(
            tiny_config, n_days=2, attack_days=(0, 1), cache=cache
        )
        live_board = attach_scoreboard(live.pipeline)
        live.run()

        after = build_synthetic_engine(
            tiny_config, n_days=2, attack_days=(0, 1), cache=cache
        )
        after.run()
        after_board = attach_scoreboard(after.pipeline)
        assert after_board.report() == live_board.report()

    def test_attach_is_idempotent(self, tiny_config):
        engine = build_synthetic_engine(
            tiny_config, n_days=1, attack_days=(0, 1),
            cache=GameSolutionCache(),
        )
        board = attach_scoreboard(engine.pipeline)
        assert attach_scoreboard(engine.pipeline) is board


class TestPublisher:
    def test_gauges_and_cursored_samples(self):
        registry = PerfRegistry()
        publisher = ScoreboardPublisher(registry, prefix="test.scoreboard")
        board = _fold(ResilienceScoreboard(), [
            _det(0, HIT, CLEAN), _det(1, HIT, HIT), _det(2, CLEAN, CLEAN),
        ])
        report = board.report()
        publisher.publish(report, {"c0": report})
        gauges = registry.gauges()
        assert gauges["test.scoreboard.episodes"] == 1.0  # repro: noqa[FLT001] gauge set from an int
        assert gauges["test.scoreboard.availability"] == 1.0  # repro: noqa[FLT001] 1/1 fraction is exact
        assert registry.histogram("test.scoreboard.mttd_slots").count == 1

        # Re-publishing the same report observes nothing new.
        publisher.publish(report, {"c0": report})
        assert registry.histogram("test.scoreboard.mttd_slots").count == 1

        # A new episode's sample is observed exactly once.
        _fold(board, [_det(3, HIT, HIT), _det(4, CLEAN, CLEAN)])
        grown = board.report()
        publisher.publish(grown, {"c0": grown})
        assert registry.histogram("test.scoreboard.mttd_slots").count == 2
