"""Tests for the aware and unaware guideline-price predictors."""

import numpy as np
import pytest

from repro.core.config import PricingConfig, SolarConfig
from repro.data.pricing import generate_history
from repro.metrics.errors import rmse
from repro.prediction.price import AwarePricePredictor, UnawarePricePredictor


@pytest.fixture
def history(rng):
    return generate_history(
        rng,
        n_customers=80,
        pricing=PricingConfig(),
        solar=SolarConfig(peak_kw=0.7),
        n_days_pre_nm=8,
        n_days_nm=10,
        mean_pv_per_customer_kw=0.4,
    )


class TestLifecycle:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            UnawarePricePredictor().predict_day()

    def test_fit_returns_self(self, history):
        predictor = UnawarePricePredictor()
        assert predictor.fit(history) is predictor
        assert predictor.is_fitted

    def test_aware_requires_forecasts(self, history):
        predictor = AwarePricePredictor().fit(history)
        with pytest.raises(ValueError, match="requires"):
            predictor.predict_day()


class TestPredictionQuality:
    def test_outputs_nonnegative_prices(self, history):
        predictor = UnawarePricePredictor().fit(history)
        prices = predictor.predict_day()
        assert prices.shape == (history.slots_per_day,)
        assert np.all(prices >= 0.0)

    def test_unaware_tracks_daily_shape(self, history):
        """Price-lag SVR reproduces the broad daily pattern: evening slots
        cost more than pre-dawn slots."""
        prices = UnawarePricePredictor().fit(history).predict_day()
        assert prices[18:21].mean() > prices[2:5].mean()

    def test_aware_beats_unaware_on_sunny_day(self, history, rng):
        """The paper's core prediction claim: with the target day's
        renewables known, the aware model tracks the midday gap that the
        price-lag model misses."""
        from repro.data.pricing import GuidelinePriceModel, baseline_demand_profile
        from repro.core.config import TimeGrid

        spd = history.slots_per_day
        grid = TimeGrid(slots_per_day=spd, n_days=1)
        demand = baseline_demand_profile(grid) * 80
        sunny = history.renewable[-spd:] * 0 + history.renewable.reshape(
            -1, spd
        ).max(axis=0)
        model = GuidelinePriceModel(config=PricingConfig(), n_customers=80)
        actual = model.price(demand, sunny)

        p_unaware = UnawarePricePredictor().fit(history).predict_day()
        p_aware = (
            AwarePricePredictor()
            .fit(history)
            .predict_day(demand_forecast=demand, renewable_forecast=sunny)
        )
        assert rmse(actual, p_aware) < rmse(actual, p_unaware)

    def test_unaware_ignores_forecasts(self, history):
        """Forecast arguments are accepted for interface parity but do not
        change the unaware prediction."""
        predictor = UnawarePricePredictor().fit(history)
        spd = history.slots_per_day
        a = predictor.predict_day()
        b = predictor.predict_day(
            demand_forecast=np.ones(spd), renewable_forecast=np.ones(spd)
        )
        np.testing.assert_array_equal(a, b)
