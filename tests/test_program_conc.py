"""CONC fixture tests: lock discipline (CONC001) and ParallelMap task
closures (CONC002), including the interprocedural cases the per-file
rules cannot see."""

import textwrap

from repro.analysis.engine import LintConfig
from repro.analysis.program import ProgramAnalyzer, SymbolTable


def check(sources, *, select=None):
    config = LintConfig()
    if select is not None:
        config.select = frozenset({select})
    table = SymbolTable()
    for display, src in sources.items():
        module = (
            display.removeprefix("src/").removesuffix(".py").replace("/", ".")
        )
        table.add_source(textwrap.dedent(src), module=module, display=display)
    return ProgramAnalyzer(config=config).check_table(table)


def rules_hit(violations):
    return {v.rule for v in violations}


COUNTER_HEADER = """\
    import threading

    class Counter:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self.total = 0
"""


class TestCONC001LockDiscipline:
    def test_unlocked_read_of_stored_attr_flagged(self):
        violations = check(
            {
                "src/repro/fake_counter.py": COUNTER_HEADER
                + """\

        def add(self, n: int) -> None:
            with self._lock:
                self.total = self.total + n

        def peek(self) -> int:
            return self.total
    """
            },
            select="CONC001",
        )
        assert [v.rule for v in violations] == ["CONC001"]
        assert "Counter.peek" in violations[0].message
        assert "'total'" in violations[0].message

    def test_unlocked_write_flagged(self):
        violations = check(
            {
                "src/repro/fake_counter.py": COUNTER_HEADER
                + """\

        def add(self, n: int) -> None:
            with self._lock:
                self.total = self.total + n

        def reset(self) -> None:
            self.total = 0
    """
            },
            select="CONC001",
        )
        assert rules_hit(violations) == {"CONC001"}
        assert "write to" in violations[0].message

    def test_locked_access_everywhere_is_clean(self):
        violations = check(
            {
                "src/repro/fake_counter.py": COUNTER_HEADER
                + """\

        def add(self, n: int) -> None:
            with self._lock:
                self.total = self.total + n

        def peek(self) -> int:
            with self._lock:
                return self.total
    """
            },
            select="CONC001",
        )
        assert violations == []

    def test_interprocedural_helper_reached_without_lock(self):
        """The violation lives in a private helper that only a public
        method reaches — invisible to any per-file, per-method rule."""
        violations = check(
            {
                "src/repro/fake_counter.py": COUNTER_HEADER
                + """\

        def add(self, n: int) -> None:
            with self._lock:
                self.total = self.total + n

        def snapshot(self) -> int:
            return self._unsafe_read()

        def _unsafe_read(self) -> int:
            return self.total
    """
            },
            select="CONC001",
        )
        assert [v.rule for v in violations] == ["CONC001"]
        assert "Counter._unsafe_read" in violations[0].message
        assert "via Counter.snapshot" in violations[0].message

    def test_helper_called_only_under_lock_is_clean(self):
        violations = check(
            {
                "src/repro/fake_counter.py": COUNTER_HEADER
                + """\

        def add(self, n: int) -> None:
            with self._lock:
                self.total = self.total + n

        def status(self) -> int:
            with self._lock:
                return self._fmt()

        def _fmt(self) -> int:
            return self.total
    """
            },
            select="CONC001",
        )
        assert violations == []

    def test_interior_use_outside_lock_flagged_plain_ref_not(self):
        violations = check(
            {
                "src/repro/fake_wrap.py": """\
    import threading

    class Wrapper:
        def __init__(self, engine) -> None:
            self._lock = threading.Lock()
            self.engine = engine

        def advance(self) -> None:
            with self._lock:
                self.engine.advance()

        def racy_status(self) -> int:
            return self.engine.events_processed

        def handle(self):
            return self.engine
    """
            },
            select="CONC001",
        )
        assert [v.rule for v in violations] == ["CONC001"]
        assert "racy_status" in violations[0].message

    def test_thread_local_attr_excluded(self):
        violations = check(
            {
                "src/repro/fake_tls.py": """\
    import threading

    class Tracer:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self._local = threading.local()
            self.spans = []

        def record(self, span) -> None:
            with self._lock:
                self.spans.append(span)
                self._local.depth = 1

        def depth(self) -> int:
            return getattr(self._local, "depth", 0)
    """
            },
            select="CONC001",
        )
        assert violations == []

    def test_noqa_suppresses_benign_racy_read(self):
        violations = check(
            {
                "src/repro/fake_counter.py": COUNTER_HEADER
                + """\

        def add(self, n: int) -> None:
            with self._lock:
                self.total = self.total + n

        def peek(self) -> int:
            return self.total  # repro: noqa[CONC001] monotonic gauge, staleness is fine
    """
            },
            select="CONC001",
        )
        assert violations == []


class TestCONC002ParallelMapCapture:
    def test_mutable_local_capture_flagged(self):
        violations = check(
            {
                "src/repro/fake_par.py": """\
    from repro.perf.parallel import ParallelMap

    def collect(items: list[int]) -> list[int]:
        acc = []
        pm = ParallelMap(max_workers=2)
        return pm.map(lambda x: acc.append(x), items)
    """
            },
            select="CONC002",
        )
        assert [v.rule for v in violations] == ["CONC002"]
        assert "'acc'" in violations[0].message

    def test_self_capture_flagged(self):
        violations = check(
            {
                "src/repro/fake_par.py": """\
    from repro.perf.parallel import ParallelMap

    class Runner:
        def __init__(self) -> None:
            self.scale = 2.0
            self.pool = ParallelMap(max_workers=2)

        def run(self, items: list[float]) -> list[float]:
            return self.pool.map(lambda x: x * self.scale, items)
    """
            },
            select="CONC002",
        )
        assert [v.rule for v in violations] == ["CONC002"]
        assert "'self'" in violations[0].message

    def test_nested_def_capture_flagged(self):
        violations = check(
            {
                "src/repro/fake_par.py": """\
    from repro.perf.parallel import ParallelMap

    def collect(items: list[int]) -> list[int]:
        seen = {}
        pm = ParallelMap(max_workers=2)

        def task(x: int) -> int:
            seen[x] = True
            return x

        return pm.map(task, items)
    """
            },
            select="CONC002",
        )
        assert [v.rule for v in violations] == ["CONC002"]
        assert "'seen'" in violations[0].message

    def test_self_contained_task_clean(self):
        violations = check(
            {
                "src/repro/fake_par.py": """\
    from repro.perf.parallel import ParallelMap

    def double(x: int) -> int:
        return x * 2

    def collect(items: list[int], scale: int) -> list[int]:
        pm = ParallelMap(max_workers=2)
        pm.map(double, items)
        return pm.map(lambda x: x * scale, items)
    """
            },
            select="CONC002",
        )
        assert violations == []

    def test_unrelated_map_receiver_ignored(self):
        violations = check(
            {
                "src/repro/fake_par.py": """\
    class Atlas:
        def map(self, task, items):
            return [task(i) for i in items]

    def collect(items: list[int]) -> list[int]:
        acc = []
        atlas = Atlas()
        return atlas.map(lambda x: acc.append(x), items)
    """
            },
            select="CONC002",
        )
        assert violations == []
