"""Tests for the community response simulator and single-event detector."""

import numpy as np
import pytest

from repro.attacks.pricing import ZeroPriceAttack
from repro.core.config import GameConfig
from repro.detection.single_event import (
    CommunityResponseSimulator,
    SingleEventDetection,
    SingleEventDetector,
)
from repro.scheduling.game import Community
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=3,
    inner_iterations=1,
    ce_samples=12,
    ce_elites=3,
    ce_iterations=3,
    convergence_tol=0.05,
)


@pytest.fixture
def community() -> Community:
    return Community(
        customers=(make_customer(0), make_customer(1)), counts=(6, 6)
    )


@pytest.fixture
def simulator(community) -> CommunityResponseSimulator:
    return CommunityResponseSimulator(community, config=FAST, seed=1)


def prices(value: float = 0.03) -> np.ndarray:
    return np.full(HORIZON, value)


class TestCommunityResponseSimulator:
    def test_caching(self, simulator):
        assert simulator.cache_size == 0
        first = simulator.response(prices())
        assert simulator.cache_size == 1
        second = simulator.response(prices())
        assert second is first  # cache hit returns the same object
        simulator.response(prices(0.05))
        assert simulator.cache_size == 2

    def test_shape_validation(self, simulator):
        with pytest.raises(ValueError, match="prices"):
            simulator.response(np.ones(5))

    def test_grid_par_positive(self, simulator):
        assert simulator.grid_par(prices()) >= 1.0

    def test_negative_prices_clamped(self, simulator):
        """Attack-zeroed (or SVR-undershot) prices never break the game."""
        p = prices()
        p[5] = 0.0
        result = simulator.response(p)
        assert np.all(np.isfinite(result.grid_demand))

    def test_deterministic(self, community):
        a = CommunityResponseSimulator(community, config=FAST, seed=1)
        b = CommunityResponseSimulator(community, config=FAST, seed=1)
        np.testing.assert_array_equal(
            a.response(prices()).grid_demand, b.response(prices()).grid_demand
        )


class TestSingleEventDetection:
    def test_margin_and_flag(self):
        detection = SingleEventDetection(
            received_par=1.6, predicted_par=1.4, threshold=0.1
        )
        assert detection.margin == pytest.approx(0.2)
        assert detection.flagged

    def test_noise_enters_margin(self):
        detection = SingleEventDetection(
            received_par=1.45, predicted_par=1.4, threshold=0.1, noise=0.08
        )
        assert detection.margin == pytest.approx(0.13)
        assert detection.flagged


class TestSingleEventDetector:
    def test_benign_not_flagged(self, simulator):
        detector = SingleEventDetector(
            simulator, prices(), threshold=0.1, margin_noise_std=0.0
        )
        assert not detector.check(prices()).flagged
        assert detector.check(prices()).margin == pytest.approx(0.0)

    def test_zero_price_attack_flagged(self, simulator):
        detector = SingleEventDetector(
            simulator, prices(), threshold=0.1, margin_noise_std=0.0
        )
        attacked = ZeroPriceAttack(18, 19).apply(prices())
        detection = detector.check(attacked)
        assert detection.margin > 0.0

    def test_predicted_simulator_offset(self, community, simulator):
        """A biased predicted-side model shifts every margin by a constant."""
        biased = CommunityResponseSimulator(
            community.without_net_metering(), config=FAST, seed=1
        )
        plain = SingleEventDetector(
            simulator, prices(), threshold=0.1, margin_noise_std=0.0
        )
        offset = SingleEventDetector(
            simulator,
            prices(),
            predicted_simulator=biased,
            threshold=0.1,
            margin_noise_std=0.0,
        )
        shift = plain.predicted_par - offset.predicted_par
        a = plain.check(prices()).margin
        b = offset.check(prices()).margin
        assert b - a == pytest.approx(shift)

    def test_observe_meters_shapes(self, simulator, rng):
        detector = SingleEventDetector(simulator, prices(), threshold=0.1)
        received = np.tile(prices(), (4, 1))
        received[2] = ZeroPriceAttack(18, 21).apply(prices())
        flags = detector.observe_meters(received, rng=rng)
        assert flags.shape == (4,)

    def test_observe_meters_validation(self, simulator):
        detector = SingleEventDetector(simulator, prices(), threshold=0.1)
        with pytest.raises(ValueError, match="received_per_meter"):
            detector.observe_meters(np.ones((2, 5)))

    def test_noise_makes_checks_vary(self, simulator):
        detector = SingleEventDetector(
            simulator, prices(), threshold=0.1, margin_noise_std=0.5
        )
        rng = np.random.default_rng(0)
        margins = {round(detector.check(prices(), rng=rng).margin, 6) for _ in range(8)}
        assert len(margins) > 1

    def test_threshold_validation(self, simulator):
        with pytest.raises(ValueError):
            SingleEventDetector(simulator, prices(), threshold=-0.1)
        with pytest.raises(ValueError):
            SingleEventDetector(simulator, prices(), margin_noise_std=-1.0)
