"""Tests for the pricing attack models."""

import numpy as np
import pytest

from repro.attacks.pricing import (
    BillIncreaseAttack,
    PeakIncreaseAttack,
    ScalingAttack,
    ZeroPriceAttack,
)

PRICES = np.linspace(0.02, 0.05, 24)


class TestZeroPriceAttack:
    def test_paper_fig5_window(self):
        """The Figure 5 attack zeroes 16:00-17:00."""
        attack = ZeroPriceAttack(start_slot=16, end_slot=17)
        out = attack.apply(PRICES)
        assert out[16] == pytest.approx(0.0)
        assert out[17] == pytest.approx(0.0)
        np.testing.assert_array_equal(out[:16], PRICES[:16])
        np.testing.assert_array_equal(out[18:], PRICES[18:])

    def test_input_not_modified(self):
        original = PRICES.copy()
        ZeroPriceAttack(0, 5).apply(PRICES)
        np.testing.assert_array_equal(PRICES, original)

    def test_window_validation(self):
        with pytest.raises(ValueError, match="end_slot"):
            ZeroPriceAttack(5, 4)
        with pytest.raises(ValueError, match="start_slot"):
            ZeroPriceAttack(-1, 4)

    def test_window_outside_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            ZeroPriceAttack(20, 30).apply(PRICES)

    def test_rejects_bad_prices(self):
        with pytest.raises(ValueError):
            ZeroPriceAttack(0, 1).apply(np.array([0.1, -0.2]))
        with pytest.raises(ValueError):
            ZeroPriceAttack(0, 1).apply(np.array([np.nan, 0.2]))


class TestScalingAttack:
    def test_scales_window(self):
        attack = ScalingAttack(start_slot=2, end_slot=3, factor=0.5)
        out = attack.apply(PRICES)
        assert out[2] == pytest.approx(PRICES[2] * 0.5)
        assert out[4] == PRICES[4]

    def test_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            ScalingAttack(0, 1, factor=-0.1)


class TestPeakIncreaseAttack:
    def test_strength_one_equals_zeroing(self):
        a = PeakIncreaseAttack(10, 12, strength=1.0).apply(PRICES)
        b = ZeroPriceAttack(10, 12).apply(PRICES)
        np.testing.assert_array_equal(a, b)

    def test_strength_zero_is_identity(self):
        out = PeakIncreaseAttack(10, 12, strength=0.0).apply(PRICES)
        np.testing.assert_array_equal(out, PRICES)

    def test_intermediate_strength(self):
        out = PeakIncreaseAttack(10, 10, strength=0.4).apply(PRICES)
        assert out[10] == pytest.approx(PRICES[10] * 0.6)

    def test_strength_validation(self):
        with pytest.raises(ValueError, match="strength"):
            PeakIncreaseAttack(0, 1, strength=1.5)

    def test_window_mask(self):
        mask = PeakIncreaseAttack(3, 5).window_mask(10)
        assert mask.sum() == 3
        assert mask[3] and mask[5] and not mask[6]


class TestBillIncreaseAttack:
    def test_inflates_outside_window(self):
        attack = BillIncreaseAttack(start_slot=10, end_slot=12, inflation=2.0)
        out = attack.apply(PRICES)
        np.testing.assert_array_equal(out[10:13], PRICES[10:13])
        np.testing.assert_allclose(out[:10], PRICES[:10] * 2.0)
        np.testing.assert_allclose(out[13:], PRICES[13:] * 2.0)

    def test_rejects_deflation(self):
        with pytest.raises(ValueError, match="inflation"):
            BillIncreaseAttack(0, 1, inflation=0.5)
