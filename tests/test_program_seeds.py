"""SEED fixture tests: seed provenance (SEED001), boundary crossing
(SEED002, including the helper-return interprocedural case), and
loop-invariant construction (SEED003)."""

import textwrap

from repro.analysis.engine import LintConfig
from repro.analysis.program import ProgramAnalyzer, SymbolTable
from repro.analysis.program.seeds import build_rng_summaries
from repro.analysis.program.callgraph import CallGraph


def build_table(sources):
    table = SymbolTable()
    for display, src in sources.items():
        module = (
            display.removeprefix("src/").removesuffix(".py").replace("/", ".")
        )
        table.add_source(textwrap.dedent(src), module=module, display=display)
    return table


def check(sources, *, select=None):
    config = LintConfig()
    if select is not None:
        config.select = frozenset({select})
    return ProgramAnalyzer(config=config).check_table(build_table(sources))


class TestSEED001UnseededRng:
    def test_bare_default_rng_flagged(self):
        violations = check(
            {
                "src/repro/fake_rng.py": """\
    import numpy as np

    def sample() -> float:
        rng = np.random.default_rng()
        return float(rng.random())
    """
            },
            select="SEED001",
        )
        assert [v.rule for v in violations] == ["SEED001"]
        assert "default_rng()" in violations[0].message

    def test_unseeded_fallback_in_default_expr_flagged(self):
        violations = check(
            {
                "src/repro/fake_rng.py": """\
    import numpy as np

    def sample(rng=None) -> float:
        rng = rng if rng is not None else np.random.default_rng()
        return float(rng.random())
    """
            },
            select="SEED001",
        )
        assert [v.rule for v in violations] == ["SEED001"]

    def test_unseeded_seed_sequence_and_stdlib_random_flagged(self):
        violations = check(
            {
                "src/repro/fake_rng.py": """\
    import random

    import numpy as np

    SEQ = np.random.SeedSequence()
    RNG = random.Random()
    """
            },
            select="SEED001",
        )
        assert sorted(v.message.split("(")[0] for v in violations) == [
            "Random",
            "SeedSequence",
        ]

    def test_seeded_constructions_clean(self):
        violations = check(
            {
                "src/repro/fake_rng.py": """\
    import numpy as np

    def sample(seed: int) -> float:
        rng = np.random.default_rng(seed)
        child = np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0])
        return float(rng.random() + child.random())
    """
            },
            select="SEED001",
        )
        assert violations == []


class TestSEED002RngBoundary:
    def test_rng_in_parallel_map_items_flagged(self):
        violations = check(
            {
                "src/repro/fake_bound.py": """\
    import numpy as np

    from repro.perf.parallel import ParallelMap

    def work(rng) -> float:
        return float(rng.random())

    def run(seed: int) -> list[float]:
        rng = np.random.default_rng(seed)
        pm = ParallelMap(max_workers=2)
        return pm.map(work, [rng, rng])
    """
            },
            select="SEED002",
        )
        assert [v.rule for v in violations] == ["SEED002"]
        assert "items iterable" in violations[0].message

    def test_rng_captured_by_task_flagged(self):
        violations = check(
            {
                "src/repro/fake_bound.py": """\
    import numpy as np

    from repro.perf.parallel import ParallelMap

    def run(seed: int, items: list[int]) -> list[float]:
        rng = np.random.default_rng(seed)
        pm = ParallelMap(max_workers=2)
        return pm.map(lambda x: float(rng.random()) * x, items)
    """
            },
            select="SEED002",
        )
        assert [v.rule for v in violations] == ["SEED002"]
        assert "'rng'" in violations[0].message

    def test_interprocedural_helper_returning_rngs_flagged(self):
        """The RNG never appears at the call site — it flows out of a
        helper method, visible only through the returns_rng summary."""
        violations = check(
            {
                "src/repro/fake_bound.py": """\
    import numpy as np

    from repro.perf.parallel import ParallelMap

    def work(rng) -> float:
        return float(rng.random())

    class Sweep:
        def _rngs(self, n: int):
            return [np.random.default_rng(i) for i in range(n)]

        def run(self, pm: ParallelMap, n: int) -> list[float]:
            return pm.map(work, self._rngs(n))
    """
            },
            select="SEED002",
        )
        assert [v.rule for v in violations] == ["SEED002"]
        assert "_rngs()" in violations[0].message

    def test_rng_handed_to_thread_flagged(self):
        violations = check(
            {
                "src/repro/fake_bound.py": """\
    import threading

    import numpy as np

    def work(rng) -> None:
        rng.random()

    def run(seed: int) -> None:
        rng = np.random.default_rng(seed)
        thread = threading.Thread(target=work, args=(rng,))
        thread.start()
    """
            },
            select="SEED002",
        )
        assert [v.rule for v in violations] == ["SEED002"]
        assert "Thread" in violations[0].message

    def test_seed_children_crossing_is_clean(self):
        violations = check(
            {
                "src/repro/fake_bound.py": """\
    import numpy as np

    from repro.perf.parallel import ParallelMap

    def work(child) -> float:
        rng = np.random.default_rng(child)
        return float(rng.random())

    def run(seed: int, n: int) -> list[float]:
        children = np.random.SeedSequence(seed).spawn(n)
        pm = ParallelMap(max_workers=2)
        return pm.map(work, children)
    """
            },
            select="SEED002",
        )
        assert violations == []

    def test_returns_rng_summary_fixpoint(self):
        table = build_table(
            {
                "src/repro/fake_chain.py": """\
    import numpy as np

    def make(seed: int):
        return np.random.default_rng(seed)

    def relay(seed: int):
        return make(seed)

    def plain(seed: int) -> int:
        return seed + 1
    """
            }
        )
        summaries = build_rng_summaries(table, CallGraph.build(table))
        assert summaries["repro.fake_chain.make"] is True
        assert summaries["repro.fake_chain.relay"] is True
        assert summaries["repro.fake_chain.plain"] is False


class TestSEED003LoopInvariantSeed:
    def test_loop_invariant_seed_flagged(self):
        violations = check(
            {
                "src/repro/fake_loop.py": """\
    import numpy as np

    def replay(n: int, seed: int) -> list:
        out = []
        for _ in range(n):
            out.append(np.random.default_rng(seed))
        return out
    """
            },
            select="SEED003",
        )
        assert [v.rule for v in violations] == ["SEED003"]
        assert "loop-invariant" in violations[0].message

    def test_comprehension_invariant_seed_flagged(self):
        violations = check(
            {
                "src/repro/fake_loop.py": """\
    import numpy as np

    def replay(n: int, seed: int) -> list:
        return [np.random.default_rng(seed) for _ in range(n)]
    """
            },
            select="SEED003",
        )
        assert [v.rule for v in violations] == ["SEED003"]

    def test_iteration_derived_seed_clean(self):
        violations = check(
            {
                "src/repro/fake_loop.py": """\
    import numpy as np

    def streams(n: int, seed: int) -> list:
        per_iter = [np.random.default_rng(seed + i) for i in range(n)]
        from_children = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(seed).spawn(n)
        ]
        return per_iter + from_children
    """
            },
            select="SEED003",
        )
        assert violations == []

    def test_derived_local_counts_as_varying(self):
        violations = check(
            {
                "src/repro/fake_loop.py": """\
    import numpy as np

    def streams(n: int, seed: int) -> list:
        out = []
        for i in range(n):
            mixed = seed + i * 7919
            out.append(np.random.default_rng(mixed))
        return out
    """
            },
            select="SEED003",
        )
        assert violations == []

    def test_construction_outside_loop_clean(self):
        violations = check(
            {
                "src/repro/fake_loop.py": """\
    import numpy as np

    def run(seed: int, n: int) -> float:
        rng = np.random.default_rng(seed)
        total = 0.0
        for _ in range(n):
            total += float(rng.random())
        return total
    """
            },
            select="SEED003",
        )
        assert violations == []
