"""Tests for the POMDP-driven long-term monitoring loop."""

import numpy as np
import pytest

from repro.detection.long_term import LongTermDetector, MonitoringStep
from repro.detection.pomdp import MONITOR, REPAIR, build_detection_pomdp
from repro.detection.solvers import PbviPolicy


@pytest.fixture
def model():
    return build_detection_pomdp(
        5,
        hack_probability=0.1,
        tp_rate=0.9,
        fp_rate=0.05,
        damage_per_meter=1.5,
        repair_fixed_cost=2.0,
        repair_cost_per_meter=1.0,
        discount=0.9,
    )


class TestLongTermDetector:
    def test_initial_state(self, model):
        detector = LongTermDetector(model)
        assert detector.n_repairs == 0
        assert detector.steps == ()
        assert detector.belief[0] == pytest.approx(1.0)

    def test_quiet_observations_keep_monitoring(self, model):
        detector = LongTermDetector(model)
        for _ in range(6):
            step = detector.step(0)
        assert all(s.action == MONITOR for s in detector.steps)
        assert step.belief_mean < 0.6

    def test_loud_observations_trigger_repair(self, model):
        detector = LongTermDetector(model)
        actions = [detector.step(5).action for _ in range(4)]
        assert REPAIR in actions

    def test_belief_mean_tracks_observations(self, model):
        detector = LongTermDetector(model)
        low = detector.step(0).belief_mean
        high = detector.step(5).belief_mean
        assert high > low

    def test_observation_range_validation(self, model):
        detector = LongTermDetector(model)
        with pytest.raises(ValueError):
            detector.step(6)
        with pytest.raises(ValueError):
            detector.step(-1)

    def test_reset(self, model):
        detector = LongTermDetector(model)
        detector.step(5)
        detector.reset()
        assert detector.steps == ()
        assert detector.belief[0] == pytest.approx(1.0)

    def test_trace_slots_increment(self, model):
        detector = LongTermDetector(model)
        for i in range(5):
            step = detector.step(1)
            assert step.slot == i

    def test_repair_counter(self, model):
        detector = LongTermDetector(model)
        for _ in range(8):
            detector.step(5)
        assert detector.n_repairs == sum(s.repaired for s in detector.steps)
        assert detector.n_repairs >= 1

    def test_pbvi_policy_plugs_in(self, model):
        policy = PbviPolicy(model, n_beliefs=24, n_backups=10)
        detector = LongTermDetector(model, policy=policy)
        actions = [detector.step(5).action for _ in range(4)]
        assert REPAIR in actions

    def test_noisy_detector_is_more_hesitant(self):
        """With an uninformative observation channel the belief follows the
        hacking prior, so a burst of flags triggers repair later (or not at
        all) compared to a sharp channel."""

        def repairs_with(fp):
            model = build_detection_pomdp(
                5,
                hack_probability=0.02,
                tp_rate=0.9,
                fp_rate=fp,
                damage_per_meter=1.0,
                repair_fixed_cost=2.0,
                discount=0.9,
            )
            detector = LongTermDetector(model)
            return sum(detector.step(3).repaired for _ in range(6))

        assert repairs_with(0.55) <= repairs_with(0.05)


class TestMonitoringStep:
    def test_repaired_property(self):
        step = MonitoringStep(slot=0, observation=2, action=REPAIR, belief_mean=1.5)
        assert step.repaired
        step = MonitoringStep(slot=0, observation=2, action=MONITOR, belief_mean=1.5)
        assert not step.repaired
