"""Lockstep batched game solving vs the sequential per-game loop.

``solve_games`` advances many independent games (same community and
seed, different price vectors) in lockstep so the CE population, DP
tables and cost kernels run once per batch instead of once per game.
The contract is bitwise: entry ``g`` must equal the result of solving
game ``g`` alone through :class:`SchedulingGame`.  These tests pin that
contract for cold starts, warm starts, mixed batches and both kernel
backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GameConfig
from repro.kernels import available_backends
from repro.scheduling.batch import solve_games
from repro.scheduling.game import Community, GameResult, SchedulingGame
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=3,
    inner_iterations=1,
    ce_samples=12,
    ce_elites=3,
    ce_iterations=3,
)


@pytest.fixture(scope="module")
def community() -> Community:
    from repro.core.config import BatteryConfig

    spec = BatteryConfig(
        capacity_kwh=2.0, initial_kwh=0.5, max_charge_kw=1.0, max_discharge_kw=1.0
    )
    return Community(
        customers=(
            make_customer(0),
            make_customer(1, battery=spec, pv_peak=0.8),
        ),
        counts=(3, 2),
    )


def _prices(n: int) -> list[np.ndarray]:
    rng = np.random.default_rng(42)
    return [rng.uniform(0.01, 0.06, HORIZON) for _ in range(n)]


def _sequential(
    community: Community,
    price_vectors,
    *,
    seed: int = 0,
    warm_starts=None,
    ce_std_scale: float = 1.0,
) -> list[GameResult]:
    results = []
    for g, prices in enumerate(price_vectors):
        warm = warm_starts[g] if warm_starts is not None else None
        results.append(
            SchedulingGame(
                community, prices, sellback_divisor=2.0, config=FAST
            ).solve(
                rng=np.random.default_rng(seed),  # repro: noqa[SEED003] lockstep oracle: same stream per game on purpose
                warm_start=warm,
                ce_std_scale=ce_std_scale if warm is not None else 1.0,
            )
        )
    return results


def assert_results_equal(batched: GameResult, single: GameResult) -> None:
    assert batched.rounds == single.rounds
    assert batched.converged == single.converged
    assert batched.counts == single.counts
    assert batched.residuals == single.residuals
    for state_b, state_s in zip(batched.states, single.states):
        assert state_b.battery_decision == state_s.battery_decision
        for sched_b, sched_s in zip(state_b.schedules, state_s.schedules):
            assert sched_b.power == sched_s.power
    np.testing.assert_array_equal(
        batched.community_trading, single.community_trading
    )


class TestColdBatch:
    def test_batch_matches_sequential_loop(self, community):
        prices = _prices(4)
        batched = solve_games(community, prices, config=FAST, seed=0)
        for b, s in zip(batched, _sequential(community, prices)):
            assert_results_equal(b, s)

    def test_single_game_batch_matches_direct_solve(self, community):
        prices = _prices(1)
        [batched] = solve_games(community, prices, config=FAST, seed=5)
        [single] = _sequential(community, prices, seed=5)
        assert_results_equal(batched, single)

    def test_backend_invariant(self, community):
        prices = _prices(3)
        per_backend = [
            solve_games(community, prices, config=FAST, backend=name)
            for name in available_backends()
        ]
        for results in per_backend[1:]:
            for a, b in zip(per_backend[0], results):
                assert_results_equal(a, b)

    def test_empty_batch_rejected(self, community):
        with pytest.raises(ValueError, match="at least one price vector"):
            solve_games(community, [], config=FAST)

    def test_wrong_horizon_rejected(self, community):
        with pytest.raises(ValueError):
            solve_games(
                community, [np.full(HORIZON + 1, 0.03)], config=FAST
            )


class TestWarmBatch:
    def test_warm_batch_matches_sequential(self, community):
        base = _prices(1)[0]
        [warm_source] = solve_games(community, [base], config=FAST)
        prices = [base * 1.02, base * 0.97, base + 0.001]
        warm_starts = [warm_source] * len(prices)
        batched = solve_games(
            community, prices, config=FAST, warm_starts=warm_starts,
            ce_std_scale=0.25,
        )
        sequential = _sequential(
            community, prices, warm_starts=warm_starts, ce_std_scale=0.25
        )
        for b, s in zip(batched, sequential):
            assert_results_equal(b, s)

    def test_mixed_warm_and_cold_batch(self, community):
        base = _prices(1)[0]
        [warm_source] = solve_games(community, [base], config=FAST)
        prices = [base * 1.01, base * 0.5, base * 0.99]
        warm_starts = [warm_source, None, warm_source]
        batched = solve_games(
            community, prices, config=FAST, warm_starts=warm_starts,
            ce_std_scale=0.25,
        )
        sequential = _sequential(
            community, prices, warm_starts=warm_starts, ce_std_scale=0.25
        )
        for b, s in zip(batched, sequential):
            assert_results_equal(b, s)

    def test_warm_start_is_deterministic(self, community):
        base = _prices(1)[0]
        [warm_source] = solve_games(community, [base], config=FAST)
        runs = [
            solve_games(
                community, [base * 1.03], config=FAST,
                warm_starts=[warm_source], ce_std_scale=0.25,
            )[0]
            for _ in range(2)
        ]
        assert_results_equal(runs[0], runs[1])
