"""Reporting helpers driven by real model objects."""

import numpy as np

from repro.core.config import SolarConfig, TimeGrid
from repro.data.pricing import baseline_demand_profile
from repro.data.solar import clear_sky_profile
from repro.reporting.ascii import render_profile, sparkline
from repro.reporting.tables import ComparisonRow, comparison_table


class TestProfilesFromModels:
    def test_demand_profile_renders(self):
        demand = baseline_demand_profile(TimeGrid())
        line = render_profile(demand, label="demand")
        assert "demand" in line
        assert len(line) > 30

    def test_solar_sparkline_shows_bell(self):
        profile = clear_sky_profile(TimeGrid(), SolarConfig())
        line = sparkline(profile)
        # night is the lowest glyph, midday the highest
        assert line[0] == "▁"
        assert "█" in line[9:15]

    def test_multi_day_profile_downsampled(self):
        grid = TimeGrid(slots_per_day=24, n_days=7)
        profile = clear_sky_profile(grid, SolarConfig())
        line = render_profile(profile, width=24)
        body = line.split("[")[0].strip()
        assert len(body) <= 24


class TestPaperComparisonTable:
    def test_table_for_paper_rows(self):
        rows = [
            ComparisonRow("PAR (no detection)", 1.6509, 1.5708),
            ComparisonRow("PAR (unaware)", 1.5422, 1.2482),
            ComparisonRow("PAR (aware)", 1.4112, 1.2512),
            ComparisonRow("accuracy gap", 0.2919, 0.2104),
        ]
        table = comparison_table(rows, title="Table 1")
        lines = table.splitlines()
        assert lines[0] == "Table 1"
        assert len(lines) == 2 + 4 + 1  # title + header + rule + rows
        # deviations rendered with signs
        assert any("-" in line or "+" in line for line in lines[3:])

    def test_numbers_render_at_fixed_width(self):
        rows = [ComparisonRow("x", 1.0, 123456.7891)]
        table = comparison_table(rows)
        assert "123456.7891" in table
