"""Tests for the detection audit trail (`repro.obs.audit`)."""

import json

import pytest

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    SolarConfig,
    TimeGrid,
)
from repro.faults.plan import builtin_plan
from repro.obs.audit import AUDIT_FORMAT, AUDIT_VERSION, AuditTrail, load_audit_jsonl
from repro.simulation.cache import GameSolutionCache
from repro.stream.checkpoint import checkpoint_payload, resume_engine
from repro.stream.pipeline import build_synthetic_engine


@pytest.fixture(scope="module")
def tiny_config() -> CommunityConfig:
    return CommunityConfig(
        n_customers=8,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        solar=SolarConfig(peak_kw=0.7),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4, hack_probability=0.15),
        seed=11,
    )


def _run_engine(config, *, audit=None, faults=None, n_days=3):
    engine = build_synthetic_engine(
        config, n_days=n_days, attack_days=(1, 2), cache=GameSolutionCache()
    )
    if faults is not None:
        engine.install_faults(faults)
    engine.pipeline.audit = audit
    engine.run()
    return engine


class TestRecordSchema:
    def test_detection_records_carry_full_evidence(self, tiny_config, tmp_path):
        trail = AuditTrail(tmp_path / "audit.jsonl")
        engine = _run_engine(tiny_config, audit=trail)
        detections = [d for d in engine.timeline if not d.gap]
        records = trail.records(kind="detection")
        assert len(records) == len(detections)
        for record, det in zip(records, detections):
            assert record["format"] == AUDIT_FORMAT
            assert record["version"] == AUDIT_VERSION
            assert record["slot"] == det.slot
            assert record["day"] == det.day
            assert record["observation"] == det.observation
            assert record["flags"] == det.flags.astype(int).tolist()
            assert record["belief_after"] == pytest.approx(det.belief_mean)
            # Per-meter evidence: margin vs threshold explains each flag.
            assert len(record["meters"]) == det.flags.size
            for meter in record["meters"]:
                assert meter["flagged"] == (
                    meter["margin"] > record["threshold"]
                )
            assert len(record["clean_prices"]) == 24
            assert len(record["predicted_prices"]) == 24

    def test_belief_before_and_after_chain(self, tiny_config):
        trail = AuditTrail()
        _run_engine(tiny_config, audit=trail)
        records = trail.records(kind="detection")
        for prev, cur in zip(records, records[1:]):
            assert cur["belief_before"] == pytest.approx(prev["belief_after"])

    def test_gap_records_under_injected_faults(self, tiny_config):
        trail = AuditTrail()
        plan = builtin_plan("drop", seed=5)
        engine = _run_engine(tiny_config, audit=trail, faults=plan)
        gaps = [d for d in engine.timeline if d.gap]
        assert gaps, "drop plan should produce at least one gap"
        gap_records = trail.records(kind="gap")
        assert len(gap_records) == len(gaps)
        for record, det in zip(gap_records, gaps):
            assert record["kind"] == "gap"
            assert record["slot"] == det.slot
            assert record["gap_reason"] == det.gap_reason
            assert record["belief_held"] is True
        # Every timeline entry has exactly one audit record.
        assert trail.total_records == len(engine.timeline)

    def test_jsonl_file_round_trips(self, tiny_config, tmp_path):
        path = tmp_path / "audit.jsonl"
        trail = AuditTrail(path)
        _run_engine(tiny_config, audit=trail, faults=builtin_plan("drop", seed=5))
        loaded = load_audit_jsonl(path)
        assert loaded == trail.records()

    def test_load_rejects_damage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_audit_jsonl(path)
        path.write_text('[1, 2]\n', encoding="utf-8")
        with pytest.raises(ValueError, match="must be an object"):
            load_audit_jsonl(path)


class TestAuditNeverChangesVerdicts:
    def test_timeline_bitwise_identical_with_and_without_audit(self, tiny_config):
        plain = _run_engine(tiny_config, audit=None)
        audited = _run_engine(tiny_config, audit=AuditTrail())
        a = json.dumps([d.to_dict() for d in plain.timeline], sort_keys=True)
        b = json.dumps([d.to_dict() for d in audited.timeline], sort_keys=True)
        assert a == b

    def test_checkpoint_state_identical_with_and_without_audit(self, tiny_config):
        plain = _run_engine(tiny_config, audit=None)
        audited = _run_engine(tiny_config, audit=AuditTrail())
        a = json.dumps(checkpoint_payload(plain), sort_keys=True)
        b = json.dumps(checkpoint_payload(audited), sort_keys=True)
        assert a == b


class TestWindowAndBackfill:
    def test_bounded_window_rolls_but_total_counts(self, tiny_config):
        trail = AuditTrail(max_records=10)
        engine = _run_engine(tiny_config, audit=trail)
        assert len(trail.records()) == 10
        assert trail.total_records == len(engine.timeline)
        # The window keeps the most recent slots.
        assert trail.records()[-1]["slot"] == engine.timeline[-1].slot

    def test_filters(self, tiny_config):
        trail = AuditTrail()
        _run_engine(tiny_config, audit=trail, faults=builtin_plan("drop", seed=5))
        day1 = trail.records(day=1)
        assert day1 and all(rec["day"] == 1 for rec in day1)
        late = trail.records(since=30)
        assert late and all(rec["slot"] >= 30 for rec in late)
        assert trail.records(limit=3) == trail.records()[:3]

    def test_backfill_after_resume_covers_whole_timeline(self, tiny_config):
        engine = _run_engine(tiny_config, audit=None)
        payload = checkpoint_payload(engine)
        resumed = resume_engine(payload, cache=GameSolutionCache())
        trail = AuditTrail()
        resumed.pipeline.audit = trail
        added = trail.backfill(resumed.timeline)
        assert added == len(resumed.timeline)
        assert all(
            rec.get("restored") for rec in trail.records(kind="detection")
        )
        # Idempotent: a second backfill adds nothing.
        assert trail.backfill(resumed.timeline) == 0

    def test_pipeline_load_state_backfills_attached_trail(self, tiny_config):
        engine = _run_engine(tiny_config, audit=None)
        payload = checkpoint_payload(engine)
        resumed = resume_engine(payload, cache=GameSolutionCache())
        # resume_engine rebuilds without a trail; attaching one and
        # re-loading state (as the CLI --resume path does) backfills.
        trail = AuditTrail()
        resumed.pipeline.audit = trail
        resumed.pipeline.load_state(payload["state"]["pipeline"])
        assert trail.total_records == len(resumed.timeline)
