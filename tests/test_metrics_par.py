"""Unit and property tests for the PAR metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.par import par, par_increase, par_series, relative_par_increase


class TestPar:
    def test_flat_profile_has_par_one(self):
        assert par(np.full(24, 3.0)) == pytest.approx(1.0)

    def test_single_spike(self):
        load = np.ones(10)
        load[3] = 10.0
        assert par(load) == pytest.approx(10.0 / 1.9)

    def test_scale_invariance(self):
        load = np.array([1.0, 2.0, 3.0, 4.0])
        assert par(load) == pytest.approx(par(load * 7.5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            par(np.array([]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            par(np.array([1.0, -0.1, 2.0]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            par(np.array([1.0, np.nan]))

    def test_rejects_zero_mean(self):
        with pytest.raises(ValueError, match="mean"):
            par(np.zeros(5))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            par(np.ones((2, 3)))

    @given(
        arrays(
            np.float64,
            st.integers(min_value=1, max_value=48),
            elements=st.floats(min_value=0.01, max_value=1e6),
        )
    )
    def test_par_at_least_one(self, load):
        """PAR >= 1 for any positive profile (max >= mean)."""
        assert par(load) >= 1.0 - 1e-12

    @given(
        arrays(
            np.float64,
            st.integers(min_value=2, max_value=24),
            elements=st.floats(min_value=0.01, max_value=1e3),
        ),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_par_scale_invariant_property(self, load, scale):
        assert par(load * scale) == pytest.approx(par(load), rel=1e-9)


class TestParSeries:
    def test_daily_windows(self):
        day1 = np.ones(24)
        day2 = np.ones(24)
        day2[12] = 5.0
        series = par_series(np.concatenate([day1, day2]), window=24)
        assert series.shape == (2,)
        assert series[0] == pytest.approx(1.0)
        assert series[1] > 1.0

    def test_rejects_nondivisible(self):
        with pytest.raises(ValueError, match="divisible"):
            par_series(np.ones(25), window=24)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            par_series(np.ones(24), window=0)


class TestParIncrease:
    def test_basic(self):
        assert par_increase(1.9, 1.4) == pytest.approx(0.5)

    def test_negative_when_received_flatter(self):
        assert par_increase(1.2, 1.5) == pytest.approx(-0.3)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            par_increase(np.inf, 1.0)


class TestRelativeParIncrease:
    def test_paper_fig5_vs_fig4(self):
        """The paper quotes (1.9037 - 1.3986) / 1.3986 = 36.11%."""
        value = relative_par_increase(1.9037, 1.3986)
        assert value == pytest.approx(0.3611, abs=1e-3)

    def test_paper_fig5_vs_fig3(self):
        value = relative_par_increase(1.9037, 1.4700)
        assert value == pytest.approx(0.2950, abs=1e-3)

    def test_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            relative_par_increase(1.5, 0.0)
