"""Service and CLI integration tests for the observability layer."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    SolarConfig,
    TimeGrid,
)
from repro.obs.prometheus import parse_prometheus_text
from repro.obs.trace import TRACER
from repro.service.app import DetectionService, ServiceError, create_server
from repro.simulation.cache import GameSolutionCache
from repro.stream.pipeline import build_synthetic_engine


@pytest.fixture(scope="module")
def tiny_config() -> CommunityConfig:
    return CommunityConfig(
        n_customers=8,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        solar=SolarConfig(peak_kw=0.7),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4, hack_probability=0.15),
        seed=11,
    )


@pytest.fixture()
def service_url(tiny_config):
    engine = build_synthetic_engine(
        tiny_config, n_days=3, attack_days=(1, 2), cache=GameSolutionCache()
    )
    service = DetectionService(engine)
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def _get_raw(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.read().decode("utf-8"), response.headers.get("Content-Type")


def _post(base: str, path: str, body: dict | None = None) -> dict:
    data = json.dumps(body or {}).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


class TestTraceEndpoint:
    def test_every_detection_has_an_audit_record(self, service_url):
        base, _ = service_url
        _post(base, "/advance", {"until_day": 2})
        detections = _get(base, "/detections")["detections"]
        assert detections
        trace = _get(base, "/trace")
        records = trace["records"]
        by_slot = {rec["slot"]: rec for rec in records}
        for det in detections:
            record = by_slot[det["slot"]]
            assert record["observation"] == det["observation"]
            expected_kind = "gap" if det.get("gap") else "detection"
            assert record["kind"] == expected_kind
        assert trace["total_records"] == len(records)

    def test_trace_filters_and_limit(self, service_url):
        base, _ = service_url
        _post(base, "/advance", {"until_day": 2})
        day1 = _get(base, "/trace?day=1")["records"]
        assert day1 and all(rec["day"] == 1 for rec in day1)
        limited = _get(base, "/trace?limit=2")
        assert len(limited["records"]) == 2
        assert limited["truncated"] is True
        only_detections = _get(base, "/trace?kind=detection")["records"]
        assert all(rec["kind"] == "detection" for rec in only_detections)

    def test_bad_kind_is_400(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, "/trace?kind=bogus")
        assert err.value.code == 400

    def test_audit_disabled_service_errors(self, tiny_config):
        engine = build_synthetic_engine(
            tiny_config, n_days=2, attack_days=(1, 1), cache=GameSolutionCache()
        )
        service = DetectionService(engine, audit=False)
        with pytest.raises(ServiceError, match="audit trail disabled"):
            service.trace()


class TestPrometheusEndpoint:
    def test_scrape_parses_and_exposes_stream_counters(self, service_url):
        base, _ = service_url
        _post(base, "/advance", {"until_day": 1})
        text, content_type = _get_raw(base, "/metrics?format=prometheus")
        assert content_type.startswith("text/plain")
        parsed = parse_prometheus_text(text)
        samples = parsed["samples"]
        assert samples[("repro_stream_readings_total", ())] >= 24.0
        assert parsed["types"]["repro_stream_pump_seconds_total"] == "counter"
        # The pump timer histogram exports as a summary.
        assert ("repro_stream_pump", (("quantile", "0.5"),)) in samples
        # The belief gauge rides along.
        assert parsed["types"]["repro_stream_belief_mean"] == "gauge"

    def test_prometheus_scrape_does_not_rebaseline_json_deltas(self, service_url):
        base, _ = service_url
        _post(base, "/advance", {"until_day": 1})
        _get_raw(base, "/metrics?format=prometheus")
        interval = _get(base, "/metrics")["interval"]
        # The JSON delta still sees the advance despite the scrape.
        assert interval.get("stream.readings", 0) >= 24

    def test_unknown_format_is_400(self, service_url):
        base, _ = service_url
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, "/metrics?format=xml")
        assert err.value.code == 400

    def test_json_default_unchanged(self, service_url):
        base, _ = service_url
        payload = _get(base, "/metrics")
        assert set(payload) >= {"interval", "totals", "events_processed"}


class TestStatusManifest:
    def test_status_carries_manifest(self, service_url):
        base, _ = service_url
        status = _get(base, "/status")
        manifest = status["manifest"]
        assert manifest["format"] == "repro-run-manifest"
        assert manifest["command"] == "synthetic"
        assert manifest["seeds"] == {"stream": 0}
        assert len(manifest["config_sha256"]) == 64

    def test_checkpoint_embeds_same_manifest(self, tiny_config, tmp_path):
        from repro.stream.checkpoint import checkpoint_payload

        engine = build_synthetic_engine(
            tiny_config, n_days=2, attack_days=(1, 1), cache=GameSolutionCache()
        )
        service = DetectionService(engine)
        payload = checkpoint_payload(engine)
        assert payload["manifest"] == service.status()["manifest"]


class TestCliObservability:
    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.cli import main

        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_trace_subcommand_reads_audit_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "audit.jsonl"
        records = [
            {
                "format": "repro-audit-record",
                "version": 1,
                "kind": "detection",
                "slot": 0,
                "day": 0,
                "observation": 2,
                "action": 0,
                "belief_before": 0.0,
                "belief_after": 0.4,
                "repaired": False,
                "repaired_count": 0,
                "flags": [1, 1, 0, 0],
            },
            {
                "format": "repro-audit-record",
                "version": 1,
                "kind": "gap",
                "slot": 1,
                "day": 0,
                "gap_reason": "missing",
                "observation": 0,
                "belief_held": True,
            },
        ]
        path.write_text(
            "".join(json.dumps(rec) + "\n" for rec in records), encoding="utf-8"
        )
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "detection" in out and "gap" in out

        assert main(["trace", str(path), "--kind", "gap", "--format", "json"]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert [rec["kind"] for rec in lines] == ["gap"]

    def test_trace_subcommand_missing_file_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 2
        capsys.readouterr()

    def test_stream_trace_flag_writes_perfetto_loadable_json(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        trace_path = tmp_path / "trace.json"
        audit_path = tmp_path / "audit.jsonl"
        code = main(
            [
                "stream",
                "--preset",
                "smoke",
                "--days",
                "2",
                "--trace-out",
                str(trace_path),
                "--audit",
                str(audit_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert TRACER.enabled is False  # CLI disables after export
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        assert doc["metadata"]["run_id"].startswith("stream-smoke-seed")
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"
        names = {event["name"] for event in events}
        assert {"stream.run", "stream.day", "stream.slot", "detector.update"} <= names
        for event in events[1:]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
        # Audit file covers every slot of the run.
        from repro.obs.audit import load_audit_jsonl

        assert len(load_audit_jsonl(audit_path)) == 48
