"""Tests for the dynamic-programming appliance scheduler.

The key property: the DP returns the *exact* optimum, checked against
brute-force enumeration on small instances (including hypothesis-driven
random cost tables).
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.appliance import ApplianceTask, InfeasibleTaskError
from repro.scheduling.dp import schedule_appliance, schedule_appliance_table


def brute_force_optimum(task: ApplianceTask, cost_table: np.ndarray) -> float:
    """Enumerate every feasible assignment; return the minimal cost."""
    horizon = cost_table.shape[0]
    window = range(task.earliest_start, task.deadline + 1)
    best = np.inf
    for combo in itertools.product(range(len(task.power_levels)), repeat=len(window)):
        energy = sum(task.power_levels[j] for j in combo)
        if abs(energy - task.energy_kwh) > 1e-9:
            continue
        cost = sum(cost_table[h, j] for h, j in zip(window, combo))
        # levels outside the window are zero; add their level-0 cost
        cost += sum(
            cost_table[h, 0] for h in range(horizon) if h not in window
        )
        best = min(best, cost)
    return best


class TestDpOptimality:
    def test_matches_brute_force_simple(self):
        task = ApplianceTask("t", (0.0, 1.0, 2.0), 3.0, 2, 5)
        rng = np.random.default_rng(0)
        table = rng.uniform(0.0, 1.0, size=(8, 3))
        table[:, 0] = 0.0
        schedule, diag = schedule_appliance_table(task, table)
        schedule.validate()
        assert diag.optimal_cost == pytest.approx(brute_force_optimum(task, table))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_matches_brute_force_random(self, seed):
        rng = np.random.default_rng(seed)
        start = int(rng.integers(0, 3))
        width = int(rng.integers(2, 5))
        energy = float(rng.integers(1, width + 1))
        task = ApplianceTask("t", (0.0, 0.5, 1.0), energy, start, start + width)
        table = rng.uniform(-0.5, 1.0, size=(start + width + 2, 3))
        table[:, 0] = 0.0
        schedule, diag = schedule_appliance_table(task, table)
        schedule.validate()
        assert diag.optimal_cost == pytest.approx(
            brute_force_optimum(task, table), abs=1e-9
        )

    def test_prefers_cheap_slots(self, simple_task):
        prices = np.full(24, 1.0)
        prices[20] = 0.0
        prices[21] = 0.0
        levels = np.asarray(simple_task.power_levels)
        table = prices[:, None] * levels[None, :]
        schedule, _ = schedule_appliance_table(simple_task, table)
        assert schedule.power[20] == pytest.approx(1.0)
        assert schedule.power[21] == pytest.approx(1.0)
        assert schedule.energy() == pytest.approx(2.0)

    def test_forced_schedule(self, tight_task):
        """Window capacity equals the requirement: max power everywhere."""
        table = np.random.default_rng(1).uniform(0, 1, size=(24, 2))
        schedule, _ = schedule_appliance_table(tight_task, table)
        assert all(schedule.power[h] == pytest.approx(1.0) for h in range(5, 8))

    def test_negative_costs_attract(self, simple_task):
        """Selling-branch rewards (negative marginal cost) pull load in."""
        levels = np.asarray(simple_task.power_levels)
        table = np.ones((24, 3)) * levels[None, :]
        table[19, 1] = -1.0
        table[19, 2] = -2.5
        schedule, diag = schedule_appliance_table(simple_task, table)
        assert schedule.power[19] == pytest.approx(1.0)
        assert diag.optimal_cost < 0


class TestDpValidation:
    def test_infeasible_requirement(self):
        task = ApplianceTask("t", (0.0, 1.0), 8.0, 0, 3)
        with pytest.raises(InfeasibleTaskError):
            schedule_appliance_table(task, np.zeros((24, 2)))

    def test_level_count_mismatch(self, simple_task):
        with pytest.raises(ValueError, match="level"):
            schedule_appliance_table(simple_task, np.zeros((24, 5)))

    def test_unreachable_energy_unit(self):
        """Energy not composable from levels is rejected."""
        task = ApplianceTask("t", (0.0, 1.0, 2.0), 2.5, 0, 5)
        with pytest.raises(InfeasibleTaskError):
            schedule_appliance_table(task, np.zeros((24, 3)))

    def test_callable_interface(self, simple_task):
        schedule, diag = schedule_appliance(
            simple_task, lambda h, x: 0.1 * x, 24
        )
        schedule.validate()
        assert diag.optimal_cost == pytest.approx(0.1 * 2.0)

    def test_infinite_cost_blocks_slot(self, simple_task):
        levels = np.asarray(simple_task.power_levels)
        table = np.ones((24, 3)) * levels[None, :]
        table[18:22, 1:] = np.inf  # only 22, 23 usable
        schedule, _ = schedule_appliance_table(simple_task, table)
        assert schedule.power[22] == pytest.approx(1.0)
        assert schedule.power[23] == pytest.approx(1.0)
