"""Integration tests across the net-metering stack.

These tie together battery dynamics, trading, the cost model and the
game: the economic behaviours the paper's Section 2-3 model implies
(arbitrage direction, PV self-consumption, sell-back limits) must emerge
from the composed system, not just from unit-level formulas.
"""

import numpy as np
import pytest

from repro.core.config import BatteryConfig, GameConfig
from repro.netmetering.trading import net_position
from repro.scheduling.game import Community, SchedulingGame
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=3,
    inner_iterations=1,
    ce_samples=16,
    ce_elites=4,
    ce_iterations=6,
    convergence_tol=0.05,
)

BATTERY = BatteryConfig(
    capacity_kwh=2.0, initial_kwh=0.0, max_charge_kw=1.0, max_discharge_kw=1.0
)


def solve(community, prices, *, w=2.0, seed=0):
    game = SchedulingGame(community, prices, sellback_divisor=w, config=FAST)
    return game.solve(rng=np.random.default_rng(seed)), game


class TestArbitrageDirection:
    def test_battery_charges_cheap_discharges_expensive(self):
        """A two-tier tariff moves stored energy from the cheap half of the
        day into the expensive evening."""
        customer = make_customer(0, battery=BATTERY)
        community = Community(customers=(customer,), counts=(8,))
        prices = np.full(HORIZON, 0.01)
        prices[17:22] = 0.08
        result, _ = solve(community, prices)
        trajectory = result.states[0].battery_trajectory
        # stored energy exists before the expensive block...
        assert trajectory[17] > 0.3
        # ...and is drawn down across it
        assert trajectory[22] < trajectory[17]

    def test_flat_price_battery_smooths_demand(self):
        """Even at a flat posted price the quadratic tariff rewards
        valley-filling: battery activity must not make the customer's
        trading profile rougher than the no-battery profile."""
        with_battery = make_customer(0, battery=BATTERY)
        without = make_customer(0)
        prices = np.full(HORIZON, 0.03)
        result_b, _ = solve(Community(customers=(with_battery,), counts=(8,)), prices)
        result_n, _ = solve(Community(customers=(without,), counts=(8,)), prices)
        roughness_b = np.std(result_b.states[0].trading)
        roughness_n = np.std(result_n.states[0].trading)
        assert roughness_b <= roughness_n + 0.05

    def test_battery_rate_limits_respected_in_game(self):
        customer = make_customer(0, battery=BATTERY)
        community = Community(customers=(customer,), counts=(8,))
        result, _ = solve(community, np.full(HORIZON, 0.03))
        deltas = np.diff(result.states[0].battery_trajectory)
        assert np.all(deltas <= BATTERY.max_charge_kw + 1e-9)
        assert np.all(-deltas <= BATTERY.max_discharge_kw + 1e-9)


class TestPvInteraction:
    def test_pv_reduces_total_purchases(self):
        base = make_customer(0)
        solar = make_customer(1, pv_peak=0.8)
        result_base, _ = solve(
            Community(customers=(base,), counts=(8,)), np.full(HORIZON, 0.03)
        )
        result_solar, _ = solve(
            Community(customers=(solar,), counts=(8,)), np.full(HORIZON, 0.03)
        )
        assert (
            result_solar.grid_demand.sum() < result_base.grid_demand.sum()
        )

    def test_midday_pv_shaves_midday_demand(self):
        solar = make_customer(1, pv_peak=0.8)
        community = Community(customers=(solar,), counts=(8,))
        result, _ = solve(community, np.full(HORIZON, 0.03))
        grid = result.grid_demand
        assert grid[11:15].mean() < grid[0:4].mean() + 0.5


class TestSellbackEconomics:
    def test_lower_w_sells_at_least_as_much(self):
        """W = 1 (full price) never sells less than W = 4 (quarter price)."""
        solar = make_customer(
            1,
            battery=BATTERY,
            pv_peak=1.5,
            base=0.2,
        )
        community = Community(customers=(solar,), counts=(6,))
        prices = np.full(HORIZON, 0.03)

        def total_sold(w):
            result, _ = solve(community, prices, w=w)
            sold = 0.0
            for state, count in zip(result.states, result.counts):
                _, s = net_position(state.trading)
                sold += count * s.sum()
            return sold

        assert total_sold(1.0) >= total_sold(4.0) - 1e-6

    def test_community_cost_consistency(self):
        """Summed per-customer costs equal the community quadratic bill
        when everyone is buying (no sell-back wedge)."""
        community = Community(
            customers=(make_customer(0), make_customer(1)), counts=(3, 3)
        )
        result, game = solve(community, np.full(HORIZON, 0.03))
        total = result.community_trading
        if np.all(total >= 0):
            summed = 0.0
            for state, count in zip(result.states, result.counts):
                others = total - state.trading
                summed += count * game.cost_model.customer_cost(
                    state.trading, others
                )
            assert summed == pytest.approx(
                game.cost_model.community_cost(total), rel=1e-6
            )
