"""Tests for the ablation baseline optimizers."""

import numpy as np
import pytest

from repro.optimization.baselines import (
    coordinate_descent,
    projected_gradient,
    random_search,
)


def sphere(x: np.ndarray) -> float:
    return float(np.sum((x - 0.4) ** 2))


class TestRandomSearch:
    def test_finds_rough_optimum(self, rng):
        result = random_search(sphere, np.zeros(2), np.ones(2), n_samples=2000, rng=rng)
        assert result.fun < 0.01

    def test_respects_bounds(self, rng):
        result = random_search(sphere, np.zeros(3), np.ones(3), n_samples=50, rng=rng)
        assert np.all(result.x >= 0.0) and np.all(result.x <= 1.0)

    def test_rejects_bad_samples(self):
        with pytest.raises(ValueError):
            random_search(sphere, [0.0], [1.0], n_samples=0)

    def test_projection_hook(self, rng):
        result = random_search(
            sphere,
            np.zeros(1),
            np.ones(1),
            n_samples=100,
            rng=rng,
            projection=lambda x: np.round(x),
        )
        assert result.x[0] in (0.0, 1.0)


class TestCoordinateDescent:
    def test_exact_on_grid(self):
        result = coordinate_descent(
            sphere, np.zeros(2), np.ones(2), n_grid=11, n_sweeps=4
        )
        np.testing.assert_allclose(result.x, 0.4, atol=1e-9)

    def test_early_stop_flag(self):
        result = coordinate_descent(
            sphere, np.zeros(1), np.ones(1), n_grid=11, n_sweeps=10
        )
        assert result.converged
        assert result.n_iterations < 10

    def test_x0_respected(self):
        result = coordinate_descent(
            sphere, np.zeros(2), np.ones(2), x0=[0.4, 0.4], n_grid=3, n_sweeps=1
        )
        assert result.fun <= sphere(np.array([0.4, 0.4])) + 1e-12

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            coordinate_descent(sphere, [0.0], [1.0], n_grid=1)


class TestProjectedGradient:
    def test_converges_on_convex(self):
        result = projected_gradient(
            sphere, np.zeros(2), np.ones(2), x0=[0.9, 0.1], step=0.5, n_iterations=200
        )
        np.testing.assert_allclose(result.x, 0.4, atol=1e-2)

    def test_stuck_in_local_minimum(self):
        """The documented failure mode on non-convex costs: PG stays in the
        basin it starts in, unlike cross-entropy."""

        def double_well(x):
            return float(((x[0] - 0.2) ** 2) * ((x[0] - 0.9) ** 2) + 0.05 * x[0])

        result = projected_gradient(
            double_well, [0.0], [1.0], x0=[0.95], step=0.05, n_iterations=100
        )
        assert result.x[0] > 0.6  # stayed near the worse well at 0.9

    def test_boundary_clipping(self):
        result = projected_gradient(
            lambda x: float(np.sum(x)), np.zeros(2), np.ones(2), x0=[0.5, 0.5]
        )
        np.testing.assert_allclose(result.x, 0.0, atol=1e-6)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            projected_gradient(sphere, [0.0], [1.0], step=0.0)

    def test_history_monotone(self):
        result = projected_gradient(
            sphere, np.zeros(2), np.ones(2), x0=[1.0, 0.0], n_iterations=50
        )
        history = np.array(result.history)
        assert np.all(np.diff(history) <= 1e-12)
