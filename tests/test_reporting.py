"""Tests for the ASCII reporting helpers."""

import numpy as np
import pytest

from repro.reporting.ascii import bar_chart, render_profile, sparkline
from repro.reporting.tables import ComparisonRow, comparison_table, fixed_table


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_ramp(self):
        line = sparkline(np.arange(8))
        assert line == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            sparkline([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            sparkline([1.0, np.nan])


class TestRenderProfile:
    def test_includes_range(self):
        line = render_profile(np.array([1.0, 3.0, 2.0]), label="load")
        assert "load" in line
        assert "[1, 3]" in line

    def test_downsamples_long_series(self):
        line = render_profile(np.arange(200), width=24)
        # sparkline portion is at most `width` characters
        body = line.split("[")[0].strip()
        assert len(body) <= 24


class TestBarChart:
    def test_rows_and_peak(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("█") == 10  # the max fills the width

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])


class TestComparisonRow:
    def test_deviation(self):
        row = ComparisonRow("x", paper=2.0, measured=2.2)
        assert row.deviation == pytest.approx(0.1)

    def test_unpublished_paper_value(self):
        assert ComparisonRow("x", paper=None, measured=1.0).deviation is None

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            ComparisonRow("x", paper=1.0, measured=float("nan"))


class TestComparisonTable:
    def test_contains_rows(self):
        table = comparison_table(
            [
                ComparisonRow("PAR (aware)", 1.4112, 1.39),
                ComparisonRow("extra", None, 0.5),
            ],
            title="Table 1",
        )
        assert "Table 1" in table
        assert "PAR (aware)" in table
        assert "--" in table  # unpublished value
        assert "%" in table

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            comparison_table([])


class TestFixedTable:
    def test_alignment(self):
        table = fixed_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in (lines[0], lines[2]))

    def test_row_width_validation(self):
        with pytest.raises(ValueError):
            fixed_table(["a"], [["1", "2"]])
