"""Baseline regression gate: file format, matching semantics, CLI
``--program`` flags, and precedence against ``# repro: noqa``.  Plus the
repo-wide meta-gate: ``repro-lint --program`` must be clean here with a
baseline that carries **zero** CONC/SEED entries (races and seed leaks
get fixed, not baselined)."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import USAGE_ERROR, main
from repro.analysis.engine import LintConfig, Violation
from repro.analysis.program import (
    BASELINE_FILENAME,
    Baseline,
    BaselineError,
    ProgramAnalyzer,
    SymbolTable,
    apply_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

UNSEEDED = textwrap.dedent(
    """\
    import numpy as np

    def sample() -> float:
        rng = np.random.default_rng()
        return float(rng.random())
    """
)


def violation(rule="SEED001", path="src/repro/x.py", message="m", line=1):
    return Violation(rule=rule, message=message, path=path, line=line, col=0)


class TestBaselineFile:
    def test_round_trip(self, tmp_path):
        baseline = Baseline.from_violations(
            [violation(), violation(), violation(rule="CTR001")]
        )
        path = baseline.save(tmp_path / BASELINE_FILENAME)
        loaded = Baseline.load(path)
        assert loaded.counts == baseline.counts
        assert loaded.total == 3
        assert loaded.rules_present() == {"SEED001", "CTR001"}

    def test_payload_is_sorted_and_versioned(self, tmp_path):
        baseline = Baseline.from_violations(
            [violation(rule="Z999"), violation(rule="A000")]
        )
        payload = baseline.to_payload()
        assert payload["version"] == 1
        assert [e["rule"] for e in payload["entries"]] == ["A000", "Z999"]

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / BASELINE_FILENAME
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(BaselineError, match="version"):
            Baseline.load(path)

    def test_malformed_entries_rejected(self, tmp_path):
        path = tmp_path / BASELINE_FILENAME
        path.write_text(json.dumps({"version": 1, "entries": [{"rule": "X"}]}))
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / BASELINE_FILENAME
        path.write_text("not json")
        with pytest.raises(BaselineError, match="JSON"):
            Baseline.load(path)


class TestApplyBaseline:
    def test_matching_findings_absorbed(self):
        found = [violation(line=3), violation(rule="CTR001", line=9)]
        baseline = Baseline.from_violations([violation(line=999)])
        result = apply_baseline(found, baseline)
        assert [v.rule for v in result.new] == ["CTR001"]
        assert result.baselined == 1
        assert result.stale == []

    def test_line_numbers_do_not_matter(self):
        baseline = Baseline.from_violations([violation(line=10)])
        result = apply_baseline([violation(line=400)], baseline)
        assert result.new == []

    def test_surplus_identical_findings_are_new(self):
        baseline = Baseline.from_violations([violation()])
        result = apply_baseline([violation(line=1), violation(line=2)], baseline)
        assert result.baselined == 1
        assert len(result.new) == 1

    def test_fixed_findings_reported_stale(self):
        baseline = Baseline.from_violations([violation(), violation(rule="CTR001")])
        result = apply_baseline([violation()], baseline)
        assert result.new == []
        assert result.stale == [("CTR001", "src/repro/x.py", "m")]


class TestSuppressionPrecedence:
    def test_noqa_wins_over_baseline(self):
        """A suppressed finding never surfaces, so the matching baseline
        entry goes stale instead of absorbing anything."""
        source = UNSEEDED.replace(
            "np.random.default_rng()",
            "np.random.default_rng()  # repro: noqa[SEED001] fixture",
        )
        table = SymbolTable()
        table.add_source(source, module="repro.fake_x", display="src/repro/x.py")
        found = ProgramAnalyzer(config=LintConfig()).check_table(table)
        assert found == []
        baseline = Baseline.from_violations([violation()])
        result = apply_baseline(found, baseline)
        assert result.baselined == 0
        assert len(result.stale) == 1


class TestProgramCli:
    def run(self, *argv, capsys):
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_new_finding_fails_without_baseline(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(UNSEEDED)
        code, out = self.run(
            "--program", "--no-baseline", str(target), capsys=capsys
        )
        assert code == 1
        assert "SEED001" in out

    def test_update_baseline_then_gate_passes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "src" / "repro" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(UNSEEDED)

        code, out = self.run("--program", "--update-baseline", "src", capsys=capsys)
        assert code == 0
        assert (tmp_path / BASELINE_FILENAME).exists()

        code, out = self.run("--program", "src", capsys=capsys)
        assert code == 0
        assert "baselined" in out

    def test_regression_beyond_baseline_fails(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "src" / "repro" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(UNSEEDED)
        self.run("--program", "--update-baseline", "src", capsys=capsys)

        target.write_text(
            UNSEEDED
            + textwrap.dedent(
                """\

    def second() -> float:
        return float(np.random.default_rng().random())
    """
            )
        )
        code, out = self.run("--program", "src", capsys=capsys)
        assert code == 1
        assert "SEED001" in out
        assert "1 baselined" in out

    def test_corrupt_baseline_is_usage_error(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "src" / "repro" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(UNSEEDED)
        (tmp_path / BASELINE_FILENAME).write_text("{}")
        code = main(["--program", "src"])
        capsys.readouterr()
        assert code == USAGE_ERROR

    def test_json_format_carries_baseline_counts(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "src" / "repro" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(UNSEEDED)
        self.run("--program", "--update-baseline", "src", capsys=capsys)
        code, out = self.run("--program", "--format", "json", "src", capsys=capsys)
        payload = json.loads(out)
        assert code == 0
        assert payload["baselined"] == 1

    def test_list_rules_in_program_mode(self, capsys):
        code, out = self.run("--program", "--list-rules", capsys=capsys)
        assert code == 0
        for rule_id in (
            "CONC001",
            "CONC002",
            "SEED001",
            "SEED002",
            "SEED003",
            "CTR001",
            "CTR002",
        ):
            assert rule_id in out


class TestRepoMetaGate:
    def test_repo_is_program_lint_clean(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code = main(["--program", "src", "tests", "benchmarks", "scripts"])
        out = capsys.readouterr().out
        assert code == 0, out

    def test_committed_baseline_has_no_conc_or_seed_entries(self):
        baseline = Baseline.load(REPO_ROOT / BASELINE_FILENAME)
        forbidden = {
            rule
            for rule in baseline.rules_present()
            if rule.startswith(("CONC", "SEED"))
        }
        assert forbidden == set(), (
            "races and seed leaks must be fixed, not baselined"
        )
