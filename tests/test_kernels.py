"""Bitwise backend-equivalence suite for the kernel layer.

Every backend registered in :mod:`repro.kernels` must reproduce the
reference backend bit for bit on the inputs the pipeline produces —
that is the contract that lets ``SolverConfig.backend`` switch
implementations without perturbing golden-master results.  These tests
drive each registered backend over CE-style battery populations and
appliance DP tables and assert exact equality, both against the
reference backend and against the pre-kernel historical implementations
(``clamp_trajectory_batch``, ``BatteryProblem.cost_batch``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BatteryConfig
from repro.kernels import (
    ENV_VAR,
    KernelBackend,
    available_backends,
    get_backend,
)
from repro.netmetering.battery import clamp_trajectory_batch
from repro.netmetering.cost import NetMeteringCostModel
from repro.optimization.battery import BatteryProblem
from repro.scheduling.dp import (
    _task_units,
    schedule_appliance_table,
    schedule_appliance_tables,
)
from tests.conftest import HORIZON, make_customer

REFERENCE = get_backend("reference")

SPECS = [
    BatteryConfig(
        capacity_kwh=2.0, initial_kwh=0.5, max_charge_kw=1.0, max_discharge_kw=1.0
    ),
    BatteryConfig(
        capacity_kwh=1.5, initial_kwh=0.2, max_charge_kw=0.4, max_discharge_kw=0.6
    ),
]


def _population(spec: BatteryConfig, shape: tuple[int, ...], seed: int) -> np.ndarray:
    """A CE-style population: finite and clipped to the battery box."""
    rng = np.random.default_rng(seed)
    raw = rng.uniform(-1.0, spec.capacity_kwh + 1.0, size=shape + (HORIZON,))
    return np.clip(raw, 0.0, spec.capacity_kwh)


@pytest.fixture(params=available_backends())
def backend(request) -> KernelBackend:
    return get_backend(request.param)


class TestRegistry:
    def test_reference_and_fused_always_registered(self):
        names = available_backends()
        assert "reference" in names
        assert "fused" in names

    def test_backends_satisfy_protocol(self, backend):
        assert isinstance(backend, KernelBackend)

    def test_get_backend_passes_instances_through(self, backend):
        assert get_backend(backend) is backend

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("not-a-backend")

    def test_auto_honours_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        assert get_backend("auto").name == "reference"
        assert get_backend(None).name == "reference"

    def test_env_typo_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "turbo")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("auto")


class TestClampDecisions:
    @pytest.mark.parametrize("spec", SPECS)
    @pytest.mark.parametrize("shape", [(48,), (5, 48), (3, 16)])
    def test_matches_reference_bitwise(self, backend, spec, shape):
        decisions = _population(spec, shape[:-1], seed=shape[-1])[
            ..., : HORIZON
        ]
        kwargs = dict(
            initial=spec.initial_kwh,
            capacity=spec.capacity_kwh,
            max_charge=spec.max_charge_kw,
            max_discharge=spec.max_discharge_kw,
        )
        ours = backend.clamp_decisions(decisions.copy(), **kwargs)
        ref = REFERENCE.clamp_decisions(decisions.copy(), **kwargs)
        np.testing.assert_array_equal(ours, ref)

    @pytest.mark.parametrize("spec", SPECS)
    def test_matches_historical_clamp(self, backend, spec):
        decisions = _population(spec, (32,), seed=7)
        ours = backend.clamp_decisions(
            decisions.copy(),
            initial=spec.initial_kwh,
            capacity=spec.capacity_kwh,
            max_charge=spec.max_charge_kw,
            max_discharge=spec.max_discharge_kw,
        )
        b0 = np.full((decisions.shape[0], 1), spec.initial_kwh)
        historical = clamp_trajectory_batch(
            np.hstack([b0, decisions]), spec, slot_hours=1.0
        )[:, 1:]
        np.testing.assert_array_equal(ours, historical)

    def test_projection_is_idempotent(self, backend):
        spec = SPECS[0]
        decisions = _population(spec, (16,), seed=3)
        kwargs = dict(
            initial=spec.initial_kwh,
            capacity=spec.capacity_kwh,
            max_charge=spec.max_charge_kw,
            max_discharge=spec.max_discharge_kw,
        )
        once = backend.clamp_decisions(decisions, **kwargs)
        twice = backend.clamp_decisions(once.copy(), **kwargs)
        np.testing.assert_array_equal(once, twice)


class TestBatteryCosts:
    def _problem(self, spec: BatteryConfig, seed: int) -> BatteryProblem:
        rng = np.random.default_rng(seed)
        prices = tuple(rng.uniform(0.01, 0.05, HORIZON))
        return BatteryProblem(
            load=tuple(rng.uniform(0.2, 1.2, HORIZON)),
            pv=tuple(rng.uniform(0.0, 0.6, HORIZON)),
            others_trading=tuple(rng.uniform(-0.5, 2.0, HORIZON)),
            spec=spec,
            cost_model=NetMeteringCostModel(prices=prices, sellback_divisor=2.0),
            multiplicity=3,
        )

    @pytest.mark.parametrize("spec", SPECS)
    def test_matches_reference_bitwise(self, backend, spec):
        problem = self._problem(spec, seed=11)
        decisions = problem.project_batch(_population(spec, (24,), seed=5))
        kwargs = dict(
            initial=spec.initial_kwh,
            load=np.asarray(problem.load),
            pv=np.asarray(problem.pv),
            others=np.asarray(problem.others_trading),
            prices=problem.cost_model.price_array,
            sellback_divisor=problem.cost_model.sellback_divisor,
            multiplicity=problem.multiplicity,
        )
        np.testing.assert_array_equal(
            backend.battery_costs(decisions, **kwargs),
            REFERENCE.battery_costs(decisions, **kwargs),
        )

    @pytest.mark.parametrize("spec", SPECS)
    def test_matches_historical_cost_batch(self, backend, spec):
        problem = self._problem(spec, seed=13)
        decisions = problem.project_batch(_population(spec, (24,), seed=9))
        ours = backend.battery_costs(
            decisions,
            initial=spec.initial_kwh,
            load=np.asarray(problem.load),
            pv=np.asarray(problem.pv),
            others=np.asarray(problem.others_trading),
            prices=problem.cost_model.price_array,
            sellback_divisor=problem.cost_model.sellback_divisor,
            multiplicity=problem.multiplicity,
        )
        np.testing.assert_array_equal(ours, problem.cost_batch(decisions))


class TestApplianceDp:
    def _table(self, task, n_games: int, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.uniform(
            0.0, 1.0, size=(n_games, HORIZON, len(task.power_levels))
        )

    def test_dp_backward_matches_reference(self, backend, simple_task):
        table = self._table(simple_task, 1, seed=21)[0]
        level_units, required_units, mask = _task_units(
            simple_task, HORIZON, slot_hours=1.0
        )
        n_states = required_units + 1
        value, choice = backend.dp_backward(table, level_units, n_states, mask)
        ref_value, ref_choice = REFERENCE.dp_backward(
            table, level_units, n_states, mask
        )
        np.testing.assert_array_equal(value, ref_value)
        np.testing.assert_array_equal(choice, ref_choice)

    def test_dp_backward_batch_rows_match_single(self, backend, simple_task):
        tables = self._table(simple_task, 4, seed=22)
        level_units, required_units, mask = _task_units(
            simple_task, HORIZON, slot_hours=1.0
        )
        n_states = required_units + 1
        values, choices = backend.dp_backward_batch(
            tables, level_units, n_states, mask
        )
        for g in range(tables.shape[0]):
            value, choice = backend.dp_backward(
                tables[g], level_units, n_states, mask
            )
            np.testing.assert_array_equal(values[g], value)
            np.testing.assert_array_equal(choices[g], choice)

    def test_schedule_identical_across_backends(self, backend, simple_task):
        table = self._table(simple_task, 1, seed=23)[0]
        ours, ours_diag = schedule_appliance_table(
            simple_task, table, backend=backend
        )
        ref, ref_diag = schedule_appliance_table(
            simple_task, table, backend=REFERENCE
        )
        assert ours.power == ref.power
        assert ours_diag.optimal_cost == ref_diag.optimal_cost

    def test_batched_schedules_match_loop(self, backend, simple_task):
        tables = self._table(simple_task, 3, seed=24)
        schedules, costs = schedule_appliance_tables(
            simple_task, tables, backend=backend
        )
        for g, (schedule, cost) in enumerate(zip(schedules, costs)):
            single, diag = schedule_appliance_table(
                simple_task, tables[g], backend=backend
            )
            assert schedule.power == single.power
            assert cost == diag.optimal_cost


class TestEndToEndGameEquivalence:
    """A full game solve must not depend on the backend choice."""

    def test_game_solve_backend_invariant(self):
        from repro.core.config import GameConfig
        from repro.scheduling.game import Community, SchedulingGame

        community = Community(
            customers=(
                make_customer(0),
                make_customer(1, battery=SPECS[0], pv_peak=0.8),
            ),
            counts=(2, 2),
        )
        prices = np.linspace(0.01, 0.05, HORIZON)
        config = GameConfig(
            max_rounds=3, inner_iterations=1, ce_samples=12, ce_elites=3,
            ce_iterations=3,
        )
        results = [
            SchedulingGame(
                community, prices, sellback_divisor=2.0, config=config,
                backend=name,
            ).solve(rng=np.random.default_rng(0))  # repro: noqa[SEED003] same stream per backend: the equivalence oracle
            for name in available_backends()
        ]
        first = results[0]
        for other in results[1:]:
            assert other.rounds == first.rounds
            assert other.residuals == first.residuals
            for state_a, state_b in zip(first.states, other.states):
                assert state_a.battery_decision == state_b.battery_decision
                for sched_a, sched_b in zip(state_a.schedules, state_b.schedules):
                    assert sched_a.power == sched_b.power
