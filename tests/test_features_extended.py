"""Extended featurization tests: leakage guards and era boundaries."""

import numpy as np
import pytest

from repro.core.config import PricingConfig, SolarConfig
from repro.data.pricing import PriceHistory, generate_history
from repro.prediction.features import (
    aware_feature_dataset,
    unaware_feature_dataset,
    unaware_features_for_day,
)


@pytest.fixture
def history(rng) -> PriceHistory:
    return generate_history(
        rng,
        n_customers=30,
        pricing=PricingConfig(),
        solar=SolarConfig(peak_kw=0.6),
        n_days_pre_nm=3,
        n_days_nm=5,
    )


class TestNoLeakage:
    def test_unaware_rows_depend_only_on_past(self, history):
        """Corrupting the FUTURE tail of the price series must not change
        any earlier training row (no look-ahead leakage)."""
        clean_dataset = unaware_feature_dataset(history)
        corrupted = PriceHistory(
            prices=history.prices.copy(),
            demand=history.demand,
            renewable=history.renewable,
            nm_active=history.nm_active,
            slots_per_day=history.slots_per_day,
        )
        corrupted.prices[-24:] = 99.0  # poison the last day
        corrupted_dataset = unaware_feature_dataset(corrupted)
        spd = history.slots_per_day
        # all rows except the last day's (whose lags are unaffected but
        # whose TARGET changed) must be identical
        np.testing.assert_array_equal(
            clean_dataset.features[:-spd], corrupted_dataset.features[:-spd]
        )
        np.testing.assert_array_equal(
            clean_dataset.targets[:-spd], corrupted_dataset.targets[:-spd]
        )

    def test_prediction_rows_never_read_placeholder(self, history):
        """The day-ahead feature builder pads a placeholder day; its values
        must never leak into the returned rows."""
        rows_a = unaware_features_for_day(history)
        # mutate the source and rebuild: identical histories give identical rows
        rows_b = unaware_features_for_day(history)
        np.testing.assert_array_equal(rows_a, rows_b)
        assert np.all(np.isfinite(rows_a))


class TestEraBoundaries:
    def test_aware_targets_match_prices(self, history):
        dataset = aware_feature_dataset(history)
        spd = history.slots_per_day
        np.testing.assert_array_equal(
            dataset.targets, history.prices[2 * spd :]
        )

    def test_net_demand_lag_crosses_era(self, history):
        """Rows for the first net-metering day carry the pre-era (zero
        renewable) lag — the transition the unaware model stumbles on."""
        dataset = aware_feature_dataset(history)
        spd = history.slots_per_day
        lag_col = dataset.names.index("net_demand_lag_1d")
        first_nm_day = 3  # after n_days_pre_nm
        row0 = (first_nm_day - 2) * spd
        lag_values = dataset.features[row0 : row0 + spd, lag_col]
        # the lag looks at day 2 (pre-era): net demand == gross demand
        np.testing.assert_array_equal(
            lag_values, history.demand[2 * spd : 3 * spd]
        )

    def test_hour_encoding_periodic(self, history):
        dataset = unaware_feature_dataset(history)
        spd = history.slots_per_day
        sin_col = dataset.names.index("hour_sin")
        first_day = dataset.features[:spd, sin_col]
        second_day = dataset.features[spd : 2 * spd, sin_col]
        np.testing.assert_allclose(first_day, second_day)
