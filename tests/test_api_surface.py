"""Public API surface checks.

Every name in a package's ``__all__`` must be importable from the
package, and the facade re-exports advertised in the README must exist.
These tests pin the public contract so refactors cannot silently drop
API the examples and benchmarks rely on.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.scheduling",
    "repro.netmetering",
    "repro.optimization",
    "repro.prediction",
    "repro.attacks",
    "repro.detection",
    "repro.faults",
    "repro.simulation",
    "repro.stream",
    "repro.service",
    "repro.obs",
    "repro.billing",
    "repro.reporting",
    "repro.data",
    "repro.metrics",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} missing __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} not importable"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted(package_name):
    package = importlib.import_module(package_name)
    exports = list(package.__all__)
    assert exports == sorted(exports), f"{package_name}.__all__ not sorted"


def test_top_level_facade():
    import repro

    assert repro.__version__
    # the README quickstart names
    from repro.core import DetectionFramework, smoke_preset  # noqa: F401
    from repro.attacks.pricing import ZeroPriceAttack  # noqa: F401


def test_every_public_callable_has_docstring():
    """Documentation contract: every public item carries a doc comment."""
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in package.__all__:
            item = getattr(package, name)
            if not (callable(item) or isinstance(item, type)):
                continue  # typing aliases (e.g. Literal) carry no docstring
            if getattr(item, "__doc__", None) is None and not isinstance(
                item, type
            ):
                continue
            assert item.__doc__, f"{package_name}.{name} lacks a docstring"


def test_modules_have_docstrings():
    import pathlib

    import repro

    root = pathlib.Path(repro.__file__).parent
    for path in sorted(root.rglob("*.py")):
        module_name = (
            "repro." + str(path.relative_to(root)).replace("/", ".")[:-3]
        ).replace(".__init__", "")
        if module_name.endswith("__main__"):
            continue
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
