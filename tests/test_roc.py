"""Tests for the detector threshold sweep."""

import numpy as np
import pytest

from repro.attacks.hacking import MeterHackingProcess
from repro.core.config import GameConfig
from repro.detection.roc import (
    ThresholdOperatingPoint,
    ThresholdSweep,
    sweep_thresholds,
)
from repro.detection.single_event import (
    CommunityResponseSimulator,
    SingleEventDetector,
)
from repro.scheduling.game import Community
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=2, inner_iterations=1, ce_samples=8, ce_elites=2, ce_iterations=2
)


@pytest.fixture(scope="module")
def sweep() -> ThresholdSweep:
    community = Community(
        customers=(make_customer(0), make_customer(1)), counts=(5, 5)
    )
    simulator = CommunityResponseSimulator(community, config=FAST, seed=1)
    detector = SingleEventDetector(
        simulator,
        np.full(HORIZON, 0.03),
        threshold=0.1,
        margin_noise_std=0.02,
    )
    sampler = MeterHackingProcess(
        4,
        0.1,
        rng=np.random.default_rng(0),
        strength_range=(0.8, 1.0),
        window_hours=(3, 4),
        window_hour_range=(9, 21),
    )
    return sweep_thresholds(
        detector,
        np.full(HORIZON, 0.03),
        sampler,
        n_trials=10,
        rng=np.random.default_rng(1),
    )


class TestOperatingPoint:
    def test_youden(self):
        point = ThresholdOperatingPoint(threshold=0.1, tp_rate=0.9, fp_rate=0.2)
        assert point.youden_j == pytest.approx(0.7)


class TestSweep:
    def test_rates_monotone_in_threshold(self, sweep):
        """Raising the threshold can only lower both rates."""
        tps = [p.tp_rate for p in sweep.points]
        fps = [p.fp_rate for p in sweep.points]
        assert all(a >= b - 1e-12 for a, b in zip(tps, tps[1:]))
        assert all(a >= b - 1e-12 for a, b in zip(fps, fps[1:]))

    def test_margin_samples_recorded(self, sweep):
        assert sweep.benign_margins.shape == (10,)
        assert sweep.attacked_margins.shape == (10,)

    def test_strong_attacks_separate(self, sweep):
        """Full-strength wide attacks on a noiseless-ish detector give a
        high AUC."""
        assert sweep.auc() > 0.8

    def test_best_by_youden_is_maximal(self, sweep):
        best = sweep.best_by_youden()
        assert best.youden_j == max(p.youden_j for p in sweep.points)

    def test_auc_bounds(self, sweep):
        assert 0.0 <= sweep.auc() <= 1.0

    def test_custom_thresholds(self, sweep):
        """Extreme thresholds bracket the rates at 1 and 0."""
        lo = ThresholdOperatingPoint(
            threshold=-10.0,
            tp_rate=float(np.mean(sweep.attacked_margins > -10)),
            fp_rate=float(np.mean(sweep.benign_margins > -10)),
        )
        assert lo.tp_rate == 1.0 and lo.fp_rate == 1.0
