"""Tests for the detector threshold sweep."""

import numpy as np
import pytest

from repro.attacks.hacking import MeterHackingProcess
from repro.core.config import GameConfig
from repro.detection.roc import (
    ThresholdOperatingPoint,
    ThresholdSweep,
    sweep_thresholds,
)
from repro.detection.single_event import (
    CommunityResponseSimulator,
    SingleEventDetector,
)
from repro.scheduling.game import Community
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=2, inner_iterations=1, ce_samples=8, ce_elites=2, ce_iterations=2
)


@pytest.fixture(scope="module")
def sweep() -> ThresholdSweep:
    community = Community(
        customers=(make_customer(0), make_customer(1)), counts=(5, 5)
    )
    simulator = CommunityResponseSimulator(community, config=FAST, seed=1)
    detector = SingleEventDetector(
        simulator,
        np.full(HORIZON, 0.03),
        threshold=0.1,
        margin_noise_std=0.02,
    )
    sampler = MeterHackingProcess(
        4,
        0.1,
        rng=np.random.default_rng(0),
        strength_range=(0.8, 1.0),
        window_hours=(3, 4),
        window_hour_range=(9, 21),
    )
    return sweep_thresholds(
        detector,
        np.full(HORIZON, 0.03),
        sampler,
        n_trials=10,
        rng=np.random.default_rng(1),
    )


class TestOperatingPoint:
    def test_youden(self):
        point = ThresholdOperatingPoint(threshold=0.1, tp_rate=0.9, fp_rate=0.2)
        assert point.youden_j == pytest.approx(0.7)


class TestSweep:
    def test_rates_monotone_in_threshold(self, sweep):
        """Raising the threshold can only lower both rates."""
        tps = [p.tp_rate for p in sweep.points]
        fps = [p.fp_rate for p in sweep.points]
        assert all(a >= b - 1e-12 for a, b in zip(tps, tps[1:]))
        assert all(a >= b - 1e-12 for a, b in zip(fps, fps[1:]))

    def test_margin_samples_recorded(self, sweep):
        assert sweep.benign_margins.shape == (10,)
        assert sweep.attacked_margins.shape == (10,)

    def test_strong_attacks_separate(self, sweep):
        """Full-strength wide attacks on a noiseless-ish detector give a
        high AUC."""
        assert sweep.auc() > 0.8

    def test_best_by_youden_is_maximal(self, sweep):
        best = sweep.best_by_youden()
        assert best.youden_j == max(p.youden_j for p in sweep.points)

    def test_auc_bounds(self, sweep):
        assert 0.0 <= sweep.auc() <= 1.0

    def test_custom_thresholds(self, sweep):
        """Extreme thresholds bracket the rates at 1 and 0."""
        lo = ThresholdOperatingPoint(
            threshold=-10.0,
            tp_rate=float(np.mean(sweep.attacked_margins > -10)),
            fp_rate=float(np.mean(sweep.benign_margins > -10)),
        )
        assert lo.tp_rate == pytest.approx(1.0) and lo.fp_rate == pytest.approx(1.0)


def _sweep_from_margins(benign, attacked) -> ThresholdSweep:
    """Build a sweep directly from margin samples (no simulator)."""
    benign = np.asarray(benign, dtype=float)
    attacked = np.asarray(attacked, dtype=float)
    thresholds = np.linspace(
        min(benign.min(), attacked.min()), max(benign.max(), attacked.max()), 9
    )
    points = tuple(
        ThresholdOperatingPoint(
            threshold=float(t),
            tp_rate=float(np.mean(attacked > t)),
            fp_rate=float(np.mean(benign > t)),
        )
        for t in thresholds
    )
    return ThresholdSweep(points=points, benign_margins=benign, attacked_margins=attacked)


class TestDegenerate:
    """Single-class and constant-margin corner cases of the AUC/sweep math."""

    def test_identical_classes_auc_is_half(self):
        """All ties: the rank-statistic AUC must sit exactly at chance."""
        sweep = _sweep_from_margins([0.2] * 5, [0.2] * 5)
        assert sweep.auc() == pytest.approx(0.5)

    def test_perfect_separation_auc_is_one(self):
        sweep = _sweep_from_margins([0.0, 0.1, 0.2], [1.0, 1.1, 1.2])
        assert sweep.auc() == pytest.approx(1.0)

    def test_inverted_separation_auc_is_zero(self):
        sweep = _sweep_from_margins([1.0, 1.1, 1.2], [0.0, 0.1, 0.2])
        assert sweep.auc() == pytest.approx(0.0)

    def test_single_sample_per_class(self):
        sweep = _sweep_from_margins([0.1], [0.4])
        assert sweep.auc() == pytest.approx(1.0)
        assert 0.0 <= sweep.best_by_youden().youden_j <= 1.0

    def test_constant_margins_rates_degenerate_cleanly(self):
        """With zero margin spread every threshold is the same cut: rates
        are 0/1, never NaN, and Youden's J stays bounded."""
        sweep = _sweep_from_margins([0.3] * 4, [0.3] * 4)
        for point in sweep.points:
            assert point.tp_rate in (0.0, 1.0)
            assert point.fp_rate in (0.0, 1.0)
            assert point.tp_rate == point.fp_rate  # same samples, same cut
            assert np.isfinite(point.youden_j)

    def test_sweep_rejects_zero_trials(self, sweep):
        detector_prices = np.full(HORIZON, 0.03)
        community = Community(
            customers=(make_customer(0), make_customer(1)), counts=(5, 5)
        )
        simulator = CommunityResponseSimulator(community, config=FAST, seed=1)
        detector = SingleEventDetector(simulator, detector_prices, threshold=0.1)
        sampler = MeterHackingProcess(4, 0.1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="n_trials"):
            sweep_thresholds(detector, detector_prices, sampler, n_trials=0)
