"""CLI contract of ``repro-lint`` plus the repo-wide meta-test.

The meta-test is the acceptance gate of the static-analysis subsystem:
``repro-lint src tests`` must exit 0 on this repository itself — every
remaining hit is either fixed or carries an explicit
``# repro: noqa[RULE]`` with its justification.
"""

import json
from pathlib import Path

import pytest

import repro.cli
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_cli(*argv: str, capsys) -> tuple[int, str]:
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestCliContract:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("def add(a: int, b: int) -> int:\n    return a + b\n")
        code, out = run_cli(str(target), capsys=capsys)
        assert code == 0
        assert "no violations" in out

    def test_violations_exit_one_with_positions(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(
            "import numpy as np\n"
            "def draw() -> bool:\n"
            "    return float(np.random.rand()) == 0.5\n"
        )
        code, out = run_cli(str(target), capsys=capsys)
        assert code == 1
        assert "DET001" in out
        assert "FLT001" in out
        assert "dirty.py:3" in out

    def test_json_format_parses_and_counts(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("x = 1.0\nassert x == 1.0\n")
        code, out = run_cli(str(target), "--format", "json", capsys=capsys)
        payload = json.loads(out)
        assert code == 1
        assert payload["exit_code"] == 1
        assert payload["counts"] == {"FLT001": 1}

    def test_select_limits_rules(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(
            "import numpy as np\n"
            "def draw() -> bool:\n"
            "    return float(np.random.rand()) == 0.5\n"
        )
        code, out = run_cli(str(target), "--select", "DET001", capsys=capsys)
        assert code == 1
        assert "DET001" in out
        assert "FLT001" not in out

    def test_ignore_skips_rules(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("x = 1.0\nassert x == 1.0\n")
        code, _ = run_cli(str(target), "--ignore", "FLT001", capsys=capsys)
        assert code == 0

    def test_unknown_rule_id_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main([str(target), "--select", "NOPE999"]) == 2

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["definitely/not/a/path"]) == 2

    def test_list_rules_names_all_six(self, capsys):
        code, out = run_cli("--list-rules", capsys=capsys)
        assert code == 0
        for rule_id in ("DET001", "DET002", "DET003", "CKPT001", "API001", "FLT001"):
            assert rule_id in out

    def test_syntax_error_reported_not_crashed(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        code, out = run_cli(str(target), capsys=capsys)
        assert code == 1
        assert "E999" in out


class TestReproCliIntegration:
    def test_repro_lint_subcommand_dispatches(self, capsys):
        code = repro.cli.main(["lint", "--list-rules"])
        assert code == 0
        assert "DET001" in capsys.readouterr().out


class TestMetaLint:
    def test_repo_is_lint_clean(self, capsys):
        """`repro-lint src tests` exits 0 on the repository itself."""
        code = main(
            [
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "tests"),
                "--config",
                str(REPO_ROOT / "pyproject.toml"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, f"repo must be lint-clean, got:\n{out}"

    def test_repo_scan_covers_the_tree(self, capsys):
        code, out = run_cli(
            str(REPO_ROOT / "src"),
            str(REPO_ROOT / "tests"),
            "--config",
            str(REPO_ROOT / "pyproject.toml"),
            "--format",
            "json",
            capsys=capsys,
        )
        payload = json.loads(out)
        assert code == 0
        # The tree holds well over a hundred modules; a collapse of the
        # file walker should trip this long before the rules would.
        assert payload["files_scanned"] > 100
