"""Tests for forecast-error metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.errors import mae, mape, rmse, smape


class TestRmse:
    def test_zero_for_perfect(self):
        a = np.array([1.0, 2.0, 3.0])
        assert rmse(a, a) == pytest.approx(0.0)

    def test_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            rmse([np.nan], [1.0])

    @given(
        arrays(np.float64, 12, elements=st.floats(-1e3, 1e3)),
        arrays(np.float64, 12, elements=st.floats(-1e3, 1e3)),
    )
    def test_rmse_at_least_mae(self, a, b):
        """RMSE >= MAE by Jensen's inequality."""
        assert rmse(a, b) >= mae(a, b) - 1e-9


class TestMae:
    def test_known_value(self):
        assert mae([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)

    def test_symmetry(self):
        a = np.array([1.0, 5.0])
        b = np.array([2.0, 3.0])
        assert mae(a, b) == mae(b, a)


class TestMape:
    def test_known_value(self):
        assert mape([2.0, 4.0], [1.0, 5.0]) == pytest.approx((0.5 + 0.25) / 2)

    def test_rejects_zero_actual(self):
        with pytest.raises(ValueError, match="smape"):
            mape([0.0, 1.0], [1.0, 1.0])


class TestSmape:
    def test_zero_for_perfect(self):
        assert smape([1.0, 2.0], [1.0, 2.0]) == pytest.approx(0.0)

    def test_bounded_by_two(self):
        assert smape([1.0], [-1.0]) <= 2.0

    def test_handles_zeros(self):
        assert smape([0.0, 0.0], [0.0, 0.0]) == pytest.approx(0.0)

    @given(
        arrays(np.float64, 8, elements=st.floats(0.0, 100.0)),
        arrays(np.float64, 8, elements=st.floats(0.0, 100.0)),
    )
    def test_smape_range(self, a, b):
        assert 0.0 <= smape(a, b) <= 2.0 + 1e-9
