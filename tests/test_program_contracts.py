"""CTR fixture tests: serializer key contracts (CTR001) and the error
taxonomy (CTR002), including the cross-module inheritance case."""

import textwrap

from repro.analysis.engine import LintConfig
from repro.analysis.program import ProgramAnalyzer, SymbolTable


def check(sources, *, select=None):
    config = LintConfig()
    if select is not None:
        config.select = frozenset({select})
    table = SymbolTable()
    for display, src in sources.items():
        module = (
            display.removeprefix("src/").removesuffix(".py").replace("/", ".")
        )
        table.add_source(textwrap.dedent(src), module=module, display=display)
    return ProgramAnalyzer(config=config).check_table(table)


class TestCTR001StateKeys:
    def test_reader_key_never_written_flagged(self):
        violations = check(
            {
                "src/repro/fake_box.py": """\
    class Box:
        def __init__(self, a: int, b: int) -> None:
            self.a = a
            self.b = b

        def to_dict(self) -> dict:
            return {"a": self.a}

        @classmethod
        def from_dict(cls, payload: dict) -> "Box":
            return cls(payload["a"], payload["b"])
    """
            },
            select="CTR001",
        )
        assert [v.rule for v in violations] == ["CTR001"]
        assert "reads key 'b'" in violations[0].message

    def test_writer_key_never_read_flagged(self):
        violations = check(
            {
                "src/repro/fake_box.py": """\
    class Tracker:
        def __init__(self) -> None:
            self.count = 0
            self.history = []

        def state_dict(self) -> dict:
            return {"count": self.count, "history": list(self.history)}

        def load_state(self, state: dict) -> None:
            self.count = int(state["count"])
    """
            },
            select="CTR001",
        )
        assert [v.rule for v in violations] == ["CTR001"]
        assert "writes key 'history'" in violations[0].message
        assert "never reads" in violations[0].message

    def test_matching_keys_clean(self):
        violations = check(
            {
                "src/repro/fake_box.py": """\
    class Box:
        def __init__(self, a: int, b: int) -> None:
            self.a = a
            self.b = b

        def to_dict(self) -> dict:
            return {"a": self.a, "b": self.b}

        @classmethod
        def from_dict(cls, payload: dict) -> "Box":
            return cls(int(payload["a"]), int(payload.get("b", 0)))
    """
            },
            select="CTR001",
        )
        assert violations == []

    def test_conditional_subscript_store_counts_as_written(self):
        violations = check(
            {
                "src/repro/fake_box.py": """\
    class Spec:
        def __init__(self, base: int, extra=None) -> None:
            self.base = base
            self.extra = extra

        def to_dict(self) -> dict:
            payload = {"base": self.base}
            if self.extra is not None:
                payload["extra"] = self.extra
            return payload

        @classmethod
        def from_dict(cls, payload: dict) -> "Spec":
            return cls(int(payload["base"]), payload.get("extra"))
    """
            },
            select="CTR001",
        )
        assert violations == []

    def test_dynamic_reader_opts_out(self):
        violations = check(
            {
                "src/repro/fake_box.py": """\
    class Loose:
        def __init__(self, **kw) -> None:
            self.kw = kw

        def to_dict(self) -> dict:
            return {"only": 1}

        @classmethod
        def from_dict(cls, payload: dict) -> "Loose":
            return cls(**payload)
    """
            },
            select="CTR001",
        )
        assert violations == []

    def test_one_way_dto_allowed(self):
        violations = check(
            {
                "src/repro/fake_box.py": """\
    class Stats:
        def __init__(self, n: int) -> None:
            self.n = n

        def to_dict(self) -> dict:
            return {"n": self.n, "derived": self.n * 2}
    """
            },
            select="CTR001",
        )
        assert violations == []


class TestCTR002ErrorTaxonomy:
    def test_exception_outside_taxonomy_flagged(self):
        violations = check(
            {
                "src/repro/fake_err.py": """\
    class RogueError(Exception):
        pass
    """
            },
            select="CTR002",
        )
        assert [v.rule for v in violations] == ["CTR002"]
        assert "RogueError" in violations[0].message

    def test_value_error_subclass_clean(self):
        violations = check(
            {
                "src/repro/fake_err.py": """\
    class GoodError(ValueError):
        pass
    """
            },
            select="CTR002",
        )
        assert violations == []

    def test_cross_module_taxonomy_chain_resolved(self):
        """ChildError's ValueError ancestry is only visible by chasing
        RootError through another module — the interprocedural case."""
        violations = check(
            {
                "src/repro/fake_err_root.py": """\
    class RootError(ValueError):
        pass
    """,
                "src/repro/fake_err_leaf.py": """\
    from repro.fake_err_root import RootError

    class ChildError(RootError):
        pass

    class OrphanError(RuntimeError):
        pass
    """,
            },
            select="CTR002",
        )
        assert [v.rule for v in violations] == ["CTR002"]
        assert "OrphanError" in violations[0].message
        assert violations[0].path == "src/repro/fake_err_leaf.py"

    def test_non_exception_classes_ignored(self):
        violations = check(
            {
                "src/repro/fake_err.py": """\
    class Widget:
        pass

    class ErrorBudget:
        pass
    """
            },
            select="CTR002",
        )
        assert violations == []

    def test_outside_src_repro_not_scoped(self):
        violations = check(
            {
                "tests/fake_err_test.py": """\
    class HelperError(Exception):
        pass
    """
            },
            select="CTR002",
        )
        assert violations == []
