"""Tests for the battery problem and its cross-entropy optimizer."""

import numpy as np
import pytest

from repro.core.config import BatteryConfig
from repro.netmetering.battery import validate_trajectory
from repro.netmetering.cost import NetMeteringCostModel
from repro.optimization.battery import BatteryOptimizer, BatteryProblem

H = 6
SPEC = BatteryConfig(
    capacity_kwh=2.0, initial_kwh=0.0, max_charge_kw=1.0, max_discharge_kw=1.0
)


def make_problem(
    prices=(0.01, 0.01, 0.05, 0.05, 0.01, 0.01),
    load=(1.0,) * H,
    pv=(0.0,) * H,
    others=(10.0,) * H,
    spec=SPEC,
    multiplicity=1,
) -> BatteryProblem:
    return BatteryProblem(
        load=load,
        pv=pv,
        others_trading=others,
        spec=spec,
        cost_model=NetMeteringCostModel(prices=prices, sellback_divisor=2.0),
        multiplicity=multiplicity,
    )


class TestBatteryProblem:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="lengths"):
            BatteryProblem(
                load=(1.0,) * H,
                pv=(0.0,) * (H - 1),
                others_trading=(1.0,) * H,
                spec=SPEC,
                cost_model=NetMeteringCostModel(prices=(0.01,) * H),
            )

    def test_horizon_mismatch(self):
        with pytest.raises(ValueError, match="horizon"):
            BatteryProblem(
                load=(1.0,) * H,
                pv=(0.0,) * H,
                others_trading=(1.0,) * H,
                spec=SPEC,
                cost_model=NetMeteringCostModel(prices=(0.01,) * (H + 1)),
            )

    def test_trading_identity(self):
        problem = make_problem()
        decision = np.array([1.0, 2.0, 1.0, 0.0, 0.0, 0.0])
        y = problem.trading(decision)
        # y = load + diff(b) - pv with b = [0, decision...]
        expected = np.array([2.0, 2.0, 0.0, 0.0, 1.0, 1.0])
        np.testing.assert_allclose(y, expected)

    def test_cost_matches_batch(self):
        problem = make_problem()
        decisions = np.array(
            [
                [1.0, 2.0, 1.0, 0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                [0.5, 1.0, 0.5, 0.5, 0.0, 0.5],
            ]
        )
        batch = problem.cost_batch(decisions)
        singles = np.array([problem.cost(d) for d in decisions])
        np.testing.assert_allclose(batch, singles)

    def test_cost_matches_batch_with_multiplicity(self):
        problem = make_problem(multiplicity=4)
        decisions = np.array([[0.5, 1.0, 0.5, 0.0, 0.5, 0.5]])
        np.testing.assert_allclose(
            problem.cost_batch(decisions), [problem.cost(decisions[0])]
        )

    def test_projection_feasible(self):
        problem = make_problem()
        raw = np.array([5.0, -1.0, 3.0, 0.0, 9.0, -2.0])
        projected = problem.project(raw)
        validate_trajectory(problem.full_trajectory(projected), SPEC)

    def test_rejects_bad_multiplicity(self):
        with pytest.raises(ValueError, match="multiplicity"):
            make_problem(multiplicity=0)


class TestBatteryOptimizer:
    def test_arbitrage_improves_on_idle(self, rng):
        """Cheap-then-expensive prices: charging early must beat idling."""
        problem = make_problem()
        optimizer = BatteryOptimizer(n_samples=48, n_elites=8, n_iterations=20)
        result = optimizer.optimize(problem, rng=rng)
        idle_cost = problem.cost(np.zeros(H))
        assert result.fun < idle_cost
        # stored energy before the expensive block
        trajectory = problem.full_trajectory(result.x)
        assert trajectory[2] > 0.3

    def test_zero_capacity_short_circuit(self, rng):
        spec = BatteryConfig(capacity_kwh=0.0, initial_kwh=0.0)
        problem = make_problem(spec=spec)
        result = BatteryOptimizer().optimize(problem, rng=rng)
        np.testing.assert_allclose(result.x, 0.0)
        assert result.converged

    def test_result_is_feasible(self, rng):
        problem = make_problem()
        result = BatteryOptimizer(n_samples=24, n_iterations=8).optimize(
            problem, rng=rng
        )
        validate_trajectory(problem.full_trajectory(result.x), SPEC)

    def test_pv_storage_for_evening(self, rng):
        """Midday PV with an evening-expensive tariff: store then discharge."""
        prices = (0.01, 0.01, 0.01, 0.06, 0.06, 0.06)
        pv = (0.0, 1.5, 1.5, 0.0, 0.0, 0.0)
        problem = make_problem(prices=prices, pv=pv, load=(0.5,) * H)
        result = BatteryOptimizer(n_samples=64, n_elites=8, n_iterations=25).optimize(
            problem, rng=rng
        )
        trajectory = problem.full_trajectory(result.x)
        assert trajectory[3] > 0.5  # charged from PV
        assert trajectory[-1] < trajectory[3]  # discharged later

    def test_warm_start_used(self, rng):
        problem = make_problem()
        good = np.array([1.0, 2.0, 1.0, 0.0, 0.0, 0.0])
        result = BatteryOptimizer(n_samples=16, n_iterations=3).optimize(
            problem, x0=good, rng=rng
        )
        assert result.fun <= problem.cost(good) + 1e-9
