"""Tests for the content-addressed game-solution cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.counters import PERF
from repro.simulation.cache import (
    GameSolutionCache,
    community_fingerprint,
    game_config_fingerprint,
    solution_key,
    solve_context_key,
)
from repro.detection.single_event import CommunityResponseSimulator
from repro.scheduling.game import SchedulingGame
from repro.simulation.scenario import run_long_term_scenario


@pytest.fixture
def prices(small_community):
    return np.linspace(0.01, 0.05, small_community.horizon)


def _solve(community, prices, *, seed=3):
    game = SchedulingGame(community, np.maximum(prices, 0.0))
    return game.solve(rng=np.random.default_rng(seed))


def _assert_results_equal(a, b):
    assert a.rounds == b.rounds
    assert a.converged == b.converged
    assert a.counts == b.counts
    assert a.residuals == pytest.approx(b.residuals)
    np.testing.assert_array_equal(a.grid_demand, b.grid_demand)
    for state_a, state_b in zip(a.states, b.states):
        assert state_a.battery_decision == state_b.battery_decision
        for sched_a, sched_b in zip(state_a.schedules, state_b.schedules):
            assert sched_a.power == sched_b.power


class TestKeys:
    def test_community_fingerprint_stable(self, small_community):
        assert community_fingerprint(small_community) == community_fingerprint(
            small_community
        )

    def test_fingerprint_sees_net_metering(self, small_community):
        stripped = small_community.without_net_metering()
        assert community_fingerprint(stripped) != community_fingerprint(
            small_community
        )

    def test_config_fingerprint_sees_ce_knobs(self, tiny_config):
        base = tiny_config.game
        changed = type(base)(
            max_rounds=base.max_rounds,
            inner_iterations=base.inner_iterations,
            convergence_tol=base.convergence_tol,
            hysteresis=base.hysteresis,
            ce_samples=base.ce_samples + 1,
            ce_elites=base.ce_elites,
            ce_iterations=base.ce_iterations,
            ce_smoothing=base.ce_smoothing,
        )
        assert game_config_fingerprint(base) != game_config_fingerprint(changed)

    def test_context_key_sees_seed_and_divisor(self, small_community, tiny_config):
        base = solve_context_key(
            small_community, tiny_config.game, sellback_divisor=2.0, seed=3
        )
        assert base != solve_context_key(
            small_community, tiny_config.game, sellback_divisor=3.0, seed=3
        )
        assert base != solve_context_key(
            small_community, tiny_config.game, sellback_divisor=2.0, seed=4
        )

    def test_solution_key_rounds_prices(self, prices):
        # Sub-nano-dollar perturbations collapse onto one key, matching
        # the historical per-simulator memoization granularity.
        assert solution_key("ctx", prices) == solution_key("ctx", prices + 1e-12)
        assert solution_key("ctx", prices) != solution_key("ctx", prices + 1e-6)


class TestGameSolutionCache:
    def test_hit_returns_same_object(self, small_community, prices):
        cache = GameSolutionCache()
        first = cache.get_or_solve("k", lambda: _solve(small_community, prices))
        second = cache.get_or_solve(
            "k", lambda: pytest.fail("must not re-solve")
        )
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_perf_counters_exercised(self, small_community, prices):
        cache = GameSolutionCache()
        before_miss = PERF.get("cache.misses")
        before_hit = PERF.get("cache.hits")
        cache.get_or_solve("k", lambda: _solve(small_community, prices))
        cache.get_or_solve("k", lambda: _solve(small_community, prices))
        assert PERF.get("cache.misses") == before_miss + 1
        assert PERF.get("cache.hits") == before_hit + 1

    def test_lru_eviction(self, small_community, prices):
        cache = GameSolutionCache(max_entries=2)
        result = _solve(small_community, prices)
        cache.get_or_solve("a", lambda: result)
        cache.get_or_solve("b", lambda: result)
        cache.get_or_solve("a", lambda: result)  # refresh "a"
        cache.get_or_solve("c", lambda: result)  # evicts "b"
        assert cache.size == 2
        solved = []
        cache.get_or_solve("b", lambda: solved.append(1) or result)
        assert solved  # "b" was evicted and re-solved

    def test_clear_resets(self, small_community, prices):
        cache = GameSolutionCache()
        cache.get_or_solve("k", lambda: _solve(small_community, prices))
        cache.clear()
        assert (cache.size, cache.hits, cache.misses) == (0, 0, 0)

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            GameSolutionCache(max_entries=0)

    def test_disk_round_trip(self, small_community, prices, tmp_path):
        writer = GameSolutionCache(directory=tmp_path)
        original = writer.get_or_solve(
            "k", lambda: _solve(small_community, prices), community=small_community
        )
        assert (tmp_path / "k.npz").exists()
        assert (tmp_path / "manifest.json").exists()

        reader = GameSolutionCache(directory=tmp_path)  # cold memory tier
        reloaded = reader.get_or_solve(
            "k",
            lambda: pytest.fail("must load from disk"),
            community=small_community,
        )
        assert reader.hits == 1
        _assert_results_equal(original, reloaded)


class TestSimulatorSharing:
    def test_two_simulators_share_solutions(self, small_community, prices):
        shared = GameSolutionCache()
        sim_a = CommunityResponseSimulator(small_community, seed=3, cache=shared)
        sim_b = CommunityResponseSimulator(small_community, seed=3, cache=shared)
        first = sim_a.response(prices)
        second = sim_b.response(prices)
        assert second is first
        assert shared.hits == 1
        assert sim_a.cache_size == sim_b.cache_size == 1

    def test_different_seed_does_not_collide(self, small_community, prices):
        shared = GameSolutionCache()
        sim_a = CommunityResponseSimulator(small_community, seed=3, cache=shared)
        sim_b = CommunityResponseSimulator(small_community, seed=4, cache=shared)
        sim_a.response(prices)
        sim_b.response(prices)
        assert shared.misses == 2


class TestScenarioWithCache:
    def test_cached_run_identical_to_cold(self, tiny_config):
        kwargs = dict(detector="aware", n_slots=24, calibration_trials=3, seed=5)
        cold = run_long_term_scenario(tiny_config, cache=GameSolutionCache(), **kwargs)

        warm_cache = GameSolutionCache()
        run_long_term_scenario(tiny_config, cache=warm_cache, **kwargs)
        assert warm_cache.misses > 0
        warm = run_long_term_scenario(tiny_config, cache=warm_cache, **kwargs)
        assert warm_cache.hits > 0

        np.testing.assert_array_equal(cold.truth, warm.truth)
        np.testing.assert_array_equal(cold.flags, warm.flags)
        np.testing.assert_array_equal(cold.realized_grid, warm.realized_grid)
        assert cold.tp_rate == warm.tp_rate
        assert cold.fp_rate == warm.fp_rate
