"""Tests for detection-aware attack planning."""

import numpy as np
import pytest

from repro.attacks.stealth import StealthPlan, plan_stealthy_attack
from repro.billing.realtime import RealTimePriceModel
from repro.core.config import GameConfig, PricingConfig
from repro.detection.single_event import CommunityResponseSimulator
from repro.scheduling.game import Community
from tests.conftest import HORIZON, make_customer

FAST = GameConfig(
    max_rounds=2, inner_iterations=1, ce_samples=8, ce_elites=2, ce_iterations=2
)


@pytest.fixture(scope="module")
def setup():
    community = Community(
        customers=(make_customer(0), make_customer(1)), counts=(6, 6)
    )
    simulator = CommunityResponseSimulator(community, config=FAST, seed=1)
    price_model = RealTimePriceModel(
        config=PricingConfig(), n_customers=12, surge_exponent=1.5
    )
    return simulator, price_model


class TestPlanStealthyAttack:
    def test_respects_threshold(self, setup):
        simulator, price_model = setup
        prices = np.full(HORIZON, 0.03)
        plan = plan_stealthy_attack(
            simulator,
            prices,
            threshold=0.3,
            price_model=price_model,
            strengths=np.array([0.2, 0.5, 0.9]),
            window_starts=np.array([10, 18]),
        )
        assert plan.evaluated == 6
        assert plan.margin <= 0.3

    def test_zero_threshold_finds_nothing_damaging(self, setup):
        """With no headroom, only margin-free attacks qualify — and they
        do no damage, so the plan's damage is ~0."""
        simulator, price_model = setup
        prices = np.full(HORIZON, 0.03)
        plan = plan_stealthy_attack(
            simulator,
            prices,
            threshold=0.0,
            price_model=price_model,
            strengths=np.array([0.5, 0.9]),
            window_starts=np.array([18]),
        )
        assert plan.bill_damage <= 0.05

    def test_larger_threshold_allows_more_damage(self, setup):
        simulator, price_model = setup
        prices = np.full(HORIZON, 0.03)
        kwargs = dict(
            price_model=price_model,
            strengths=np.array([0.2, 0.4, 0.6, 0.8, 1.0]),
            window_starts=np.array([8, 12, 18]),
        )
        tight = plan_stealthy_attack(simulator, prices, threshold=0.05, **kwargs)
        loose = plan_stealthy_attack(simulator, prices, threshold=2.0, **kwargs)
        assert loose.bill_damage >= tight.bill_damage - 1e-9

    def test_safety_margin_tightens(self, setup):
        simulator, price_model = setup
        prices = np.full(HORIZON, 0.03)
        kwargs = dict(
            price_model=price_model,
            strengths=np.array([0.3, 0.6, 0.9]),
            window_starts=np.array([12, 18]),
        )
        plain = plan_stealthy_attack(simulator, prices, threshold=0.4, **kwargs)
        cautious = plan_stealthy_attack(
            simulator, prices, threshold=0.4, safety_margin=0.35, **kwargs
        )
        assert cautious.margin <= plain.margin + 1e-9

    def test_validation(self, setup):
        simulator, price_model = setup
        with pytest.raises(ValueError):
            plan_stealthy_attack(
                simulator,
                np.full(HORIZON, 0.03),
                threshold=-0.1,
                price_model=price_model,
            )

    def test_plan_found_flag(self):
        plan = StealthPlan(attack=None, margin=0.0, bill_damage=0.0, evaluated=4)
        assert not plan.found
