"""Tests for the customer and strategy-profile model."""

import numpy as np
import pytest

from repro.core.config import BatteryConfig
from repro.scheduling.appliance import ApplianceSchedule
from repro.scheduling.customer import Customer, CustomerState
from tests.conftest import HORIZON, make_customer


def idle_state(customer: Customer) -> CustomerState:
    """All appliances off-pattern-minimal state used as a fixture base."""
    schedules = []
    for task in customer.tasks:
        power = np.zeros(HORIZON)
        # run at max power from the window start until the energy is met
        remaining = task.energy_kwh
        for h in range(task.earliest_start, task.deadline + 1):
            step = min(task.max_power, remaining)
            # snap to an allowed level
            level = max(p for p in task.power_levels if p <= step + 1e-9)
            power[h] = level
            remaining -= level
            if remaining <= 1e-9:
                break
        schedules.append(ApplianceSchedule(task=task, power=tuple(power)))
    return CustomerState(
        customer=customer,
        schedules=tuple(schedules),
        battery_decision=tuple(
            np.full(HORIZON, customer.battery.initial_kwh)
        ),
    )


class TestCustomer:
    def test_basic_properties(self, small_customer):
        assert small_customer.horizon == HORIZON
        assert small_customer.total_task_energy == pytest.approx(4.5)
        assert not small_customer.has_net_metering

    def test_nm_customer(self, nm_customer):
        assert nm_customer.has_net_metering
        stripped = nm_customer.without_net_metering()
        assert not stripped.has_net_metering
        np.testing.assert_array_equal(stripped.pv_array, 0.0)
        assert stripped.battery.capacity_kwh == pytest.approx(0.0)

    def test_base_load_defaults_to_zero(self):
        customer = make_customer(base=0.0)
        np.testing.assert_array_equal(customer.base_load_array, 0.0)

    def test_rejects_empty_tasks(self, battery_spec):
        with pytest.raises(ValueError, match="task"):
            Customer(customer_id=0, tasks=(), battery=battery_spec, pv=(0.0,) * 24)

    def test_rejects_negative_pv(self, small_customer):
        with pytest.raises(ValueError, match="PV"):
            Customer(
                customer_id=0,
                tasks=small_customer.tasks,
                battery=small_customer.battery,
                pv=(-1.0,) * 24,
            )

    def test_rejects_base_load_length(self, small_customer):
        with pytest.raises(ValueError, match="base_load"):
            Customer(
                customer_id=0,
                tasks=small_customer.tasks,
                battery=small_customer.battery,
                pv=(0.0,) * 24,
                base_load=(0.5,) * 23,
            )


class TestCustomerState:
    def test_load_includes_base(self, small_customer):
        state = idle_state(small_customer)
        load = state.load
        assert load.shape == (HORIZON,)
        # base 0.5 everywhere plus scheduled appliance energy
        assert np.all(load >= 0.5 - 1e-9)
        assert load.sum() == pytest.approx(
            0.5 * HORIZON + small_customer.total_task_energy
        )

    def test_trading_equals_load_without_nm(self, small_customer):
        state = idle_state(small_customer)
        np.testing.assert_allclose(state.trading, state.load)

    def test_trading_subtracts_pv(self, nm_customer):
        state = idle_state(nm_customer)
        np.testing.assert_allclose(
            state.trading, state.load - nm_customer.pv_array, atol=1e-12
        )

    def test_battery_trajectory_prepends_initial(self, nm_customer):
        state = idle_state(nm_customer)
        trajectory = state.battery_trajectory
        assert trajectory.shape == (HORIZON + 1,)
        assert trajectory[0] == nm_customer.battery.initial_kwh

    def test_with_schedule_replaces(self, small_customer):
        state = idle_state(small_customer)
        new_power = np.zeros(HORIZON)
        new_power[10] = 1.0
        new_power[11] = 0.5
        new_schedule = ApplianceSchedule(
            task=small_customer.tasks[0], power=tuple(new_power)
        )
        updated = state.with_schedule(0, new_schedule)
        assert updated.schedules[0] is new_schedule
        assert updated.schedules[1] is state.schedules[1]

    def test_with_schedule_bad_index(self, small_customer):
        state = idle_state(small_customer)
        with pytest.raises(IndexError):
            state.with_schedule(5, state.schedules[0])

    def test_with_battery_replaces(self, nm_customer):
        state = idle_state(nm_customer)
        decision = np.linspace(0.5, 1.0, HORIZON)
        updated = state.with_battery(decision)
        np.testing.assert_allclose(updated.battery_decision, decision)

    def test_schedule_count_validation(self, small_customer):
        state = idle_state(small_customer)
        with pytest.raises(ValueError, match="schedules"):
            CustomerState(
                customer=small_customer,
                schedules=state.schedules[:1],
                battery_decision=state.battery_decision,
            )

    def test_battery_length_validation(self, small_customer):
        state = idle_state(small_customer)
        with pytest.raises(ValueError, match="battery"):
            CustomerState(
                customer=small_customer,
                schedules=state.schedules,
                battery_decision=(0.0,) * 5,
            )
