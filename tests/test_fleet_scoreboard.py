"""Fleet resilience scoreboards: exact merge, campaign mode, resume.

The fleet scoreboard contract extends the fleet ≡ K-solo bitwise
invariant to the derived resilience metrics: the merged fleet report
must equal :func:`merge_reports` over the K solo reports *exactly* —
including across a mid-run checkpoint cut (scoreboards are rebuilt from
the restored timeline, never serialized) and under seeded fault
injection (gap slots scoring against availability identically in both
arms).  Campaign mode (``announce_attacks``) additionally pins family
attribution through the ground-truth ledger end to end.
"""

import pytest

from repro.faults.plan import builtin_plan
from repro.fleet.checkpoint import resume_fleet, save_fleet_checkpoint
from repro.fleet.engine import build_fleet
from repro.fleet.loadgen import LoadGenerator
from repro.obs.audit import AuditTrail
from repro.obs.scoreboard import attach_scoreboard, merge_reports
from repro.simulation.cache import GameSolutionCache

FLEET_SEED = 5
N_DAYS = 2


def _generator(fleet_config, n_communities, *, faults=None, campaign=False):
    return LoadGenerator(
        fleet_config,
        n_communities=n_communities,
        n_days=N_DAYS,
        seed=FLEET_SEED,
        faults=faults,
        announce_attacks=campaign,
    )


def _solo_reports(specs) -> dict[str, dict]:
    """Per-community reports from standalone engine runs."""
    reports = {}
    for spec in specs:
        engine = spec.build_engine(cache=GameSolutionCache())
        board = attach_scoreboard(engine.pipeline)
        engine.run()
        assert engine.exhausted
        reports[spec.community_id] = board.report()
    return reports


def _assert_fleet_equals_solo(fleet, specs):
    scoreboard = fleet.scoreboard()
    expected = _solo_reports(specs)
    assert scoreboard["communities"] == expected
    assert scoreboard["fleet"] == merge_reports(
        [expected[cid] for cid in sorted(expected)]
    )
    # Shard blocks are merges of exactly their own communities.
    for worker in fleet.workers:
        assert scoreboard["shards"][worker.shard_id] == merge_reports(
            [expected[cid] for cid in worker.community_ids]
        )
    return scoreboard


@pytest.mark.parametrize("campaign", [False, True])
def test_fleet_scoreboard_equals_merged_solo(fleet_config, campaign):
    specs = _generator(fleet_config, 3, campaign=campaign).specs()
    fleet = build_fleet(specs, n_shards=2, cache=GameSolutionCache())
    assert fleet.advance().exhausted
    scoreboard = _assert_fleet_equals_solo(fleet, specs)
    families = set(scoreboard["fleet"]["families"])
    if campaign:
        # Announced windows attribute every episode to a real family.
        assert "unattributed" not in families
        assert families
    else:
        assert families <= {"unattributed"}


def test_campaign_mode_is_bitwise_identical_to_window(fleet_config):
    """Announcing the attack changes the ledger, never the readings."""
    window = _generator(fleet_config, 2, campaign=False).specs()
    campaign = _generator(fleet_config, 2, campaign=True).specs()
    for w_spec, c_spec in zip(window, campaign):
        w_engine = w_spec.build_engine(cache=GameSolutionCache())
        c_engine = c_spec.build_engine(cache=GameSolutionCache())
        w_engine.run()
        c_engine.run()
        assert [d.to_dict() for d in c_engine.timeline] == [
            d.to_dict() for d in w_engine.timeline
        ]
        # The campaign arm carries the ledger the window arm lacks.
        assert c_engine.pipeline.occurrences
        assert not w_engine.pipeline.occurrences


def test_campaign_envelopes_match_direct_feed(fleet_config):
    """``source_for`` mirrors the engine's campaign conversion."""
    generator = _generator(fleet_config, 3, campaign=True)
    specs = generator.specs()

    fleet = build_fleet(specs, n_shards=2, cache=GameSolutionCache())
    for envelope in generator.envelopes(specs):
        fleet.ingest_envelope(envelope)

    expected = {}
    for spec in specs:
        engine = spec.build_engine(cache=GameSolutionCache())
        board = attach_scoreboard(engine.pipeline)
        source = generator.source_for(spec)
        while not source.exhausted:
            event = source.next_event()
            if event is not None:
                engine.pipeline.handle(event)
        expected[spec.community_id] = board.report()
    assert fleet.scoreboard()["communities"] == expected
    merged = fleet.scoreboard()["fleet"]
    assert "unattributed" not in merged["families"]


def test_cut_resume_scoreboard_and_audit_backfill(fleet_config, tmp_path):
    """Mid-run cut: rebuilt scoreboards and backfilled audit trails.

    Scoreboards are intentionally *not* checkpointed — the resumed
    worker rebuilds them from the restored timeline + ledger, so the
    resumed fleet's reports must equal the uncut run's bitwise.  Audit
    trails attached after the resume backfill minimal ``restored``
    records for the pre-cut verdicts and then record post-cut slots
    identically to the uncut run.
    """
    specs = _generator(fleet_config, 4, campaign=True).specs()
    fleet = build_fleet(specs, n_shards=2, cache=GameSolutionCache())
    for cid in fleet.community_ids:
        pipeline = fleet.engine_of(cid).pipeline
        pipeline.audit = AuditTrail()
    fleet.advance(max_ticks=17)  # mid-day cut, nowhere near a boundary
    save_fleet_checkpoint(fleet, tmp_path)

    resumed = resume_fleet(tmp_path, cache=GameSolutionCache())
    for cid in resumed.community_ids:
        pipeline = resumed.engine_of(cid).pipeline
        assert pipeline.audit is None
        pipeline.audit = AuditTrail()
        pipeline.audit.backfill(pipeline.timeline)

    assert fleet.advance().exhausted
    assert resumed.advance().exhausted

    # Scoreboards: resumed == uncut == merged solo, to the last bit.
    uncut = _assert_fleet_equals_solo(fleet, specs)
    assert resumed.scoreboard() == uncut

    for cid in fleet.community_ids:
        uncut_trail = fleet.engine_of(cid).pipeline.audit
        resumed_trail = resumed.engine_of(cid).pipeline.audit
        timeline = resumed.engine_of(cid).timeline
        uncut_records = uncut_trail.records()
        resumed_records = resumed_trail.records()
        # One record per restored/processed slot, in slot order.
        assert len(resumed_records) == len(timeline)
        assert [r["slot"] for r in resumed_records] == [
            r["slot"] for r in uncut_records
        ]
        for uncut_rec, resumed_rec in zip(uncut_records, resumed_records):
            if resumed_rec.get("restored"):
                # Pre-cut: the verdict survives, the evidence does not.
                assert resumed_rec["slot"] == uncut_rec["slot"]
                assert resumed_rec["kind"] == uncut_rec["kind"]
                if uncut_rec["kind"] == "detection":
                    assert resumed_rec["repaired"] == uncut_rec["repaired"]
            else:
                # Post-cut verdicts replay bitwise, evidence included.
                assert resumed_rec == uncut_rec
        assert any(r.get("restored") for r in resumed_records)
        assert not any(r.get("restored") for r in uncut_records)


def test_fault_injected_fleet_scoreboard_matches_solo(fleet_config):
    """Gap slots from seeded chaos score identically fleet and solo."""
    template = builtin_plan("chaos")
    specs = _generator(fleet_config, 3, faults=template, campaign=True).specs()
    fleet = build_fleet(specs, n_shards=2, cache=GameSolutionCache())
    assert fleet.advance().exhausted
    scoreboard = _assert_fleet_equals_solo(fleet, specs)
    # Chaos drops/corrupts readings: the availability ledger must have
    # seen real gaps somewhere in the fleet for this test to bite.
    assert scoreboard["fleet"]["slots"]["gaps"] > 0
