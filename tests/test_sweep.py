"""Tests for the scenario parameter-sweep utility."""

import pytest

from repro.simulation.sweep import SweepPoint, SweepResult, _set_dotted, sweep_scenario


class TestSetDotted:
    def test_top_level_field(self, tiny_config):
        updated = _set_dotted(tiny_config, "pv_adoption", 0.25)
        assert updated.pv_adoption == pytest.approx(0.25)

    def test_nested_field(self, tiny_config):
        updated = _set_dotted(tiny_config, "pricing.sellback_divisor", 3.0)
        assert updated.pricing.sellback_divisor == pytest.approx(3.0)
        assert tiny_config.pricing.sellback_divisor != pytest.approx(3.0)  # original untouched

    def test_detection_field(self, tiny_config):
        updated = _set_dotted(tiny_config, "detection.par_threshold", 0.2)
        assert updated.detection.par_threshold == pytest.approx(0.2)

    def test_too_deep_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="nesting"):
            _set_dotted(tiny_config, "a.b.c", 1)


class TestSweepResult:
    def test_series_extraction(self):
        points = (
            SweepPoint("a", "aware", 0.9, 1.2, 10.0, 2),
            SweepPoint("b", "aware", 0.8, 1.3, 12.0, 3),
            SweepPoint("a", "unaware", 0.6, 1.4, 5.0, 1),
        )
        result = SweepResult(parameter="x", points=points)
        series = result.series("aware", "observation_accuracy")
        assert series == [("a", 0.9), ("b", 0.8)]

    def test_unknown_metric(self):
        result = SweepResult(parameter="x", points=())
        with pytest.raises(ValueError, match="metric"):
            result.series("aware", "banana")


class TestSweepScenario:
    def test_grid_shape(self, tiny_config):
        result = sweep_scenario(
            tiny_config,
            parameter="detection.hack_probability",
            values=(0.05, 0.3),
            detectors=("none",),
            n_slots=24,
            calibration_trials=3,
        )
        assert result.parameter == "detection.hack_probability"
        assert len(result.points) == 2
        values = [p.value for p in result.points]
        assert values == [0.05, 0.3]

    def test_hack_probability_moves_compromise(self, tiny_config):
        """More aggressive hacking leaves a larger undetected population
        (no-detection variant), lowering the trivially-correct accuracy."""
        result = sweep_scenario(
            tiny_config,
            parameter="detection.hack_probability",
            values=(0.02, 0.5),
            detectors=("none",),
            n_slots=24,
            calibration_trials=3,
            seed=5,
        )
        low, high = result.points
        assert high.n_repairs == low.n_repairs == 0

    def test_validation(self, tiny_config):
        with pytest.raises(ValueError):
            sweep_scenario(tiny_config, parameter="pv_adoption", values=())
        with pytest.raises(ValueError):
            sweep_scenario(
                tiny_config,
                parameter="pv_adoption",
                values=(0.1,),
                detectors=(),
            )
