"""``repro-bench --compare`` degrades gracefully on short trajectories."""

import io
import json

import pytest

from repro.obs.logs import configure_logging
from repro.perf.bench import compare_latest_entries, main as bench_main


@pytest.fixture()
def log_output():
    """Capture the repro logger's INFO output for assertions."""
    buffer = io.StringIO()
    configure_logging(stream=buffer)
    yield buffer
    configure_logging()


def _entry(backend: str, solve_s: float) -> dict:
    return {
        "backend": backend,
        "environment": {"git_rev": "abc", "timestamp": "t"},
        "game_solve": {"solve_s": solve_s},
    }


def _write(path, entries) -> None:
    path.write_text(json.dumps({"entries": entries}))


class TestCompareLatestEntries:
    def test_missing_file_is_not_an_error(self, tmp_path, log_output):
        code = compare_latest_entries(tmp_path / "BENCH.json")
        assert code == 0
        assert "nothing to compare" in log_output.getvalue()

    def test_empty_trajectory_is_not_an_error(self, tmp_path, log_output):
        target = tmp_path / "BENCH.json"
        _write(target, [])
        assert compare_latest_entries(target) == 0
        assert "0 entries" in log_output.getvalue()

    def test_single_entry_is_not_an_error(self, tmp_path, log_output):
        target = tmp_path / "BENCH.json"
        _write(target, [_entry("fused", 1.0)])
        assert compare_latest_entries(target) == 0
        assert "1 entry" in log_output.getvalue()

    def test_two_entries_compare(self, tmp_path, log_output):
        target = tmp_path / "BENCH.json"
        _write(target, [_entry("fused", 2.0), _entry("fused", 1.0)])
        assert compare_latest_entries(target) == 0
        assert "2.00x faster" in log_output.getvalue()

    def test_backend_filter_compares_like_with_like(self, tmp_path, log_output):
        target = tmp_path / "BENCH.json"
        _write(
            target,
            [
                _entry("reference", 4.0),
                _entry("fused", 2.0),
                _entry("reference", 1.0),
            ],
        )
        assert compare_latest_entries(target, backend="reference") == 0
        assert "4.00x faster" in log_output.getvalue()

    def test_backend_filter_with_one_match_is_graceful(self, tmp_path, log_output):
        target = tmp_path / "BENCH.json"
        _write(target, [_entry("fused", 2.0), _entry("reference", 1.0)])
        assert compare_latest_entries(target, backend="fused") == 0
        assert "for backend 'fused'" in log_output.getvalue()

    def test_corrupt_file_is_still_an_error(self, tmp_path, log_output):
        target = tmp_path / "BENCH.json"
        target.write_text("{definitely not json")
        assert compare_latest_entries(target) == 1
        assert "not valid JSON" in log_output.getvalue()


class TestCliSurface:
    def test_compare_on_fresh_clone_exits_zero(self, tmp_path):
        out = tmp_path / "BENCH_hotpaths.json"
        assert bench_main(["--compare", "--out", str(out)]) == 0

    def test_compare_resolves_backend_alias(self, tmp_path):
        target = tmp_path / "BENCH.json"
        _write(target, [_entry("fused", 2.0), _entry("fused", 1.0)])
        # "--backend auto" resolves to a concrete backend name before
        # filtering; whatever it resolves to, the call must not crash.
        assert bench_main(
            ["--compare", "--out", str(target), "--backend", "fused"]
        ) == 0

    def test_compare_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_main(
                ["--compare", "--out", str(tmp_path / "b.json"),
                 "--backend", "no-such-backend"]
            )
