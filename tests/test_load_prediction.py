"""Tests for the game-based community load prediction."""

import numpy as np
import pytest

from repro.core.config import GameConfig
from repro.prediction.load import predict_community_load
from repro.scheduling.game import Community
from tests.conftest import HORIZON, make_customer
from repro.core.config import BatteryConfig

FAST = GameConfig(
    max_rounds=2,
    inner_iterations=1,
    ce_samples=8,
    ce_elites=2,
    ce_iterations=2,
    convergence_tol=0.1,
)


@pytest.fixture
def community():
    nm = make_customer(
        1,
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        pv_peak=0.6,
    )
    return Community(customers=(make_customer(0), nm), counts=(4, 4))


class TestPredictCommunityLoad:
    def test_aware_prediction(self, community, rng):
        prediction = predict_community_load(
            community, np.full(HORIZON, 0.03), aware=True, config=FAST, rng=rng
        )
        assert prediction.aware
        assert prediction.load.shape == (HORIZON,)
        assert prediction.par >= 1.0
        assert prediction.grid_par >= 1.0

    def test_unaware_strips_net_metering(self, community, rng):
        prediction = predict_community_load(
            community, np.full(HORIZON, 0.03), aware=False, config=FAST, rng=rng
        )
        assert not prediction.aware
        # without PV or batteries, grid demand equals consumption
        np.testing.assert_allclose(prediction.grid_demand, prediction.load)

    def test_aware_grid_differs_from_load(self, community, rng):
        prediction = predict_community_load(
            community, np.full(HORIZON, 0.03), aware=True, config=FAST, rng=rng
        )
        assert not np.allclose(prediction.grid_demand, prediction.load)

    def test_energy_conserved(self, community, rng):
        prediction = predict_community_load(
            community, np.full(HORIZON, 0.03), aware=True, config=FAST, rng=rng
        )
        expected = sum(
            count * (c.base_load_array.sum() + c.total_task_energy)
            for c, count in zip(community.customers, community.counts)
        )
        assert prediction.load.sum() == pytest.approx(expected)

    def test_game_result_attached(self, community, rng):
        prediction = predict_community_load(
            community, np.full(HORIZON, 0.03), aware=True, config=FAST, rng=rng
        )
        assert prediction.game.rounds >= 1
