"""Tests for detection-accuracy metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.accuracy import (
    ClassificationCounts,
    confusion_counts,
    detection_rates,
    observation_accuracy,
    per_meter_accuracy,
)


class TestClassificationCounts:
    def test_accuracy(self):
        counts = ClassificationCounts(
            true_positives=8, false_positives=2, true_negatives=85, false_negatives=5
        )
        assert counts.total == 100
        assert counts.accuracy == pytest.approx(0.93)

    def test_rates(self):
        counts = ClassificationCounts(
            true_positives=9, false_positives=1, true_negatives=99, false_negatives=1
        )
        assert counts.true_positive_rate == pytest.approx(0.9)
        assert counts.false_positive_rate == pytest.approx(0.01)

    def test_empty_raises(self):
        counts = ClassificationCounts(0, 0, 0, 0)
        with pytest.raises(ValueError):
            _ = counts.accuracy

    def test_no_positives_raises(self):
        counts = ClassificationCounts(0, 1, 5, 0)
        with pytest.raises(ValueError):
            _ = counts.true_positive_rate

    def test_merged(self):
        a = ClassificationCounts(1, 2, 3, 4)
        b = ClassificationCounts(10, 20, 30, 40)
        merged = a.merged(b)
        assert merged == ClassificationCounts(11, 22, 33, 44)


class TestConfusionCounts:
    def test_perfect(self):
        truth = np.array([[True, False], [False, True]])
        counts = confusion_counts(truth, truth)
        assert counts.true_positives == 2
        assert counts.true_negatives == 2
        assert counts.false_positives == 0
        assert counts.false_negatives == 0

    def test_all_wrong(self):
        truth = np.array([True, False, True])
        flagged = ~truth
        counts = confusion_counts(truth, flagged)
        assert counts.accuracy == pytest.approx(0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            confusion_counts(np.array([True]), np.array([True, False]))

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            confusion_counts(np.array([], dtype=bool), np.array([], dtype=bool))

    @given(
        arrays(np.bool_, (6, 4)),
        arrays(np.bool_, (6, 4)),
    )
    def test_counts_partition_total(self, truth, flagged):
        counts = confusion_counts(truth, flagged)
        assert counts.total == truth.size
        assert 0.0 <= counts.accuracy <= 1.0


class TestPerMeterAccuracy:
    def test_matches_paper_metric_semantics(self):
        """Fraction of meter-slot pairs classified correctly."""
        truth = np.zeros((10, 10), dtype=bool)
        truth[:, 0] = True
        flagged = np.zeros((10, 10), dtype=bool)
        assert per_meter_accuracy(truth, flagged) == pytest.approx(0.9)


class TestObservationAccuracy:
    def test_exact_count_match(self):
        assert observation_accuracy([0, 1, 2], [0, 1, 2]) == pytest.approx(1.0)
        assert observation_accuracy([0, 1, 2], [0, 1, 3]) == pytest.approx(2 / 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            observation_accuracy([1], [1, 2])


class TestDetectionRates:
    def test_rates_tuple(self):
        truth = np.array([True, True, False, False])
        flagged = np.array([True, False, True, False])
        tp, fp = detection_rates(truth, flagged)
        assert tp == pytest.approx(0.5)
        assert fp == pytest.approx(0.5)
