"""Tests for the quadratic net-metering cost model (Eqns. 2-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.netmetering.cost import NetMeteringCostModel

H = 4
PRICES = (0.02, 0.03, 0.04, 0.05)


@pytest.fixture
def model() -> NetMeteringCostModel:
    return NetMeteringCostModel(prices=PRICES, sellback_divisor=2.0)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            NetMeteringCostModel(prices=())

    def test_rejects_negative_price(self):
        with pytest.raises(ValueError, match="finite"):
            NetMeteringCostModel(prices=(0.1, -0.1))

    def test_rejects_w_below_one(self):
        with pytest.raises(ValueError, match="sellback"):
            NetMeteringCostModel(prices=PRICES, sellback_divisor=0.5)


class TestCustomerCost:
    def test_buying_branch(self, model):
        """C = p * (Y_others + y) * y for y >= 0."""
        y = np.array([1.0, 2.0, 0.0, 1.0])
        others = np.array([10.0, 10.0, 10.0, 10.0])
        per_slot = model.customer_cost_per_slot(y, others)
        expected = np.array(PRICES) * (others + y) * y
        np.testing.assert_allclose(per_slot, expected)

    def test_selling_branch_reward(self, model):
        """Selling into a net-buying community is rewarded (negative cost)."""
        y = np.array([-1.0, 0.0, 0.0, 0.0])
        others = np.array([10.0, 0.0, 0.0, 0.0])
        per_slot = model.customer_cost_per_slot(y, others)
        expected = (0.02 / 2.0) * (10.0 - 1.0) * (-1.0)
        assert per_slot[0] == pytest.approx(expected)
        assert per_slot[0] < 0  # reward

    def test_oversupply_floor(self, model):
        """No reward for selling when the whole community is a net seller."""
        y = np.array([-1.0, 0.0, 0.0, 0.0])
        others = np.array([-5.0, 0.0, 0.0, 0.0])
        per_slot = model.customer_cost_per_slot(y, others)
        assert per_slot[0] == pytest.approx(0.0)

    def test_multiplicity_total(self, model):
        """Herd pricing: total includes all instances' moves."""
        y = np.array([1.0, 0.0, 0.0, 0.0])
        others = np.array([10.0, 0.0, 0.0, 0.0])
        per_slot = model.customer_cost_per_slot(y, others, multiplicity=5)
        expected = 0.02 * (10.0 + 5.0 * 1.0) * 1.0
        assert per_slot[0] == pytest.approx(expected)

    def test_multiplicity_one_matches_default(self, model):
        y = np.array([0.5, -0.3, 1.0, 0.0])
        others = np.full(H, 3.0)
        np.testing.assert_allclose(
            model.customer_cost_per_slot(y, others),
            model.customer_cost_per_slot(y, others, multiplicity=1),
        )

    def test_rejects_bad_multiplicity(self, model):
        with pytest.raises(ValueError):
            model.customer_cost_per_slot(np.zeros(H), np.zeros(H), multiplicity=0)

    def test_total_is_sum(self, model):
        y = np.array([1.0, -0.5, 2.0, 0.0])
        others = np.full(H, 5.0)
        assert model.customer_cost(y, others) == pytest.approx(
            model.customer_cost_per_slot(y, others).sum()
        )


class TestCommunityCost:
    def test_quadratic(self, model):
        y = np.array([2.0, 3.0, 0.0, 1.0])
        expected = sum(p * v**2 for p, v in zip(PRICES, y))
        assert model.community_cost(y) == pytest.approx(expected)

    def test_export_slots_free(self, model):
        assert model.community_cost(np.array([-3.0, 0.0, 0.0, 0.0])) == pytest.approx(0.0)

    @settings(max_examples=50, deadline=None)
    @given(arrays(np.float64, H, elements=st.floats(0.0, 50.0)))
    def test_customer_shares_bounded_by_community(self, total):
        """With one customer owning all trading, the share formula matches
        the community quadratic exactly."""
        model = NetMeteringCostModel(prices=PRICES, sellback_divisor=2.0)
        per_slot = model.customer_cost_per_slot(total, np.zeros(H))
        assert per_slot.sum() == pytest.approx(model.community_cost(total))


class TestMarginalCostTable:
    def test_zero_level_is_free(self, model):
        table = model.marginal_cost_table(
            np.ones(H), np.full(H, 5.0), np.array([0.0, 1.0, 2.0])
        )
        np.testing.assert_allclose(table[:, 0], 0.0, atol=1e-12)

    def test_consistency_with_cost(self, model):
        """Table entry equals the cost difference of adding the level."""
        base = np.array([1.0, 0.5, 0.0, 2.0])
        others = np.full(H, 8.0)
        levels = np.array([0.0, 1.0])
        table = model.marginal_cost_table(base, others, levels)
        for h in range(H):
            bumped = base.copy()
            bumped[h] += 1.0
            delta = model.customer_cost(bumped, others) - model.customer_cost(
                base, others
            )
            assert table[h, 1] == pytest.approx(delta)

    def test_consistency_with_cost_multiplicity(self, model):
        base = np.array([1.0, 0.5, 0.0, 2.0])
        others = np.full(H, 8.0)
        levels = np.array([0.0, 1.0])
        m = 4
        table = model.marginal_cost_table(base, others, levels, multiplicity=m)
        for h in range(H):
            bumped = base.copy()
            bumped[h] += 1.0
            before = model.customer_cost_per_slot(base, others, multiplicity=m).sum()
            after = model.customer_cost_per_slot(bumped, others, multiplicity=m).sum()
            assert table[h, 1] == pytest.approx(after - before)

    def test_increasing_in_level(self, model):
        """With positive community demand, more power costs more."""
        table = model.marginal_cost_table(
            np.ones(H), np.full(H, 10.0), np.array([0.0, 0.5, 1.0, 2.0])
        )
        assert np.all(np.diff(table, axis=1) > 0)

    def test_slot_hours_scaling(self, model):
        half = model.marginal_cost_table(
            np.ones(H), np.full(H, 10.0), np.array([0.0, 1.0]), slot_hours=0.5
        )
        full = model.marginal_cost_table(
            np.ones(H), np.full(H, 10.0), np.array([0.0, 0.5])
        )
        np.testing.assert_allclose(half, full)

    def test_rejects_wrong_shapes(self, model):
        with pytest.raises(ValueError):
            model.marginal_cost_table(np.ones(3), np.ones(H), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            model.marginal_cost_table(
                np.ones(H), np.ones(H), np.array([[0.0], [1.0]])
            )
