"""Tests for the heuristic monitoring policies."""

import numpy as np
import pytest

from repro.detection.long_term import LongTermDetector
from repro.detection.policies import (
    AlwaysRepair,
    NeverRepair,
    ObservationThreshold,
    PeriodicRepair,
)
from repro.detection.pomdp import MONITOR, REPAIR, build_detection_pomdp


@pytest.fixture
def belief():
    b = np.zeros(6)
    b[3] = 1.0
    return b


class TestSimplePolicies:
    def test_never_repair(self, belief):
        assert NeverRepair().action(belief) == MONITOR

    def test_always_repair(self, belief):
        assert AlwaysRepair().action(belief) == REPAIR


class TestPeriodicRepair:
    def test_cadence(self, belief):
        policy = PeriodicRepair(period=3)
        actions = [policy.action(belief) for _ in range(9)]
        assert actions == [MONITOR, MONITOR, REPAIR] * 3

    def test_period_one_is_always(self, belief):
        policy = PeriodicRepair(period=1)
        assert all(policy.action(belief) == REPAIR for _ in range(4))

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicRepair(period=0)


class TestObservationThreshold:
    def test_below_threshold_monitors(self):
        policy = ObservationThreshold(threshold=2.0)
        belief = np.array([0.5, 0.5, 0.0, 0.0])
        assert policy.action(belief) == MONITOR

    def test_at_threshold_repairs(self):
        policy = ObservationThreshold(threshold=2.0)
        belief = np.array([0.0, 0.0, 1.0, 0.0])
        assert policy.action(belief) == REPAIR

    def test_zero_threshold_always_repairs(self):
        policy = ObservationThreshold(threshold=0.0)
        assert policy.action(np.array([1.0, 0.0])) == REPAIR

    def test_validation(self):
        with pytest.raises(ValueError):
            ObservationThreshold(threshold=-1.0)


class TestPoliciesInDetectorLoop:
    @pytest.fixture
    def model(self):
        return build_detection_pomdp(
            4, hack_probability=0.2, tp_rate=0.9, fp_rate=0.05
        )

    def test_never_repair_in_loop(self, model):
        detector = LongTermDetector(model, policy=NeverRepair())
        for _ in range(6):
            detector.step(4)
        assert detector.n_repairs == 0

    def test_periodic_in_loop(self, model):
        detector = LongTermDetector(model, policy=PeriodicRepair(period=2))
        for _ in range(6):
            detector.step(0)
        assert detector.n_repairs == 3

    def test_threshold_policy_responds_to_observations(self, model):
        detector = LongTermDetector(model, policy=ObservationThreshold(1.5))
        quiet = [detector.step(0).repaired for _ in range(3)]
        loud = [detector.step(4).repaired for _ in range(3)]
        assert sum(loud) > sum(quiet)
