"""Chaos suite: every built-in fault plan against live engines.

The acceptance contract for the fault-injection harness:

- no exception ever escapes ``StreamEngine.run`` under any built-in
  plan — the engine recovers bitwise-identically to the clean run for
  lossless plans, and emits explicit gap markers otherwise;
- an identical fault seed produces an identical outcome;
- checkpoint/resume under injected faults stays bitwise identical;
- damaged checkpoint files fail loudly with ``CheckpointError``.
"""

import numpy as np
import pytest

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    RetryPolicy,
    SolarConfig,
    TimeGrid,
)
from repro.faults import FaultPlan, bitflip_file, builtin_plan, truncate_file
from repro.faults.plan import BUILTIN_PLANS
from repro.simulation.cache import GameSolutionCache
from repro.stream.checkpoint import (
    CheckpointError,
    resume_engine,
    save_checkpoint,
)
from repro.stream.pipeline import build_replay_engine, build_synthetic_engine

N_DAYS = 2


@pytest.fixture(scope="module")
def tiny_config() -> CommunityConfig:
    return CommunityConfig(
        n_customers=6,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=12, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        solar=SolarConfig(peak_kw=0.7),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4, hack_probability=0.15),
        seed=11,
    )


@pytest.fixture(scope="module")
def replay_config(tiny_config) -> CommunityConfig:
    # The replay path samples the default hacking window, which needs a
    # full 24-slot day.
    import dataclasses

    return dataclasses.replace(tiny_config, time=TimeGrid(slots_per_day=24, n_days=1))


@pytest.fixture(scope="module")
def cache() -> GameSolutionCache:
    return GameSolutionCache()


def synthetic(tiny_config, cache, *, detector="aware", faults=None, retry=None):
    return build_synthetic_engine(
        tiny_config,
        n_days=N_DAYS,
        attack_days=(0, 1),
        detector=detector,
        cache=cache,
        faults=faults,
        retry=retry,
    )


@pytest.fixture(scope="module")
def clean_timeline(tiny_config, cache):
    engine = synthetic(tiny_config, cache)
    engine.run()
    return [det.to_dict() for det in engine.timeline]


class TestBuiltinPlansRecoverOrGap:
    @pytest.mark.parametrize("name", sorted(BUILTIN_PLANS))
    def test_no_exception_and_recover_or_gap(
        self, name, tiny_config, cache, clean_timeline
    ):
        """The headline chaos contract, per built-in plan."""
        plan = builtin_plan(name, seed=101)
        engine = synthetic(tiny_config, cache, faults=plan)
        engine.run()  # must not raise
        timeline = [det.to_dict() for det in engine.timeline]
        slots = [det["slot"] for det in timeline]
        assert slots == list(range(N_DAYS * 12)), f"{name}: timeline has holes"
        if plan.is_lossless:
            assert timeline == clean_timeline, (
                f"{name}: lossless plan must recover bitwise"
            )
        else:
            gaps = [det for det in timeline if det.get("gap")]
            clean_slots = [det for det in timeline if not det.get("gap")]
            for det in gaps:
                assert det["gap_reason"] in ("dropped", "corrupt")
                assert det["observation"] == 0
            # Non-gap verdicts are real detections over the full fleet.
            for det in clean_slots:
                assert len(det["flags"]) == 4
        assert engine.pipeline.days_completed == N_DAYS

    def test_reorder_is_bitwise_without_repair_feedback(self, tiny_config, cache):
        """Reorder is lossless when no repair can land inside the swap
        window (detector="none" has no feedback edge)."""
        reference = synthetic(tiny_config, cache, detector="none")
        reference.run()
        engine = synthetic(
            tiny_config,
            cache,
            detector="none",
            faults=builtin_plan("reorder", seed=3),
        )
        engine.run()
        assert [d.to_dict() for d in engine.timeline] == [
            d.to_dict() for d in reference.timeline
        ]
        assert engine.fault_injector.counts.get("reorder", 0) > 0


class TestSeedDeterminism:
    def test_identical_fault_seed_identical_outcome(self, tiny_config, cache):
        outcomes = []
        for _ in range(2):
            engine = synthetic(
                tiny_config, cache, faults=builtin_plan("chaos", seed=77)
            )
            engine.run()
            outcomes.append(
                (
                    [d.to_dict() for d in engine.timeline],
                    dict(engine.fault_injector.counts),
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_different_fault_seed_changes_outcome(self, tiny_config, cache):
        timelines = []
        for seed in (77, 78):
            engine = synthetic(
                tiny_config, cache, faults=builtin_plan("chaos", seed=seed)
            )
            engine.run()
            timelines.append([d.to_dict() for d in engine.timeline])
        assert timelines[0] != timelines[1]


class TestCheckpointUnderFaults:
    def test_resume_is_bitwise_identical(self, tiny_config, cache, tmp_path):
        plan = builtin_plan("chaos", seed=21)
        reference = synthetic(tiny_config, cache, faults=plan)
        reference.run()
        expected = [d.to_dict() for d in reference.timeline]

        rng = np.random.default_rng(5)
        for cut in sorted(set(rng.integers(1, 24, size=4).tolist())):
            engine = synthetic(tiny_config, cache, faults=plan)
            engine.run(max_events=cut)
            path = tmp_path / f"chaos-cut{cut}.json"
            save_checkpoint(engine, path)
            resumed = resume_engine(path, cache=cache)
            assert resumed.fault_injector is not None
            assert resumed.fault_injector.plan == plan
            resumed.run()
            got = [d.to_dict() for d in resumed.timeline]
            assert got == expected, f"divergence after resume at event {cut}"


class TestStallHandling:
    def test_exhausted_retry_budget_stops_cleanly(self, tiny_config, cache):
        """With a zero-retry policy, a stalled feed aborts the run —
        without an exception — and a later run() call finishes the job."""
        engine = synthetic(
            tiny_config,
            cache,
            faults=FaultPlan(seed=1, stall_prob=1.0, max_stall=3),
        )
        engine.retry = RetryPolicy(max_retries=0)
        engine.run()  # must not raise
        assert not engine.exhausted  # gave up mid-stream on the first stall
        engine.retry = RetryPolicy(max_retries=8)
        engine.run()
        assert engine.exhausted
        assert engine.pipeline.n_slots_processed == N_DAYS * 12

    def test_default_retry_policy_absorbs_stalls(self, tiny_config, cache):
        """install_faults sizes a retry policy from max_stall, so a
        stall-only plan completes in one run() call, bitwise clean."""
        reference = synthetic(tiny_config, cache)
        reference.run()
        engine = synthetic(
            tiny_config,
            cache,
            faults=FaultPlan(seed=2, stall_prob=1.0, max_stall=3),
        )
        assert engine.retry is not None
        engine.run()
        assert engine.exhausted
        assert [d.to_dict() for d in engine.timeline] == [
            d.to_dict() for d in reference.timeline
        ]


class TestCheckpointCorruption:
    def _checkpoint(self, tiny_config, cache, tmp_path):
        engine = synthetic(
            tiny_config, cache, faults=builtin_plan("chaos", seed=33)
        )
        engine.run(max_events=10)
        return save_checkpoint(engine, tmp_path / "victim.json")

    def test_control_resume_works_before_damage(
        self, tiny_config, cache, tmp_path
    ):
        path = self._checkpoint(tiny_config, cache, tmp_path)
        assert resume_engine(path, cache=cache).events_processed == 10

    def test_truncated_checkpoint_fails_loudly(self, tiny_config, cache, tmp_path):
        path = self._checkpoint(tiny_config, cache, tmp_path)
        truncate_file(path, keep_fraction=0.6)
        with pytest.raises(CheckpointError):
            resume_engine(path, cache=cache)

    def test_bitflipped_header_fails_loudly(self, tiny_config, cache, tmp_path):
        path = self._checkpoint(tiny_config, cache, tmp_path)
        # Flip inside the leading format marker so either JSON decoding
        # or the format check must reject the file.
        bitflip_file(path, np.random.default_rng(0), lo=2, hi=24)
        with pytest.raises(CheckpointError):
            resume_engine(path, cache=cache)

    def test_missing_checkpoint_fails_loudly(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            resume_engine(tmp_path / "never-written.json")


class TestReplayChaos:
    def test_replay_engine_survives_chaos(self, replay_config, cache):
        """The scenario-replay engine (shared RNG, repair feedback)
        degrades gracefully under the mixed plan too."""
        engine = build_replay_engine(
            replay_config,
            detector="aware",
            n_slots=24,
            calibration_trials=5,
            cache=cache,
            faults=builtin_plan("chaos", seed=55),
        )
        engine.run()
        slots = [det.slot for det in engine.timeline]
        assert slots == list(range(24))
        assert engine.pipeline.n_gaps > 0
        with pytest.raises(RuntimeError, match="gap marker"):
            engine.result()

    def test_replay_lossless_plan_matches_clean(self, replay_config, cache):
        clean = build_replay_engine(
            replay_config,
            detector="aware",
            n_slots=24,
            calibration_trials=5,
            cache=cache,
        )
        clean.run()
        faulted = build_replay_engine(
            replay_config,
            detector="aware",
            n_slots=24,
            calibration_trials=5,
            cache=cache,
            faults=FaultPlan(seed=8, duplicate_prob=0.3, stall_prob=0.3),
        )
        faulted.run()
        assert [d.to_dict() for d in faulted.timeline] == [
            d.to_dict() for d in clean.timeline
        ]
