"""Fixture snippets — one good and one bad per rule — for `repro.analysis`.

Each bad fixture must be flagged with the right rule id at the right
file:line; each good fixture must come back clean.  Fixtures are linted
as in-memory sources with a display path inside ``src/repro`` so that
path-scoped rules (API001, DET002) apply.
"""

import textwrap

from repro.analysis.engine import LintConfig, LintEngine
from repro.analysis.rules import ALL_RULES, default_rules

SRC_PATH = "src/repro/fake_module.py"


def lint(source: str, *, path: str = SRC_PATH, select: str | None = None):
    config = LintConfig()
    if select is not None:
        config.select = frozenset({select})
    engine = LintEngine(default_rules(), config)
    return engine.check_source(textwrap.dedent(source), display_path=path)


def rules_hit(violations) -> set[str]:
    return {v.rule for v in violations}


class TestDET001GlobalRng:
    def test_np_random_module_call_flagged(self):
        violations = lint(
            """\
            import numpy as np

            def draw() -> float:
                return float(np.random.rand())
            """,
            select="DET001",
        )
        assert [v.rule for v in violations] == ["DET001"]
        assert violations[0].line == 4
        assert "np" in violations[0].message or "numpy" in violations[0].message

    def test_np_seed_flagged(self):
        violations = lint(
            """\
            import numpy as np
            np.random.seed(42)
            """,
            select="DET001",
        )
        assert rules_hit(violations) == {"DET001"}

    def test_stdlib_random_flagged(self):
        violations = lint(
            """\
            import random

            def pick(items: list[int]) -> int:
                return random.choice(items)
            """,
            select="DET001",
        )
        assert [v.rule for v in violations] == ["DET001"]
        assert violations[0].line == 4

    def test_from_import_of_global_rng_flagged(self):
        violations = lint(
            """\
            from numpy.random import rand
            """,
            select="DET001",
        )
        assert [v.rule for v in violations] == ["DET001"]

    def test_bare_seed_method_flagged(self):
        violations = lint(
            """\
            def reseed(rng: object) -> None:
                rng.seed(0)
            """,
            select="DET001",
        )
        assert [v.rule for v in violations] == ["DET001"]

    def test_generator_parameter_clean(self):
        violations = lint(
            """\
            import numpy as np

            def draw(rng: np.random.Generator) -> float:
                return float(rng.normal())

            def make_rng(seed: int) -> np.random.Generator:
                return np.random.default_rng(seed)
            """,
            select="DET001",
        )
        assert violations == []

    def test_seeded_stdlib_random_instance_clean(self):
        violations = lint(
            """\
            import random

            def make(seed: int) -> random.Random:
                return random.Random(seed)
            """,
            select="DET001",
        )
        assert violations == []


class TestDET002WallClock:
    def test_time_time_flagged_with_position(self):
        violations = lint(
            """\
            import time

            def stamp() -> float:
                return time.time()
            """,
            select="DET002",
        )
        assert [(v.rule, v.line) for v in violations] == [("DET002", 4)]

    def test_datetime_now_flagged(self):
        violations = lint(
            """\
            from datetime import datetime

            def stamp() -> str:
                return datetime.now().isoformat()
            """,
            select="DET002",
        )
        assert rules_hit(violations) == {"DET002"}

    def test_service_allowlist_exempt(self):
        violations = lint(
            """\
            import time

            def request_stamp() -> float:
                return time.time()
            """,
            path="src/repro/service/fake_app.py",
            select="DET002",
        )
        assert violations == []

    def test_perf_counter_clean(self):
        violations = lint(
            """\
            import time

            def measure() -> float:
                return time.perf_counter()
            """,
            select="DET002",
        )
        assert violations == []


class TestDET003UnorderedIteration:
    def test_set_literal_iteration_flagged(self):
        violations = lint(
            """\
            def walk() -> list[int]:
                return [x for x in {3, 1, 2}]
            """,
            select="DET003",
        )
        assert [v.rule for v in violations] == ["DET003"]
        assert violations[0].line == 2

    def test_set_call_for_loop_flagged(self):
        violations = lint(
            """\
            def walk(items: list[int]) -> None:
                for x in set(items):
                    print(x)
            """,
            select="DET003",
        )
        assert [v.rule for v in violations] == ["DET003"]

    def test_dict_view_set_algebra_flagged(self):
        violations = lint(
            """\
            def walk(a: dict[str, int], b: dict[str, int]) -> None:
                for key in a.keys() & b.keys():
                    print(key)
            """,
            select="DET003",
        )
        assert [v.rule for v in violations] == ["DET003"]

    def test_enumerate_over_set_flagged(self):
        violations = lint(
            """\
            def walk(items: list[int]) -> None:
                for i, x in enumerate(set(items)):
                    print(i, x)
            """,
            select="DET003",
        )
        assert [v.rule for v in violations] == ["DET003"]

    def test_sorted_set_clean(self):
        violations = lint(
            """\
            def walk(items: list[int]) -> None:
                for x in sorted(set(items)):
                    print(x)
            """,
            select="DET003",
        )
        assert violations == []

    def test_plain_dict_iteration_clean(self):
        violations = lint(
            """\
            def walk(d: dict[str, int]) -> None:
                for key in d.keys():
                    print(key)
            """,
            select="DET003",
        )
        assert violations == []


CKPT_BAD = """\
class Tracker:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self._count = 0

    def bump(self) -> None:
        self._count += 1

    def state_dict(self) -> dict:
        return {"limit": self.limit}

    def load_state(self, state: dict) -> None:
        self.limit = int(state["limit"])
"""

CKPT_GOOD = """\
class Tracker:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self._count = 0

    def bump(self) -> None:
        self._count += 1

    def state_dict(self) -> dict:
        return {"limit": self.limit, "count": self._count}

    def load_state(self, state: dict) -> None:
        self.limit = int(state["limit"])
        self._count = int(state["count"])
"""


class TestCKPT001CheckpointRoundTrip:
    def test_mutated_attribute_missing_from_both_sides_flagged(self):
        violations = lint(CKPT_BAD, select="CKPT001")
        assert [v.rule for v in violations] == ["CKPT001"]
        assert violations[0].line == 4  # the __init__ assignment of _count
        assert "Tracker._count" in violations[0].message

    def test_round_tripped_attribute_clean(self):
        assert lint(CKPT_GOOD, select="CKPT001") == []

    def test_config_only_attribute_not_required(self):
        # `limit` is never mutated outside __init__: frozen configuration,
        # not runtime state, so it need not round-trip.
        violations = lint(
            """\
            class Frozen:
                def __init__(self, limit: int) -> None:
                    self.limit = limit

                def state_dict(self) -> dict:
                    return {}

                def load_state(self, state: dict) -> None:
                    pass
            """,
            select="CKPT001",
        )
        assert violations == []

    def test_local_name_in_deserializer_counts(self):
        # The common `history = ...; return cls(history)` shape.
        violations = lint(
            """\
            class Window:
                def __init__(self, history: list) -> None:
                    self._history = history

                def push(self, item: object) -> None:
                    self._history = [*self._history, item]

                def state_dict(self) -> dict:
                    return {"history": list(self._history)}

                @classmethod
                def from_state(cls, state: dict) -> "Window":
                    history = list(state["history"])
                    return cls(history)
            """,
            select="CKPT001",
        )
        assert violations == []


class TestAPI001PublicAnnotations:
    def test_missing_param_and_return_flagged(self):
        violations = lint(
            """\
            def combine(a, b: int):
                return a + b
            """,
            select="API001",
        )
        assert [v.rule for v in violations] == ["API001", "API001"]
        assert "a" in violations[0].message
        assert "return" in violations[1].message

    def test_private_and_nested_defs_exempt(self):
        violations = lint(
            """\
            def _helper(x):
                return x

            def public(x: int) -> int:
                def inner(y):
                    return y
                return inner(x)
            """,
            select="API001",
        )
        assert violations == []

    def test_outside_src_repro_exempt(self):
        violations = lint(
            """\
            def untyped(a, b):
                return a + b
            """,
            path="tests/test_fake.py",
            select="API001",
        )
        assert violations == []

    def test_fully_annotated_method_clean(self):
        violations = lint(
            """\
            class Box:
                def put(self, item: str, *extra: str, tag: str = "", **rest: int) -> None:
                    pass
            """,
            select="API001",
        )
        assert violations == []


class TestFLT001FloatEquality:
    def test_eq_against_literal_flagged(self):
        violations = lint(
            """\
            def check(x: float) -> bool:
                return x == 0.5
            """,
            select="FLT001",
        )
        assert [(v.rule, v.line) for v in violations] == [("FLT001", 2)]

    def test_ne_and_negative_literal_flagged(self):
        violations = lint(
            """\
            def check(x: float) -> bool:
                return x != -1.5
            """,
            select="FLT001",
        )
        assert [v.rule for v in violations] == ["FLT001"]

    def test_chained_comparison_flags_each_float_link(self):
        violations = lint(
            """\
            def check(a: float, b: float) -> bool:
                return a == 0.5 == b
            """,
            select="FLT001",
        )
        assert len(violations) == 2

    def test_int_and_tolerance_comparisons_clean(self):
        violations = lint(
            """\
            import math

            def check(x: float, n: int) -> bool:
                return n == 3 and math.isclose(x, 0.5) and x < 0.5
            """,
            select="FLT001",
        )
        assert violations == []


class TestOBS001PrintCall:
    def test_print_in_library_module_flagged(self):
        violations = lint(
            """\
            def report(total: int) -> None:
                print(f"processed {total} slots")
            """,
            select="OBS001",
        )
        assert [v.rule for v in violations] == ["OBS001"]
        assert violations[0].line == 2

    def test_logger_use_clean(self):
        violations = lint(
            """\
            from repro.obs.logs import get_logger

            def report(total: int) -> None:
                get_logger("stream").info("processed %d slots", total)
            """,
            select="OBS001",
        )
        assert violations == []

    def test_cli_and_reporting_exempt(self):
        source = """\
            def show() -> None:
                print("table")
            """
        for path in (
            "src/repro/cli.py",
            "src/repro/analysis/cli.py",
            "src/repro/reporting/ascii.py",
        ):
            assert lint(source, path=path, select="OBS001") == []

    def test_tests_and_scripts_out_of_scope(self):
        source = """\
            def show() -> None:
                print("debugging is fine here")
            """
        for path in ("tests/test_fake.py", "scripts/fake.py"):
            assert lint(source, path=path, select="OBS001") == []


class TestRuleCatalogue:
    def test_seven_rules_with_unique_ids(self):
        ids = [rule_cls.rule_id for rule_cls in ALL_RULES]
        assert len(ids) == len(set(ids))
        assert set(ids) == {
            "DET001",
            "DET002",
            "DET003",
            "CKPT001",
            "API001",
            "FLT001",
            "OBS001",
        }

    def test_every_rule_has_a_summary(self):
        assert all(rule_cls.summary for rule_cls in ALL_RULES)

    def test_syntax_error_reported_as_e999(self):
        violations = lint("def broken(:\n")
        assert [v.rule for v in violations] == ["E999"]
        assert violations[0].line >= 1
