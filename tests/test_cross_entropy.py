"""Tests for the cross-entropy optimizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimization.cross_entropy import (
    CrossEntropyOptimizer,
    OptimizationResult,
    minimize_ce,
)


class TestValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="lower"):
            CrossEntropyOptimizer([1.0], [0.0])

    def test_rejects_bound_shape_mismatch(self):
        with pytest.raises(ValueError, match="matching"):
            CrossEntropyOptimizer([0.0], [1.0, 2.0])

    def test_rejects_bad_samples(self):
        with pytest.raises(ValueError, match="n_samples"):
            CrossEntropyOptimizer([0.0], [1.0], n_samples=1)

    def test_rejects_bad_elites(self):
        with pytest.raises(ValueError, match="elites"):
            CrossEntropyOptimizer([0.0], [1.0], n_samples=10, n_elites=11)

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ValueError, match="smoothing"):
            CrossEntropyOptimizer([0.0], [1.0], smoothing=0.0)

    def test_rejects_bad_x0(self):
        opt = CrossEntropyOptimizer([0.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError, match="x0"):
            opt.minimize(lambda x: 0.0, x0=[0.5])


class TestConvexProblems:
    def test_quadratic_minimum(self, rng):
        target = np.array([0.3, 0.7, 0.5])
        opt = CrossEntropyOptimizer(
            np.zeros(3), np.ones(3), n_samples=64, n_elites=8, n_iterations=40
        )
        result = opt.minimize(lambda x: float(np.sum((x - target) ** 2)), rng=rng)
        np.testing.assert_allclose(result.x, target, atol=0.05)
        assert result.fun < 1e-2

    def test_boundary_minimum(self, rng):
        """Optimum on the box boundary is found despite clipping."""
        opt = CrossEntropyOptimizer(
            np.zeros(2), np.ones(2), n_samples=64, n_elites=8, n_iterations=40
        )
        result = opt.minimize(lambda x: float(np.sum(x)), rng=rng)
        np.testing.assert_allclose(result.x, 0.0, atol=0.02)

    def test_batch_objective(self, rng):
        target = np.array([0.2, 0.8])
        opt = CrossEntropyOptimizer(
            np.zeros(2), np.ones(2), n_samples=48, n_elites=6, n_iterations=30
        )
        result = opt.minimize(
            lambda xs: np.sum((xs - target) ** 2, axis=1), rng=rng, batch=True
        )
        np.testing.assert_allclose(result.x, target, atol=0.05)

    def test_batch_shape_error(self, rng):
        opt = CrossEntropyOptimizer([0.0], [1.0], n_samples=8, n_elites=4)
        with pytest.raises(ValueError, match="batch objective"):
            opt.minimize(lambda xs: np.zeros(3), rng=rng, batch=True)


class TestNonConvexProblems:
    def test_rastrigin_1d(self, rng):
        """Multi-modal objective: CE escapes local minima."""

        def rastrigin(x):
            return float(10 + x[0] ** 2 - 10 * np.cos(2 * np.pi * x[0]))

        opt = CrossEntropyOptimizer(
            [-5.0], [5.0], n_samples=128, n_elites=12, n_iterations=60
        )
        result = opt.minimize(rastrigin, rng=rng)
        assert abs(result.x[0]) < 0.1
        assert result.fun < 0.5

    def test_concave_piece(self, rng):
        """Piecewise quadratic with a concave branch (the battery cost
        structure): the global optimum at the kink's far side is found."""

        def objective(x):
            v = x[0] - 0.5
            return float(v**2 if v >= 0 else -3 * v**2 + 0.1)

        opt = CrossEntropyOptimizer(
            [0.0], [1.0], n_samples=64, n_elites=8, n_iterations=40
        )
        result = opt.minimize(objective, rng=rng)
        # global optimum at x=0 (value -0.65), not the local one at x=0.5
        assert result.x[0] == pytest.approx(0.0, abs=0.05)

    def test_nan_objective_values_ignored(self, rng):
        def objective(x):
            return np.nan if x[0] < 0.5 else float((x[0] - 0.8) ** 2)

        opt = CrossEntropyOptimizer(
            [0.0], [1.0], n_samples=64, n_elites=8, n_iterations=30
        )
        result = opt.minimize(objective, rng=rng)
        assert result.x[0] == pytest.approx(0.8, abs=0.1)


class TestProjection:
    def test_projection_applied(self, rng):
        """A projection onto multiples of 0.25 constrains the search."""

        def project(x):
            return np.round(x * 4) / 4

        opt = CrossEntropyOptimizer(
            [0.0], [1.0], n_samples=32, n_elites=4, projection=project
        )
        result = opt.minimize(lambda x: float((x[0] - 0.3) ** 2), rng=rng)
        assert result.x[0] in (0.25, 0.5)


class TestResultContract:
    def test_history_monotone(self, rng):
        opt = CrossEntropyOptimizer(
            np.zeros(2), np.ones(2), n_samples=32, n_elites=4, n_iterations=15
        )
        result = opt.minimize(lambda x: float(np.sum(x**2)), rng=rng)
        history = np.array(result.history)
        assert np.all(np.diff(history) <= 1e-12)
        assert result.n_evaluations == 32 * result.n_iterations

    def test_result_requires_finite(self):
        with pytest.raises(ValueError):
            OptimizationResult(
                x=np.zeros(1), fun=np.inf, n_evaluations=1, n_iterations=1, converged=False
            )

    def test_minimize_ce_wrapper(self, rng):
        result = minimize_ce(
            lambda x: float((x[0] - 0.5) ** 2), [0.0], [1.0], rng=rng,
            n_samples=32, n_elites=4, n_iterations=25,
        )
        assert result.x[0] == pytest.approx(0.5, abs=0.05)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_deterministic_given_rng(self, seed):
        def run():
            opt = CrossEntropyOptimizer(
                np.zeros(2), np.ones(2), n_samples=16, n_elites=4, n_iterations=5
            )
            return opt.minimize(
                lambda x: float(np.sum(x**2)), rng=np.random.default_rng(seed)
            )

        a, b = run(), run()
        np.testing.assert_array_equal(a.x, b.x)
        assert a.fun == b.fun
