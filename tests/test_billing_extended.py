"""Extended billing tests: tariff identities and surge interactions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.billing.bills import BillBreakdown, customer_bill
from repro.billing.realtime import RealTimePriceModel
from repro.core.config import PricingConfig
from repro.netmetering.cost import NetMeteringCostModel

H = 6


class TestBillIdentity:
    @settings(max_examples=50, deadline=None)
    @given(
        trading=arrays(np.float64, H, elements=st.floats(-2.0, 4.0)),
        others=arrays(np.float64, H, elements=st.floats(0.0, 30.0)),
        w=st.floats(1.0, 4.0),
    )
    def test_charge_minus_credit_equals_cost(self, trading, others, w):
        """The bill decomposition always reconstructs the Eqn. (2) cost."""
        model = NetMeteringCostModel(prices=(0.03,) * H, sellback_divisor=w)
        bill = customer_bill(trading, others, model)
        assert bill.total == pytest.approx(
            model.customer_cost(trading, others), abs=1e-9
        )

    @settings(max_examples=50, deadline=None)
    @given(
        trading=arrays(np.float64, H, elements=st.floats(-2.0, 4.0)),
        others=arrays(np.float64, H, elements=st.floats(0.0, 30.0)),
    )
    def test_quantities_partition_trading(self, trading, others):
        model = NetMeteringCostModel(prices=(0.03,) * H)
        bill = customer_bill(trading, others, model)
        assert bill.purchases_kwh - bill.sales_kwh == pytest.approx(
            trading.sum(), abs=1e-9
        )

    def test_charge_and_credit_nonnegative_by_construction(self):
        model = NetMeteringCostModel(prices=(0.03,) * H)
        trading = np.array([1.0, -1.0, 2.0, -0.5, 0.0, 0.5])
        others = np.full(H, 20.0)
        bill = customer_bill(trading, others, model)
        assert bill.energy_charge >= 0.0
        assert bill.sellback_credit >= 0.0


class TestHigherSellbackDivisorSmallerCredit:
    @settings(max_examples=30, deadline=None)
    @given(
        trading=arrays(np.float64, H, elements=st.floats(-2.0, 0.0)),
        others=arrays(np.float64, H, elements=st.floats(5.0, 30.0)),
    )
    def test_credit_decreases_in_w(self, trading, others):
        cheap = NetMeteringCostModel(prices=(0.03,) * H, sellback_divisor=1.0)
        stingy = NetMeteringCostModel(prices=(0.03,) * H, sellback_divisor=4.0)
        credit_cheap = customer_bill(trading, others, cheap).sellback_credit
        credit_stingy = customer_bill(trading, others, stingy).sellback_credit
        assert credit_cheap >= credit_stingy - 1e-12


class TestSurgePricing:
    @settings(max_examples=30, deadline=None)
    @given(demand=arrays(np.float64, H, elements=st.floats(0.0, 200.0)))
    def test_surge_never_below_linear_above_unit_demand(self, demand):
        linear = RealTimePriceModel(config=PricingConfig(), n_customers=10)
        surged = RealTimePriceModel(
            config=PricingConfig(), n_customers=10, surge_exponent=2.0
        )
        per_customer = demand / 10
        high = per_customer >= 1.0
        assert np.all(
            surged.price(demand)[high] >= linear.price(demand)[high] - 1e-12
        )

    def test_surge_below_linear_under_unit_demand(self):
        linear = RealTimePriceModel(config=PricingConfig(), n_customers=10)
        surged = RealTimePriceModel(
            config=PricingConfig(), n_customers=10, surge_exponent=2.0
        )
        demand = np.array([5.0])  # 0.5 kWh per customer
        assert surged.price(demand)[0] < linear.price(demand)[0]
