"""The fleet determinism contract, pinned bitwise.

A fleet run over K communities must be **bitwise-identical** to K
independent single-community engine runs with the same seeds — across
community × shard combinations, across a mid-run cut/resume through
per-shard checkpoints, and under seeded fault injection.  Communities
are fully independent (own source, own pipeline, own RNG), so this is
the invariant that makes the fleet layer safe to exist.

Solo timelines are computed once per community id and reused across
parametrizations: the load generator spawns per-community seeds
positionally, so the first K specs of a larger fleet equal the specs of
a smaller one with the same fleet seed.
"""

import pytest

from repro.faults.plan import builtin_plan
from repro.fleet.checkpoint import resume_fleet, save_fleet_checkpoint
from repro.fleet.engine import build_fleet
from repro.fleet.loadgen import LoadGenerator
from repro.simulation.cache import GameSolutionCache

FLEET_SEED = 5
N_DAYS = 2

# community id -> timeline (list of SlotDetection dicts), filled lazily.
_SOLO_TIMELINES: dict[str, list[dict]] = {}
_SOLO_CACHE = GameSolutionCache()


def _generator(fleet_config, n_communities, faults=None):
    return LoadGenerator(
        fleet_config,
        n_communities=n_communities,
        n_days=N_DAYS,
        seed=FLEET_SEED,
        faults=faults,
    )


def _solo_timeline(spec) -> list[dict]:
    """The community's timeline from a standalone engine run."""
    if spec.community_id not in _SOLO_TIMELINES:
        engine = spec.build_engine(cache=_SOLO_CACHE)
        engine.run()
        assert engine.exhausted
        _SOLO_TIMELINES[spec.community_id] = [
            det.to_dict() for det in engine.timeline
        ]
    return _SOLO_TIMELINES[spec.community_id]


def _fleet_timelines(fleet) -> dict[str, list[dict]]:
    return {
        cid: [det.to_dict() for det in fleet.engine_of(cid).timeline]
        for cid in fleet.community_ids
    }


@pytest.mark.parametrize("n_communities, n_shards", [(3, 1), (4, 2), (5, 3)])
def test_fleet_bitwise_equals_solo_runs(fleet_config, n_communities, n_shards):
    specs = _generator(fleet_config, n_communities).specs()
    fleet = build_fleet(specs, n_shards=n_shards, cache=GameSolutionCache())
    stats = fleet.advance()
    assert stats.exhausted

    expected = {spec.community_id: _solo_timeline(spec) for spec in specs}
    assert _fleet_timelines(fleet) == expected


def test_spec_prefix_property(fleet_config):
    """Smaller fleets are prefixes of larger ones (same fleet seed)."""
    small = _generator(fleet_config, 3).specs()
    large = _generator(fleet_config, 5).specs()
    assert large[:3] == small


def test_cut_and_resume_is_bitwise_identical(fleet_config, tmp_path):
    specs = _generator(fleet_config, 4).specs()
    fleet = build_fleet(specs, n_shards=2, cache=GameSolutionCache())
    fleet.advance(max_ticks=17)  # mid-day cut, nowhere near a boundary
    save_fleet_checkpoint(fleet, tmp_path)

    resumed = resume_fleet(tmp_path, cache=GameSolutionCache())
    assert resumed.community_ids == fleet.community_ids
    assert resumed.events_processed == fleet.events_processed

    fleet.advance()
    resumed.advance()
    expected = {spec.community_id: _solo_timeline(spec) for spec in specs}
    assert _fleet_timelines(fleet) == expected
    assert _fleet_timelines(resumed) == expected


def test_fault_injected_fleet_matches_fault_injected_solo(fleet_config):
    """Chaos plans (drop/dup/reorder/corrupt/stall) preserve equivalence.

    The load generator re-seeds the plan per community, and the spec
    carries the plan into both arms, so the injected fault sequence is
    identical engine for engine; the fleet's stall budget and the solo
    engines' auto-installed retry policy both outlast the plan's
    ``max_stall``, so both arms drain completely.
    """
    template = builtin_plan("chaos")
    specs = _generator(fleet_config, 3, faults=template).specs()
    assert all(spec.faults is not None for spec in specs)
    # Distinct per-community fault seeds, reproducible across calls.
    seeds = [spec.faults.seed for spec in specs]
    assert len(set(seeds)) == len(seeds)
    assert _generator(fleet_config, 3, faults=template).specs() == specs

    fleet = build_fleet(specs, n_shards=2, cache=GameSolutionCache())
    stats = fleet.advance()
    assert stats.exhausted

    expected = {}
    for spec in specs:
        engine = spec.build_engine(cache=GameSolutionCache())
        engine.run()
        assert engine.exhausted
        expected[spec.community_id] = [det.to_dict() for det in engine.timeline]
    assert _fleet_timelines(fleet) == expected


def test_envelope_ingestion_matches_direct_pipeline_feed(fleet_config):
    """Batched envelope ingestion equals feeding each pipeline directly.

    External feeds carry no repair feedback edge (exactly like the
    single-community service's ``POST /events``), so the reference arm
    is ``pipeline.handle`` on the same event sequence — not an
    attached-source run.
    """
    generator = _generator(fleet_config, 3)
    specs = generator.specs()

    fleet = build_fleet(specs, n_shards=2, cache=GameSolutionCache())
    for envelope in generator.envelopes(specs):
        fleet.ingest_envelope(envelope)

    expected = {}
    for spec in specs:
        engine = spec.build_engine(cache=GameSolutionCache())
        source = generator.source_for(spec)
        while not source.exhausted:
            event = source.next_event()
            if event is not None:
                engine.pipeline.handle(event)
        expected[spec.community_id] = [det.to_dict() for det in engine.timeline]
    assert _fleet_timelines(fleet) == expected
