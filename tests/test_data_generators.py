"""Tests for the synthetic data generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PricingConfig, SolarConfig, TimeGrid
from repro.data.appliances import (
    APPLIANCE_CATALOG,
    ENERGY_QUANTUM,
    ApplianceTemplate,
    generate_tasks,
)
from repro.data.community import _split_counts, build_community
from repro.data.pricing import (
    GuidelinePriceModel,
    baseline_demand_profile,
    generate_history,
    household_base_load_profile,
)
from repro.data.solar import clear_sky_profile, generate_pv


class TestApplianceTemplates:
    def test_catalog_is_valid(self):
        for template in APPLIANCE_CATALOG:
            assert template.power_levels[0] == pytest.approx(0.0)
            assert template.energy_range_kwh[0] > 0

    def test_template_rejects_bad_energy(self):
        with pytest.raises(ValueError, match="energy"):
            ApplianceTemplate("x", (0.0, 1.0), (0.0, 1.0), 0, 10, 2)

    def test_template_rejects_nonmultiple_levels(self):
        with pytest.raises(ValueError, match="multiple"):
            ApplianceTemplate("x", (0.0, 0.5, 0.8), (1.0, 2.0), 0, 10, 2)


class TestGenerateTasks:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_tasks=st.integers(1, 8),
    )
    def test_all_tasks_feasible(self, seed, n_tasks):
        rng = np.random.default_rng(seed)
        grid = TimeGrid(slots_per_day=24, n_days=1)
        tasks = generate_tasks(rng, grid, n_tasks)
        assert len(tasks) == n_tasks
        for task in tasks:
            task.check_feasible(grid.horizon)

    def test_energies_on_quantum_grid(self, rng, time_grid):
        for task in generate_tasks(rng, time_grid, 6):
            ratio = task.energy_kwh / ENERGY_QUANTUM
            assert abs(ratio - round(ratio)) < 1e-9

    def test_template_diversity(self, rng, time_grid):
        """Drawing as many tasks as templates uses each exactly once."""
        tasks = generate_tasks(rng, time_grid, len(APPLIANCE_CATALOG))
        bases = {t.name.rsplit("_", 1)[0] for t in tasks}
        assert len(bases) == len(APPLIANCE_CATALOG)

    def test_rejects_zero_tasks(self, rng, time_grid):
        with pytest.raises(ValueError):
            generate_tasks(rng, time_grid, 0)


class TestSolar:
    def test_clear_sky_zero_at_night(self, time_grid):
        profile = clear_sky_profile(time_grid, SolarConfig())
        assert profile[0] == pytest.approx(0.0)
        assert profile[23] == pytest.approx(0.0)
        assert profile.max() > 0.9

    def test_clear_sky_peaks_midday(self, time_grid):
        profile = clear_sky_profile(time_grid, SolarConfig())
        assert 10 <= int(np.argmax(profile)) <= 14

    def test_generate_pv_nonnegative(self, rng, time_grid):
        pv = generate_pv(rng, time_grid, SolarConfig(peak_kw=1.0))
        assert np.all(pv >= 0.0)
        assert np.all(pv <= 1.0 + 1e-9)

    def test_zero_peak_all_zero(self, rng, time_grid):
        pv = generate_pv(rng, time_grid, SolarConfig(peak_kw=1.0), peak_kw=0.0)
        np.testing.assert_array_equal(pv, 0.0)

    def test_rejects_negative_peak(self, rng, time_grid):
        with pytest.raises(ValueError):
            generate_pv(rng, time_grid, SolarConfig(), peak_kw=-1.0)

    def test_cloud_noise_varies_traces(self, time_grid):
        a = generate_pv(np.random.default_rng(1), time_grid, SolarConfig())
        b = generate_pv(np.random.default_rng(2), time_grid, SolarConfig())
        assert not np.allclose(a, b)


class TestDemandProfiles:
    def test_positive_everywhere(self, time_grid):
        assert np.all(baseline_demand_profile(time_grid) > 0)
        assert np.all(household_base_load_profile(time_grid) > 0)

    def test_evening_peak(self, time_grid):
        demand = baseline_demand_profile(time_grid)
        assert 17 <= int(np.argmax(demand)) <= 21

    def test_base_below_total(self, time_grid):
        """Non-schedulable base is a portion of gross demand."""
        assert np.all(
            household_base_load_profile(time_grid)
            <= baseline_demand_profile(time_grid) + 1e-9
        )


class TestGuidelinePriceModel:
    def test_price_increases_with_net_demand(self):
        model = GuidelinePriceModel(config=PricingConfig(), n_customers=100)
        low = model.price(np.full(4, 50.0), np.zeros(4))
        high = model.price(np.full(4, 150.0), np.zeros(4))
        assert np.all(high > low)

    def test_renewables_lower_price(self):
        model = GuidelinePriceModel(config=PricingConfig(), n_customers=100)
        without = model.price(np.full(4, 100.0), np.zeros(4))
        with_pv = model.price(np.full(4, 100.0), np.full(4, 60.0))
        assert np.all(with_pv < without)

    def test_price_floor(self):
        config = PricingConfig()
        model = GuidelinePriceModel(config=config, n_customers=100)
        prices = model.price(np.zeros(4), np.full(4, 1000.0))
        assert np.all(prices >= config.base_price * 0.1)

    def test_rejects_negative_demand(self):
        model = GuidelinePriceModel(config=PricingConfig(), n_customers=10)
        with pytest.raises(ValueError):
            model.price(np.array([-1.0]), np.array([0.0]))


class TestGenerateHistory:
    def test_era_structure(self, rng):
        history = generate_history(
            rng,
            n_customers=50,
            pricing=PricingConfig(),
            solar=SolarConfig(),
            n_days_pre_nm=3,
            n_days_nm=2,
        )
        assert history.n_days == 5
        assert not history.nm_active[: 3 * 24].any()
        assert history.nm_active[3 * 24 :].all()
        assert np.all(history.renewable[: 3 * 24] == pytest.approx(0.0))

    def test_day_slicing(self, rng):
        history = generate_history(
            rng,
            n_customers=50,
            pricing=PricingConfig(),
            solar=SolarConfig(),
            n_days_pre_nm=2,
            n_days_nm=2,
        )
        day = history.day(3)
        assert day.n_days == 1
        np.testing.assert_array_equal(day.prices, history.prices[72:96])

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            generate_history(
                rng,
                n_customers=10,
                pricing=PricingConfig(),
                solar=SolarConfig(),
                n_days_pre_nm=0,
                n_days_nm=0,
            )


class TestBuildCommunity:
    def test_counts_sum_to_population(self, tiny_config, rng):
        community = build_community(tiny_config, rng=rng)
        assert community.n_customers == tiny_config.n_customers

    def test_archetype_cap(self, tiny_config, rng):
        community = build_community(tiny_config, rng=rng, max_archetypes=3)
        assert len(community.customers) == 3

    def test_pv_adoption_fraction(self, tiny_config, rng):
        community = build_community(tiny_config.with_updates(pv_adoption=0.5), rng=rng)
        adopters = sum(
            count
            for customer, count in zip(community.customers, community.counts)
            if customer.has_net_metering
        )
        assert adopters == pytest.approx(0.5 * tiny_config.n_customers, abs=2)

    def test_zero_adoption(self, tiny_config, rng):
        community = build_community(tiny_config.with_updates(pv_adoption=0.0), rng=rng)
        assert not any(c.has_net_metering for c in community.customers)
        np.testing.assert_array_equal(community.total_pv, 0.0)

    def test_deterministic_given_seed(self, tiny_config):
        a = build_community(tiny_config, rng=np.random.default_rng(5))
        b = build_community(tiny_config, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.total_pv, b.total_pv)
        assert [c.tasks for c in a.customers] == [c.tasks for c in b.customers]


class TestSplitCounts:
    def test_even_split(self):
        assert _split_counts(10, 5) == [2, 2, 2, 2, 2]

    def test_remainder_spread(self):
        assert _split_counts(11, 3) == [4, 4, 3]

    def test_rejects_impossible(self):
        with pytest.raises(ValueError):
            _split_counts(2, 3)

    @given(
        total=st.integers(1, 500),
        parts=st.integers(1, 40),
    )
    def test_split_properties(self, total, parts):
        if total < parts:
            with pytest.raises(ValueError):
                _split_counts(total, parts)
            return
        counts = _split_counts(total, parts)
        assert sum(counts) == total
        assert len(counts) == parts
        assert max(counts) - min(counts) <= 1
