"""Tests for gauges, bounded histograms and Prometheus exposition."""

import math

import pytest

from repro.obs.prometheus import (
    metric_name,
    parse_prometheus_text,
    render_prometheus,
)
from repro.perf.counters import BoundedHistogram, PerfRegistry


class TestBoundedHistogram:
    def test_empty_quantiles_are_nan(self):
        hist = BoundedHistogram()
        assert math.isnan(hist.quantile(0.5))
        assert math.isnan(hist.quantile(0.0))
        assert math.isnan(hist.quantile(1.0))
        summary = hist.summary()
        assert summary["count"] == 0
        assert math.isnan(summary["p50"])

    def test_single_sample_dominates_every_quantile(self):
        hist = BoundedHistogram()
        hist.observe(3.5)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(3.5)
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["min"] == pytest.approx(3.5)
        assert summary["max"] == pytest.approx(3.5)

    def test_heavy_tail_separates_p50_from_p99(self):
        hist = BoundedHistogram()
        # 99 fast samples and one extreme outlier: the median must stay
        # at the bulk while the tail quantile finds the outlier.
        for _ in range(99):
            hist.observe(1.0)
        hist.observe(1000.0)
        assert hist.quantile(0.5) == pytest.approx(1.0)
        assert hist.quantile(0.99) == pytest.approx(1.0)
        assert hist.quantile(1.0) == pytest.approx(1000.0)
        hist.observe(1000.0)
        hist.observe(1000.0)
        assert hist.quantile(0.99) == pytest.approx(1000.0)

    def test_nearest_rank_on_uniform_grid(self):
        hist = BoundedHistogram()
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.quantile(0.5) == pytest.approx(50.0)
        assert hist.quantile(0.95) == pytest.approx(95.0)
        assert hist.quantile(0.99) == pytest.approx(99.0)

    def test_ring_buffer_keeps_recent_window_but_lifetime_stats(self):
        hist = BoundedHistogram(max_samples=4)
        for value in (100.0, 1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        # 100.0 rolled out of the quantile window...
        assert hist.quantile(1.0) == pytest.approx(4.0)
        # ...but lifetime count/total/min/max remember it.
        assert hist.count == 5
        assert hist.total == pytest.approx(110.0)
        assert hist.max == pytest.approx(100.0)
        assert hist.min == pytest.approx(1.0)

    def test_quantile_validates_range(self):
        hist = BoundedHistogram()
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_max_samples_validated(self):
        with pytest.raises(ValueError):
            BoundedHistogram(max_samples=0)


class TestRegistryGaugesAndHistograms:
    def test_set_gauge_overwrites(self):
        reg = PerfRegistry()
        reg.set_gauge("belief", 0.25)
        reg.set_gauge("belief", 0.75)
        assert reg.gauges() == {"belief": pytest.approx(0.75)}

    def test_observe_accumulates_into_named_histogram(self):
        reg = PerfRegistry()
        reg.observe("latency", 1.0)
        reg.observe("latency", 3.0)
        hist = reg.histogram("latency")
        assert hist is not None
        assert hist.count == 2
        assert "latency" in reg.histograms()

    def test_timer_hist_folds_elapsed_into_histogram(self):
        reg = PerfRegistry()
        with reg.timer("op", hist=True):
            pass
        hist = reg.histogram("op")
        assert hist is not None
        assert hist.count == 1
        # The plain timer counter still accumulates alongside.
        assert "op_s" in reg.snapshot()

    def test_plain_timer_has_no_histogram(self):
        reg = PerfRegistry()
        with reg.timer("op"):
            pass
        assert reg.histogram("op") is None

    def test_reset_clears_gauges_and_histograms(self):
        reg = PerfRegistry()
        reg.set_gauge("g", 1.0)
        reg.observe("h", 1.0)
        reg.add("c")
        reg.reset()
        assert reg.gauges() == {}
        assert reg.histograms() == {}
        assert reg.snapshot() == {}


class TestDeltaSinceIncludeZero:
    def test_default_drops_unmoved_counters(self):
        reg = PerfRegistry()
        reg.add("moved", 2)
        reg.add("idle", 0)
        baseline = reg.snapshot()
        reg.add("moved", 1)
        delta = reg.delta_since(baseline)
        assert delta == {"moved": 3 - baseline["moved"]}

    def test_include_zero_reports_exact_zero_counters(self):
        reg = PerfRegistry()
        reg.add("moved", 2)
        reg.add("idle", 0)
        delta = reg.delta_since({}, include_zero=True)
        assert delta["moved"] == 2
        # The satellite fix: an incremented-by-zero counter must appear.
        assert delta["idle"] == 0

    def test_include_zero_against_equal_baseline(self):
        reg = PerfRegistry()
        reg.add("steady", 5)
        baseline = reg.snapshot()
        full = reg.delta_since(baseline, include_zero=True)
        assert full == {"steady": 0}
        assert reg.delta_since(baseline) == {}


class TestPrometheusExposition:
    def test_metric_name_sanitization(self):
        assert metric_name("stream.pump") == "repro_stream_pump"
        assert metric_name("a.b-c d", prefix="x") == "x_a_b_c_d"
        assert metric_name("bare", prefix="") == "bare"

    def test_render_parse_round_trip(self):
        reg = PerfRegistry()
        reg.add("stream.readings", 48)
        reg.add("stream.flags", 0)
        with reg.timer("stream.pump", hist=True):
            pass
        reg.set_gauge("stream.belief_mean", 0.125)
        for value in (1.0, 2.0, 3.0):
            reg.observe("ce.iterations", value)

        text = render_prometheus(reg)
        parsed = parse_prometheus_text(text)
        samples = parsed["samples"]
        types = parsed["types"]

        assert samples[("repro_stream_readings_total", ())] == pytest.approx(48.0)
        # Zero counters are exposed, not dropped.
        assert samples[("repro_stream_flags_total", ())] == pytest.approx(0.0)
        assert types["repro_stream_flags_total"] == "counter"
        assert types["repro_stream_pump_seconds_total"] == "counter"
        assert samples[("repro_stream_belief_mean", ())] == pytest.approx(0.125)
        assert types["repro_stream_belief_mean"] == "gauge"
        assert types["repro_ce_iterations"] == "summary"
        assert samples[
            ("repro_ce_iterations", (("quantile", "0.5"),))
        ] == pytest.approx(2.0)
        assert samples[("repro_ce_iterations_sum", ())] == pytest.approx(6.0)
        assert samples[("repro_ce_iterations_count", ())] == pytest.approx(3.0)

    def test_parser_accepts_special_float_values(self):
        parsed = parse_prometheus_text("x NaN\ny +Inf\nz -Inf\n")
        assert math.isnan(parsed["samples"][("x", ())])
        assert math.isinf(parsed["samples"][("y", ())])
        assert parsed["samples"][("z", ())] < 0

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not a metric line!!\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("# TYPE broken\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("metric_name not_a_number\n")

    def test_comments_and_blanks_ignored(self):
        parsed = parse_prometheus_text("\n# HELP x y\n\nx 1.0\n")
        assert parsed["samples"][("x", ())] == pytest.approx(1.0)
