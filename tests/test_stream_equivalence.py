"""Stream-vs-batch equivalence: the replay engine must reproduce
``run_long_term_scenario`` bit for bit.

This is the streaming subsystem's core invariant: one shared RNG,
interleaved between the hacking process (event generation) and the
single-event detector (measurement noise) in the exact order of the
batch per-slot loop, makes every detection decision identical.
"""

import numpy as np
import pytest

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    SolarConfig,
    TimeGrid,
)
from repro.simulation.cache import GameSolutionCache
from repro.simulation.scenario import run_long_term_scenario
from repro.stream.pipeline import build_replay_engine


@pytest.fixture(scope="module")
def tiny_config() -> CommunityConfig:
    return CommunityConfig(
        n_customers=8,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        solar=SolarConfig(peak_kw=0.7),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4, hack_probability=0.15),
        seed=11,
    )


@pytest.fixture(scope="module")
def cache() -> GameSolutionCache:
    """One cache for the whole module: batch and stream share solves."""
    return GameSolutionCache()


def _assert_bitwise_equal(batch, streamed):
    np.testing.assert_array_equal(batch.truth, streamed.truth)
    np.testing.assert_array_equal(batch.flags, streamed.flags)
    np.testing.assert_array_equal(batch.observations, streamed.observations)
    np.testing.assert_array_equal(batch.repairs, streamed.repairs)
    np.testing.assert_array_equal(batch.repaired_counts, streamed.repaired_counts)
    assert batch.realized_grid.tobytes() == streamed.realized_grid.tobytes()
    assert batch.tp_rate == streamed.tp_rate
    assert batch.fp_rate == streamed.fp_rate


@pytest.mark.parametrize("detector", ["aware", "unaware", "none"])
def test_replay_matches_batch(tiny_config, cache, detector):
    batch = run_long_term_scenario(
        tiny_config, detector=detector, n_slots=48, calibration_trials=5, cache=cache
    )
    engine = build_replay_engine(
        tiny_config, detector=detector, n_slots=48, calibration_trials=5, cache=cache
    )
    engine.run()
    assert engine.exhausted
    _assert_bitwise_equal(batch, engine.result())


def test_replay_matches_batch_pbvi(tiny_config, cache):
    """The PBVI policy path seeds its own generator from the shared one;
    the interleaving must still line up."""
    batch = run_long_term_scenario(
        tiny_config,
        detector="aware",
        n_slots=24,
        policy="pbvi",
        calibration_trials=4,
        cache=cache,
    )
    engine = build_replay_engine(
        tiny_config,
        detector="aware",
        n_slots=24,
        policy="pbvi",
        calibration_trials=4,
        cache=cache,
    )
    engine.run()
    _assert_bitwise_equal(batch, engine.result())


def test_replay_seed_override(tiny_config, cache):
    """An explicit seed flows through identically on both paths."""
    batch = run_long_term_scenario(
        tiny_config, detector="none", n_slots=24, seed=5, cache=cache
    )
    engine = build_replay_engine(
        tiny_config, detector="none", n_slots=24, seed=5, cache=cache
    )
    engine.run()
    _assert_bitwise_equal(batch, engine.result())


def test_stepwise_pumping_equals_bulk_run(tiny_config, cache):
    """Pumping one event at a time is the same stream as run()."""
    bulk = build_replay_engine(
        tiny_config, detector="none", n_slots=24, cache=cache
    )
    bulk.run()
    stepped = build_replay_engine(
        tiny_config, detector="none", n_slots=24, cache=cache
    )
    while not stepped.exhausted:
        stepped.step()
    assert [d.to_dict() for d in bulk.timeline] == [
        d.to_dict() for d in stepped.timeline
    ]
