"""Cross-optimizer consistency tests on shared battery instances."""

import numpy as np
import pytest

from repro.core.config import BatteryConfig
from repro.netmetering.battery import validate_trajectory
from repro.netmetering.cost import NetMeteringCostModel
from repro.optimization.annealing import simulated_annealing
from repro.optimization.baselines import coordinate_descent, random_search
from repro.optimization.battery import BatteryOptimizer, BatteryProblem

H = 12
SPEC = BatteryConfig(
    capacity_kwh=2.0, initial_kwh=0.0, max_charge_kw=1.0, max_discharge_kw=1.0
)


@pytest.fixture(scope="module")
def problem() -> BatteryProblem:
    prices = np.array([0.01] * 4 + [0.06] * 4 + [0.02] * 4)
    return BatteryProblem(
        load=(0.8,) * H,
        pv=(0.0, 0.0, 0.5, 1.0, 1.0, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
        others_trading=(15.0,) * H,
        spec=SPEC,
        cost_model=NetMeteringCostModel(prices=tuple(prices), sellback_divisor=2.0),
    )


@pytest.fixture(scope="module")
def reference_cost(problem) -> float:
    """A well-budgeted CE run as the reference optimum."""
    result = BatteryOptimizer(n_samples=96, n_elites=12, n_iterations=40).optimize(
        problem, rng=np.random.default_rng(0)
    )
    return result.fun


class TestOptimizerConsistency:
    def test_all_optimizers_feasible(self, problem):
        bounds = (np.zeros(H), np.full(H, SPEC.capacity_kwh))
        candidates = [
            BatteryOptimizer(n_samples=32, n_iterations=10)
            .optimize(problem, rng=np.random.default_rng(1))
            .x,
            random_search(
                problem.cost, *bounds, n_samples=200,
                rng=np.random.default_rng(1), projection=problem.project,
            ).x,
            coordinate_descent(
                problem.cost, *bounds, n_grid=5, n_sweeps=3,
                projection=problem.project,
            ).x,
            simulated_annealing(
                problem.cost, *bounds, n_iterations=300,
                rng=np.random.default_rng(1), projection=problem.project,
            ).x,
        ]
        for decision in candidates:
            validate_trajectory(problem.full_trajectory(decision), SPEC)

    def test_all_beat_idle(self, problem):
        """Every optimizer finds the cheap->expensive arbitrage."""
        idle = problem.cost(np.zeros(H))
        bounds = (np.zeros(H), np.full(H, SPEC.capacity_kwh))
        results = {
            "ce": BatteryOptimizer(n_samples=48, n_iterations=15).optimize(
                problem, rng=np.random.default_rng(2)
            ),
            "sa": simulated_annealing(
                problem.cost, *bounds, n_iterations=800,
                rng=np.random.default_rng(2), projection=problem.project,
            ),
            "cd": coordinate_descent(
                problem.cost, *bounds, n_grid=7, n_sweeps=4,
                projection=problem.project,
            ),
        }
        for name, result in results.items():
            assert result.fun < idle, f"{name} failed to beat idle"

    def test_ce_near_reference(self, problem, reference_cost):
        result = BatteryOptimizer(n_samples=64, n_iterations=25).optimize(
            problem, rng=np.random.default_rng(3)
        )
        assert result.fun <= reference_cost * 1.05 + 0.05

    def test_optimizers_agree_on_direction(self, problem, reference_cost):
        """The reference solution stores energy before the expensive block
        — the physically meaningful optimum every method approximates."""
        result = BatteryOptimizer(n_samples=96, n_elites=12, n_iterations=40).optimize(
            problem, rng=np.random.default_rng(0)
        )
        trajectory = problem.full_trajectory(result.x)
        assert trajectory[4] > 0.5  # charged before the price jump at slot 4
