"""Tests for the hierarchical span tracer (`repro.obs.trace`)."""

import json

import pytest

from repro.obs.trace import TRACER, Span, Tracer, _NOOP_SPAN


@pytest.fixture()
def tracer():
    t = Tracer()
    t.enable(run_id="test-run")
    return t


class TestDisabledTracer:
    def test_span_returns_shared_noop(self):
        t = Tracer()
        assert t.span("anything") is _NOOP_SPAN
        assert t.span("other", category="x", attr=1) is _NOOP_SPAN

    def test_noop_span_is_inert_context_manager(self):
        t = Tracer()
        with t.span("ignored") as span:
            assert span is None
        assert t.spans() == ()

    def test_begin_end_are_noops(self):
        t = Tracer()
        span_id = t.begin("detached")
        assert span_id is None
        t.end(span_id)  # must not raise
        assert t.spans() == ()

    def test_current_span_id_none(self):
        t = Tracer()
        assert t.current_span_id is None

    def test_global_tracer_starts_disabled(self):
        assert TRACER.enabled is False


class TestSpanRecording:
    def test_ids_are_sequential_from_one(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.span_id for s in tracer.spans()] == [1, 2, 3]

    def test_enable_resets_sequence(self, tracer):
        with tracer.span("a"):
            pass
        tracer.enable(run_id="second")
        with tracer.span("z"):
            pass
        spans = tracer.spans()
        assert [s.span_id for s in spans] == [1]
        assert spans[0].name == "z"

    def test_nesting_sets_parent_id(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        outer, inner, sibling = tracer.spans()
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id

    def test_attrs_and_category_recorded(self, tracer):
        with tracer.span("game.round", category="scheduling", round=3):
            pass
        (span,) = tracer.spans()
        assert span.category == "scheduling"
        assert span.attrs == {"round": 3}

    def test_timestamps_monotonic(self, tracer):
        with tracer.span("timed"):
            pass
        (span,) = tracer.spans()
        assert span.end_us is not None
        assert span.end_us >= span.start_us >= 0
        assert span.duration_us == span.end_us - span.start_us

    def test_current_span_id_tracks_stack(self, tracer):
        assert tracer.current_span_id is None
        with tracer.span("outer") as outer:
            assert tracer.current_span_id == outer.span_id
            with tracer.span("inner") as inner:
                assert tracer.current_span_id == inner.span_id
            assert tracer.current_span_id == outer.span_id
        assert tracer.current_span_id is None

    def test_exception_still_closes_span(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.end_us is not None


class TestDetachedSpans:
    def test_begin_end_round_trip(self, tracer):
        span_id = tracer.begin("stream.day", category="stream", day=2)
        assert span_id == 1
        tracer.end(span_id)
        (span,) = tracer.spans()
        assert span.name == "stream.day"
        assert span.end_us is not None

    def test_detached_span_not_on_stack(self, tracer):
        span_id = tracer.begin("detached")
        assert tracer.current_span_id is None
        with tracer.span("stacked") as stacked:
            assert tracer.current_span_id == stacked.span_id
        tracer.end(span_id)

    def test_explicit_parent_id(self, tracer):
        parent = tracer.begin("outer")
        child = tracer.begin("inner", parent_id=parent)
        tracer.end(child)
        tracer.end(parent)
        spans = tracer.spans()
        assert spans[1].parent_id == parent

    def test_end_unknown_id_is_harmless(self, tracer):
        tracer.end(999)
        assert tracer.spans() == ()


class TestDecorator:
    def test_traced_wraps_call_in_span(self, tracer):
        @tracer.traced("work.unit", category="test")
        def work(x: int) -> int:
            return x * 2

        assert work(21) == 42
        (span,) = tracer.spans()
        assert span.name == "work.unit"
        assert span.category == "test"

    def test_traced_is_free_when_disabled(self):
        t = Tracer()

        @t.traced("work.unit")
        def work() -> int:
            return 7

        assert work() == 7
        assert t.spans() == ()


class TestChromeExport:
    def test_export_shape(self, tracer):
        with tracer.span("outer", category="repro", label="x"):
            with tracer.span("inner"):
                pass
        doc = tracer.to_chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "metadata"}
        assert doc["metadata"]["run_id"] == "test-run"
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "repro:test-run"
        x_events = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in x_events] == ["outer", "inner"]
        for event in x_events:
            assert event["pid"] == 1 and event["tid"] == 1
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "span_id" in event["args"]

    def test_metadata_passthrough(self):
        t = Tracer()
        t.enable(run_id="meta", metadata={"config_sha256": "abc"})
        doc = t.to_chrome_trace()
        assert doc["metadata"]["config_sha256"] == "abc"

    def test_still_open_span_exports_with_last_timestamp(self, tracer):
        tracer.begin("never.closed")
        with tracer.span("closed"):
            pass
        doc = tracer.to_chrome_trace()
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["dur"] >= 0 for e in x_events)

    def test_write_round_trips_json(self, tracer, tmp_path):
        with tracer.span("a"):
            pass
        path = tracer.write(tmp_path / "sub" / "trace.json")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["traceEvents"][1]["name"] == "a"

    def test_span_to_dict(self):
        span = Span(
            span_id=4, parent_id=2, name="n", category="c", start_us=1, end_us=9
        )
        payload = span.to_dict()
        assert payload["span_id"] == 4
        assert payload["parent_id"] == 2
        assert payload["end_us"] == 9
