"""Integration tests for the DetectionFramework facade."""

import numpy as np
import pytest

from repro.core.framework import DetectionFramework, SampledDay


@pytest.fixture(scope="module")
def framework(request):
    from repro.core.config import (
        BatteryConfig,
        CommunityConfig,
        DetectionConfig,
        GameConfig,
        SolarConfig,
        TimeGrid,
    )

    config = CommunityConfig(
        n_customers=8,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        battery=BatteryConfig(
            capacity_kwh=1.0, initial_kwh=0.0, max_charge_kw=0.5, max_discharge_kw=0.5
        ),
        solar=SolarConfig(peak_kw=0.7),
        game=GameConfig(
            max_rounds=2,
            inner_iterations=1,
            ce_samples=8,
            ce_elites=2,
            ce_iterations=2,
            convergence_tol=0.1,
        ),
        detection=DetectionConfig(n_monitored_meters=4),
        seed=21,
    )
    return DetectionFramework(config, aware=True).train()


class TestLifecycle:
    def test_untrained_raises(self):
        from repro.core.presets import smoke_preset

        fw = DetectionFramework(smoke_preset())
        with pytest.raises(RuntimeError, match="train"):
            fw.predict_price()
        with pytest.raises(RuntimeError, match="train"):
            fw.history

    def test_community_lazy_build(self, framework):
        community = framework.community
        assert community.n_customers == framework.config.n_customers
        assert framework.community is community  # cached

    def test_history_available_after_train(self, framework):
        assert framework.history.n_days >= 3


class TestPerDayPipeline:
    def test_sample_day_shapes(self, framework):
        day = framework.sample_day(weather=0.8)
        assert isinstance(day, SampledDay)
        for arr in (
            day.demand_forecast,
            day.renewable_forecast,
            day.clean_prices,
            day.predicted_prices,
        ):
            assert arr.shape == (24,)
        assert np.all(day.clean_prices > 0)

    def test_sample_day_weather_validation(self, framework):
        with pytest.raises(ValueError, match="weather"):
            framework.sample_day(weather=1.5)

    def test_predict_load(self, framework):
        day = framework.sample_day(weather=0.7)
        prediction = framework.predict_load(day.predicted_prices)
        assert prediction.load.shape == (24,)
        assert prediction.par >= 1.0
        assert prediction.aware

    def test_detect_single_event_benign(self, framework):
        day = framework.sample_day(weather=0.6)
        detector = framework.single_event_detector(day.predicted_prices)
        detection = detector.check(day.predicted_prices)
        # received == predicted gives exactly zero PAR margin (plus noise)
        assert abs(detection.margin) < 0.2

    def test_detect_single_event_attack(self, framework):
        from repro.attacks.pricing import ZeroPriceAttack

        day = framework.sample_day(weather=0.6)
        detector = framework.single_event_detector(day.predicted_prices)
        attacked = ZeroPriceAttack(18, 20).apply(day.clean_prices)
        clean_margin = detector.check(day.clean_prices).margin
        attacked_margin = detector.check(attacked).margin
        assert attacked_margin >= clean_margin - 0.05


class TestUnawareVariant:
    def test_unaware_predictor_trains(self):
        from repro.core.config import CommunityConfig, GameConfig, TimeGrid

        config = CommunityConfig(
            n_customers=6,
            appliances_per_customer=(2, 2),
            time=TimeGrid(),
            game=GameConfig(
                max_rounds=2,
                inner_iterations=1,
                ce_samples=8,
                ce_elites=2,
                ce_iterations=2,
            ),
            seed=31,
        )
        fw = DetectionFramework(config, aware=False).train()
        prices = fw.predict_price()
        assert prices.shape == (24,)
        assert np.all(prices >= 0)
