"""Tests for the POMDP model, belief filter and solvers."""

import numpy as np
import pytest
from scipy import stats

from repro.detection.pomdp import (
    MONITOR,
    REPAIR,
    PomdpModel,
    _flag_count_pmf,
    build_detection_pomdp,
)
from repro.detection.solvers import (
    BeliefFilter,
    PbviPolicy,
    QmdpPolicy,
    value_iteration_mdp,
)


@pytest.fixture
def model() -> PomdpModel:
    return build_detection_pomdp(
        4,
        hack_probability=0.1,
        tp_rate=0.9,
        fp_rate=0.05,
        damage_per_meter=1.0,
        repair_fixed_cost=2.0,
        repair_cost_per_meter=1.0,
        discount=0.9,
    )


class TestFlagCountPmf:
    def test_sums_to_one(self):
        pmf = _flag_count_pmf(3, 5, 0.8, 0.1)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf.shape == (9,)

    def test_perfect_detector(self):
        pmf = _flag_count_pmf(3, 5, 1.0, 0.0)
        assert pmf[3] == pytest.approx(1.0)

    def test_matches_binomial_when_no_clean(self):
        pmf = _flag_count_pmf(4, 0, 0.7, 0.5)
        np.testing.assert_allclose(pmf, stats.binom.pmf(np.arange(5), 4, 0.7))


class TestBuildDetectionPomdp:
    def test_shapes(self, model):
        assert model.n_states == 5
        assert model.n_actions == 2
        assert model.n_observations == 5

    def test_transition_rows_stochastic(self, model):
        np.testing.assert_allclose(model.transitions.sum(axis=2), 1.0)

    def test_monitor_growth_only(self, model):
        """Under monitoring the hacked count never decreases."""
        t = model.transitions[MONITOR]
        for s in range(model.n_states):
            assert t[s, :s].sum() == pytest.approx(0.0)

    def test_repair_resets_then_reinfects(self, model):
        """Repair rows are the fresh-compromise distribution from zero."""
        t = model.transitions[REPAIR]
        expected = stats.binom.pmf(np.arange(5), 4, 0.1)
        for s in range(model.n_states):
            np.testing.assert_allclose(t[s], expected, atol=1e-12)

    def test_rewards_structure(self, model):
        assert model.rewards[MONITOR, 0] == pytest.approx(0.0)
        assert model.rewards[MONITOR, 3] == pytest.approx(-3.0)
        assert model.rewards[REPAIR, 0] == pytest.approx(-2.0)
        assert model.rewards[REPAIR, 3] == -3.0 - 2.0 - 3.0

    def test_validation_catches_bad_rows(self, model):
        bad = model.transitions.copy()
        bad[0, 0, 0] += 0.5
        with pytest.raises(ValueError, match="transition rows"):
            PomdpModel(
                transitions=bad,
                observations=model.observations,
                rewards=model.rewards,
                discount=model.discount,
            )

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            build_detection_pomdp(3, hack_probability=0.1, tp_rate=1.2, fp_rate=0.0)


class TestValueIteration:
    def test_q_values_negative(self, model):
        q = value_iteration_mdp(model)
        assert q.shape == (2, 5)
        assert np.all(q <= 1e-9)

    def test_monitor_preferred_when_clean(self, model):
        q = value_iteration_mdp(model)
        assert q[MONITOR, 0] > q[REPAIR, 0]

    def test_repair_preferred_when_saturated(self, model):
        q = value_iteration_mdp(model)
        assert q[REPAIR, 4] > q[MONITOR, 4]

    def test_zero_damage_never_repair(self):
        model = build_detection_pomdp(
            3, hack_probability=0.2, tp_rate=0.9, fp_rate=0.05, damage_per_meter=0.0
        )
        q = value_iteration_mdp(model)
        assert np.all(q[MONITOR] >= q[REPAIR])


class TestBeliefFilter:
    def test_initial_belief(self, model):
        belief = BeliefFilter(model).belief
        assert belief[0] == pytest.approx(1.0)
        assert belief.sum() == pytest.approx(1.0)

    def test_update_normalizes(self, model):
        filt = BeliefFilter(model)
        for o in (0, 1, 2, 1):
            belief = filt.update(MONITOR, o)
            assert belief.sum() == pytest.approx(1.0)
            assert np.all(belief >= 0)

    def test_high_observation_raises_expected_state(self, model):
        filt = BeliefFilter(model)
        before = filt.expected_state()
        filt.update(MONITOR, 4)
        assert filt.expected_state() > before

    def test_repair_action_pulls_toward_clean(self, model):
        filt = BeliefFilter(model)
        for _ in range(4):
            filt.update(MONITOR, 4)
        high = filt.expected_state()
        filt.update(REPAIR, 0)
        assert filt.expected_state() < high

    def test_reset_custom_belief(self, model):
        filt = BeliefFilter(model)
        filt.reset(np.array([0.0, 0.0, 1.0, 0.0, 0.0]))
        assert filt.expected_state() == pytest.approx(2.0)

    def test_reset_rejects_bad_belief(self, model):
        filt = BeliefFilter(model)
        with pytest.raises(ValueError):
            filt.reset(np.array([0.5, 0.5, 0.5, 0.0, 0.0]))

    def test_bayes_correctness_two_state(self):
        """Hand-checkable two-state POMDP: posterior matches Bayes' rule."""
        transitions = np.zeros((1, 2, 2))
        transitions[0] = np.array([[0.9, 0.1], [0.0, 1.0]])
        observations = np.zeros((1, 2, 2))
        observations[0] = np.array([[0.8, 0.2], [0.3, 0.7]])
        rewards = np.zeros((1, 2))
        model = PomdpModel(
            transitions=transitions,
            observations=observations,
            rewards=rewards,
            discount=0.9,
        )
        filt = BeliefFilter(model)
        belief = filt.update(0, 1)
        # predicted = [0.9, 0.1]; likelihood of o=1: [0.2, 0.7]
        expected = np.array([0.9 * 0.2, 0.1 * 0.7])
        expected /= expected.sum()
        np.testing.assert_allclose(belief, expected)


class TestPolicies:
    def test_qmdp_repairs_on_high_belief(self, model):
        policy = QmdpPolicy(model)
        clean = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        saturated = np.array([0.0, 0.0, 0.0, 0.0, 1.0])
        assert policy.action(clean) == MONITOR
        assert policy.action(saturated) == REPAIR

    def test_qmdp_value_monotone_in_damage_state(self, model):
        policy = QmdpPolicy(model)
        v0 = policy.value(np.eye(5)[0])
        v4 = policy.value(np.eye(5)[4])
        assert v0 > v4

    def test_pbvi_matches_qmdp_on_extremes(self, model):
        pbvi = PbviPolicy(model, n_beliefs=48, n_backups=25, rng=np.random.default_rng(0))
        assert pbvi.action(np.eye(5)[0]) == MONITOR
        assert pbvi.action(np.eye(5)[4]) == REPAIR

    def test_pbvi_value_lower_bounds_optimal(self, model):
        """PBVI values are a lower bound; QMDP upper-bounds the optimum."""
        pbvi = PbviPolicy(model, n_beliefs=48, n_backups=25, rng=np.random.default_rng(0))
        qmdp = QmdpPolicy(model)
        for belief in np.eye(5):
            assert pbvi.value(belief) <= qmdp.value(belief) + 1e-6

    def test_policy_belief_shape_validation(self, model):
        with pytest.raises(ValueError):
            QmdpPolicy(model).action(np.ones(3) / 3)
        pbvi = PbviPolicy(model, n_beliefs=8, n_backups=3)
        with pytest.raises(ValueError):
            pbvi.action(np.ones(3) / 3)
