"""Extended DP scheduler tests: slot durations, interactions, diagnostics."""

import numpy as np
import pytest

from repro.scheduling.appliance import ApplianceTask, InfeasibleTaskError
from repro.scheduling.dp import DpDiagnostics, schedule_appliance_table


class TestSlotHours:
    def test_half_hour_slots(self):
        """With 30-minute slots a 1 kW level delivers 0.5 kWh per slot."""
        task = ApplianceTask("t", (0.0, 1.0), 2.0, 0, 7)
        table = np.zeros((8, 2))
        table[:, 1] = [5, 1, 1, 1, 1, 5, 5, 5]
        schedule, _ = schedule_appliance_table(task, table, slot_hours=0.5)
        # needs 4 slots at 1 kW to reach 2 kWh
        assert sum(p > 0 for p in schedule.power) == 4
        assert schedule.power[1] == pytest.approx(1.0) and schedule.power[4] == pytest.approx(1.0)

    def test_slot_hours_feasibility(self):
        """Halving the slot duration halves the window capacity."""
        task = ApplianceTask("t", (0.0, 1.0), 5.0, 0, 7)
        task.check_feasible(8, slot_hours=1.0)
        with pytest.raises(InfeasibleTaskError):
            task.check_feasible(8, slot_hours=0.5)


class TestDiagnostics:
    def test_fields(self, simple_task):
        table = np.zeros((24, 3))
        _, diag = schedule_appliance_table(simple_task, table)
        assert isinstance(diag, DpDiagnostics)
        assert diag.n_slots == 24
        assert diag.n_states == int(simple_task.energy_kwh / 0.5) + 1
        assert diag.optimal_cost == pytest.approx(0.0)

    def test_cost_additivity(self):
        """Optimal cost of two independent tasks on disjoint windows equals
        the sum of the individual optima."""
        rng = np.random.default_rng(3)
        task_a = ApplianceTask("a", (0.0, 1.0), 2.0, 0, 5)
        task_b = ApplianceTask("b", (0.0, 1.0), 3.0, 10, 17)
        table = rng.uniform(0, 1, size=(24, 2))
        table[:, 0] = 0.0
        _, diag_a = schedule_appliance_table(task_a, table)
        _, diag_b = schedule_appliance_table(task_b, table)
        combined = ApplianceTask("ab", (0.0, 1.0), 5.0, 0, 17)
        _, diag_ab = schedule_appliance_table(combined, table)
        # the merged window can only do at least as well
        assert diag_ab.optimal_cost <= diag_a.optimal_cost + diag_b.optimal_cost + 1e-9


class TestLevelSubsets:
    def test_intermediate_levels_used_when_cheaper(self):
        """A convex per-slot cost rewards spreading at low power."""
        task = ApplianceTask("t", (0.0, 0.5, 1.0), 2.0, 0, 7)
        table = np.zeros((8, 3))
        table[:, 1] = 1.0  # cost of 0.5 kW
        table[:, 2] = 3.0  # cost of 1.0 kW is superlinear
        schedule, diag = schedule_appliance_table(task, table)
        # four half-power slots (cost 4) beat two full-power (cost 6)
        assert diag.optimal_cost == pytest.approx(4.0)
        assert all(p in (0.0, 0.5) for p in schedule.power)

    def test_concentration_when_subadditive(self):
        """A concave per-slot cost rewards concentration at high power."""
        task = ApplianceTask("t", (0.0, 0.5, 1.0), 2.0, 0, 7)
        table = np.zeros((8, 3))
        table[:, 1] = 1.0
        table[:, 2] = 1.5  # doubling power costs only 1.5x
        schedule, diag = schedule_appliance_table(task, table)
        assert diag.optimal_cost == pytest.approx(3.0)
        assert sum(p == pytest.approx(1.0) for p in schedule.power) == 2


class TestWindowEdges:
    def test_single_slot_window(self):
        task = ApplianceTask("t", (0.0, 2.0), 2.0, 5, 5)
        table = np.zeros((24, 2))
        schedule, _ = schedule_appliance_table(task, table)
        assert schedule.power[5] == pytest.approx(2.0)
        assert schedule.energy() == pytest.approx(2.0)

    def test_window_at_horizon_end(self):
        task = ApplianceTask("t", (0.0, 1.0), 1.0, 23, 23)
        table = np.zeros((24, 2))
        schedule, _ = schedule_appliance_table(task, table)
        assert schedule.power[23] == pytest.approx(1.0)

    def test_zero_cost_ties_still_meet_energy(self):
        task = ApplianceTask("t", (0.0, 0.5, 1.0), 3.0, 2, 20)
        table = np.zeros((24, 3))
        schedule, _ = schedule_appliance_table(task, table)
        schedule.validate()
