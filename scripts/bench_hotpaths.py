#!/usr/bin/env python
"""Time the CE/game/scenario hot paths and append to BENCH_hotpaths.json.

Thin wrapper so the bench runs without installing the package:

    PYTHONPATH=src python scripts/bench_hotpaths.py [--preset bench] [--out ...]

See :mod:`repro.perf.bench` for the harness itself.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.perf.bench import main

if __name__ == "__main__":
    sys.exit(main())
