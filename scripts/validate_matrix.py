"""Validate a ``repro sweep-matrix`` JSON artifact.

Usage::

    PYTHONPATH=src python scripts/validate_matrix.py matrix.json

Checks the artifact against the ``repro-sweep-matrix`` schema: format
marker and version, axis lists, a cell for every coordinate in the axis
product (no more, no fewer), axis membership of every cell, finite
metrics, well-formed SHA-256 digests, and an internally consistent
resilience scoreboard block per cell (integer counters, mean == total /
episodes, availability/false-alarm fractions derived from their sums).
Exits nonzero with a message on the first violation — CI's matrix-smoke
job runs this after the quick grid.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

EXPECTED_FORMAT = "repro-sweep-matrix"
EXPECTED_VERSION = 1
AXIS_NAMES = ("tariff", "attack_family", "pv_adoption", "detector")
METRIC_FIELDS = ("observation_accuracy", "mean_par", "labor_cost", "n_repairs")
DIGEST_FIELDS = ("truth_sha256", "flags_sha256", "realized_grid_sha256")


class MatrixValidationError(ValueError):
    """The artifact violates the sweep-matrix schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise MatrixValidationError(message)


def _check_counter(value: object, label: str) -> int:
    _require(
        isinstance(value, int) and not isinstance(value, bool) and value >= 0,
        f"{label}: must be a non-negative integer, got {value!r}",
    )
    assert isinstance(value, int)
    return value


def _check_scoreboard(block: object, label: str) -> None:
    """One cell's resilience block (``repro-scoreboard`` report shape)."""
    _require(isinstance(block, dict), f"{label}: must be an object")
    assert isinstance(block, dict)
    _require(
        block.get("format") == "repro-scoreboard",
        f"{label}.format: must be 'repro-scoreboard', got {block.get('format')!r}",
    )
    slots = block.get("slots")
    _require(isinstance(slots, dict), f"{label}.slots: must be an object")
    assert isinstance(slots, dict)
    total = _check_counter(slots.get("total"), f"{label}.slots.total")
    parts = sum(
        _check_counter(slots.get(k), f"{label}.slots.{k}")
        for k in ("scored", "unscored", "gaps")
    )
    _require(
        parts == total,
        f"{label}.slots: scored+unscored+gaps ({parts}) != total ({total})",
    )
    episodes = block.get("episodes")
    _require(isinstance(episodes, dict), f"{label}.episodes: must be an object")
    assert isinstance(episodes, dict)
    for key in ("total", "detected", "missed", "resolved", "open"):
        _check_counter(episodes.get(key), f"{label}.episodes.{key}")
    for section in ("mttd", "mttr"):
        stats = block.get(section)
        _require(isinstance(stats, dict), f"{label}.{section}: must be an object")
        assert isinstance(stats, dict)
        n = _check_counter(stats.get("episodes"), f"{label}.{section}.episodes")
        slots_sum = _check_counter(
            stats.get("total_slots"), f"{label}.{section}.total_slots"
        )
        mean = stats.get("mean_slots")
        if n == 0:
            _require(
                mean is None,
                f"{label}.{section}.mean_slots: must be null with no episodes",
            )
        else:
            _require(
                mean == slots_sum / n,
                f"{label}.{section}.mean_slots: {mean!r} != "
                f"total_slots/episodes ({slots_sum}/{n})",
            )
    availability = block.get("availability")
    _require(isinstance(availability, dict), f"{label}.availability: must be an object")
    assert isinstance(availability, dict)
    attacked = _check_counter(
        availability.get("attacked_slots"), f"{label}.availability.attacked_slots"
    )
    observed = _check_counter(
        availability.get("observed_slots"), f"{label}.availability.observed_slots"
    )
    fraction = availability.get("fraction")
    if attacked == 0:
        _require(
            fraction is None,
            f"{label}.availability.fraction: must be null with no attacked slots",
        )
    else:
        _require(
            fraction == observed / attacked,
            f"{label}.availability.fraction: {fraction!r} != "
            f"observed/attacked ({observed}/{attacked})",
        )


def _check_digest(value: object, label: str) -> None:
    _require(isinstance(value, str), f"{label}: digest must be a string")
    assert isinstance(value, str)
    _require(
        len(value) == 64 and all(c in "0123456789abcdef" for c in value),
        f"{label}: not a lowercase hex SHA-256 digest: {value!r}",
    )


def validate_matrix(payload: object) -> int:
    """Validate one loaded artifact; returns the cell count."""
    _require(isinstance(payload, dict), "artifact must be a JSON object")
    assert isinstance(payload, dict)
    _require(
        payload.get("format") == EXPECTED_FORMAT,
        f"format must be {EXPECTED_FORMAT!r}, got {payload.get('format')!r}",
    )
    _require(
        payload.get("version") == EXPECTED_VERSION,
        f"version must be {EXPECTED_VERSION}, got {payload.get('version')!r}",
    )
    axes = payload.get("axes")
    _require(isinstance(axes, dict), "axes must be an object")
    assert isinstance(axes, dict)
    _require(
        sorted(axes) == sorted(AXIS_NAMES),
        f"axes must be exactly {sorted(AXIS_NAMES)}, got {sorted(axes)}",
    )
    for name in AXIS_NAMES:
        values = axes[name]
        _require(
            isinstance(values, list) and len(values) > 0,
            f"axis {name!r} must be a non-empty list",
        )
        _require(
            len(set(map(str, values))) == len(values),
            f"axis {name!r} has duplicate values",
        )
    n_slots = payload.get("n_slots")
    _require(
        isinstance(n_slots, int) and n_slots > 0,
        f"n_slots must be a positive integer, got {n_slots!r}",
    )
    _check_digest(payload.get("config_sha256"), "config_sha256")
    cells = payload.get("cells")
    _require(isinstance(cells, list), "cells must be a list")
    assert isinstance(cells, list)
    expected = {
        (tariff, family, pv, detector)
        for tariff in axes["tariff"]
        for family in axes["attack_family"]
        for pv in axes["pv_adoption"]
        for detector in axes["detector"]
    }
    seen = set()
    for i, cell in enumerate(cells):
        label = f"cells[{i}]"
        _require(isinstance(cell, dict), f"{label}: must be an object")
        coord = tuple(cell.get(name) for name in AXIS_NAMES)
        _require(
            coord in expected,
            f"{label}: coordinate {coord!r} is not in the axis product",
        )
        _require(coord not in seen, f"{label}: duplicate coordinate {coord!r}")
        seen.add(coord)
        for field in METRIC_FIELDS:
            value = cell.get(field)
            _require(
                isinstance(value, (int, float)) and math.isfinite(value),
                f"{label}.{field}: must be a finite number, got {value!r}",
            )
        _require(
            cell.get("n_repairs") == int(cell["n_repairs"])
            and cell["n_repairs"] >= 0,
            f"{label}.n_repairs: must be a non-negative integer",
        )
        _require(
            0.0 <= cell["observation_accuracy"] <= 1.0,
            f"{label}.observation_accuracy: must lie in [0, 1]",
        )
        for field in DIGEST_FIELDS:
            _check_digest(cell.get(field), f"{label}.{field}")
        _check_scoreboard(cell.get("scoreboard"), f"{label}.scoreboard")
    missing = expected - seen
    if missing:
        raise MatrixValidationError(
            f"grid incomplete: {len(missing)} coordinates have no cell "
            f"(e.g. {min(missing)!r})"
        )
    return len(cells)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", type=Path, help="matrix JSON artifact path")
    args = parser.parse_args(argv)
    try:
        payload = json.loads(args.artifact.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: cannot read {args.artifact}: {exc}")
        return 1
    try:
        n_cells = validate_matrix(payload)
    except MatrixValidationError as exc:
        print(f"FAIL: {args.artifact}: {exc}")
        return 1
    print(f"OK: {args.artifact} ({n_cells} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
