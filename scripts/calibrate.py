"""Calibration harness: checks the paper's headline numbers at bench scale.

Targets (paper Section 5):
- Fig. 3(b): unaware-predicted load PAR ~ 1.4700
- Fig. 4(b): aware-predicted load PAR ~ 1.3986 (slightly lower)
- Fig. 5(b): attacked load (price zeroed 16:00-17:00) PAR ~ 1.9037
"""

import time

import numpy as np

from repro.attacks.pricing import ZeroPriceAttack
from repro.core import bench_preset
from repro.core.config import GameConfig
from repro.data.community import build_community
from repro.data.pricing import GuidelinePriceModel, baseline_demand_profile, generate_history
from repro.prediction.price import AwarePricePredictor, UnawarePricePredictor
from repro.scheduling.game import SchedulingGame


def par(load):
    return float(load.max() / load.mean())


def grid_par(result):
    return par(result.grid_demand)


def main() -> None:
    cfg = bench_preset()
    rng = np.random.default_rng(cfg.seed)
    com = build_community(cfg, rng=rng)
    d = baseline_demand_profile(cfg.time) * cfg.n_customers
    model = GuidelinePriceModel(config=cfg.pricing, n_customers=cfg.n_customers)

    history = generate_history(
        rng,
        n_customers=cfg.n_customers,
        pricing=cfg.pricing,
        solar=cfg.solar,
        mean_pv_per_customer_kw=cfg.solar.peak_kw * cfg.pv_adoption,
    )
    pv = com.total_pv  # sunny evaluation day
    clean = model.price(d, pv, rng=rng)

    unaware = UnawarePricePredictor().fit(history)
    aware = AwarePricePredictor().fit(history)
    p_unaware = unaware.predict_day()
    p_aware = aware.predict_day(demand_forecast=d, renewable_forecast=pv)

    print("price  clean  :", np.round(clean, 4))
    print("price  unaware:", np.round(p_unaware, 4))
    print("price  aware  :", np.round(p_aware, 4))
    print(
        "rmse unaware %.5f aware %.5f"
        % (
            float(np.sqrt(np.mean((p_unaware - clean) ** 2))),
            float(np.sqrt(np.mean((p_aware - clean) ** 2))),
        )
    )

    game_cfg = cfg.game
    t0 = time.time()  # repro: noqa[DET002] operator-facing progress timing, never replayed
    res_un = SchedulingGame(
        com.without_net_metering(), p_unaware, config=game_cfg
    ).solve(rng=np.random.default_rng(3))
    print(
        "Fig3b unaware-pred grid: PAR=%.4f conv=%s (%.1fs)  [target 1.4700]"
        % (grid_par(res_un), res_un.converged, time.time() - t0)  # repro: noqa[DET002] operator-facing progress timing, never replayed
    )
    t0 = time.time()  # repro: noqa[DET002] operator-facing progress timing, never replayed
    res_aw = SchedulingGame(com, p_aware, config=game_cfg).solve(
        rng=np.random.default_rng(3)
    )
    print(
        "Fig4b aware-pred grid  : PAR=%.4f conv=%s (%.1fs)  [target 1.3986]"
        % (grid_par(res_aw), res_aw.converged, time.time() - t0)  # repro: noqa[DET002] operator-facing progress timing, never replayed
    )
    attack = ZeroPriceAttack(start_slot=16, end_slot=17)
    t0 = time.time()  # repro: noqa[DET002] operator-facing progress timing, never replayed
    res_at = SchedulingGame(com, attack.apply(clean), config=game_cfg).solve(
        rng=np.random.default_rng(3)
    )
    print(
        "Fig5b attacked grid    : PAR=%.4f conv=%s (%.1fs)  [target 1.9037]"
        % (grid_par(res_at), res_at.converged, time.time() - t0)  # repro: noqa[DET002] operator-facing progress timing, never replayed
    )
    print("unaware load:", np.round(res_un.community_load, 0))
    print("aware   load:", np.round(res_aw.community_load, 0))
    print("attack  load:", np.round(res_at.community_load, 0))


if __name__ == "__main__":
    main()
