"""Run the full paper-scale experiment suite (500 customers).

The benchmark harness defaults to ``bench_preset()`` (120 customers) so
every figure regenerates in minutes.  This script runs the same pipeline
at the paper's published scale — expect on the order of an hour on a
laptop, dominated by the scheduling-game solves.

Usage:
    python scripts/run_paper_scale.py [--slots 48] [--seeds 2015 7] [--out DIR]
"""

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.attacks.pricing import ZeroPriceAttack
from repro.core.presets import paper_preset
from repro.data.community import build_community
from repro.data.pricing import (
    GuidelinePriceModel,
    baseline_demand_profile,
    generate_history,
)
from repro.detection.single_event import CommunityResponseSimulator
from repro.metrics.cost import LaborCostModel, normalized_labor_cost
from repro.metrics.errors import rmse
from repro.prediction.price import AwarePricePredictor, UnawarePricePredictor
from repro.reporting.tables import ComparisonRow, comparison_table
from repro.simulation.aggregate import run_aggregate_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slots", type=int, default=48)
    parser.add_argument("--seeds", type=int, nargs="+", default=[2015, 7])
    parser.add_argument("--out", type=Path, default=Path("paper_scale_results"))
    args = parser.parse_args()
    args.out.mkdir(parents=True, exist_ok=True)

    config = paper_preset()
    rng = np.random.default_rng(config.seed)
    started = time.time()  # repro: noqa[DET002] operator-facing progress timing, never replayed

    print(f"building the {config.n_customers}-customer community...")
    community = build_community(config, rng=rng)
    demand = baseline_demand_profile(config.time) * config.n_customers
    price_model = GuidelinePriceModel(
        config=config.pricing, n_customers=config.n_customers
    )
    history = generate_history(
        rng,
        n_customers=config.n_customers,
        pricing=config.pricing,
        solar=config.solar,
        mean_pv_per_customer_kw=config.solar.peak_kw * config.pv_adoption,
    )
    clean = price_model.price(demand, community.total_pv, rng=rng)
    p_unaware = UnawarePricePredictor().fit(history).predict_day()
    p_aware = (
        AwarePricePredictor()
        .fit(history)
        .predict_day(demand_forecast=demand, renewable_forecast=community.total_pv)
    )

    truth = CommunityResponseSimulator(
        community, config=config.game,
        sellback_divisor=config.pricing.sellback_divisor, seed=3,
    )
    unaware_model = CommunityResponseSimulator(
        community.without_net_metering(), config=config.game,
        sellback_divisor=config.pricing.sellback_divisor, seed=3,
    )

    rows = [
        ComparisonRow("Fig3a unaware price RMSE", None, rmse(clean, p_unaware)),
        ComparisonRow("Fig4a aware price RMSE", None, rmse(clean, p_aware)),
        ComparisonRow("Fig3b unaware predicted PAR", 1.4700, unaware_model.grid_par(p_unaware)),
        ComparisonRow("Fig4b aware predicted PAR", 1.3986, truth.grid_par(p_aware)),
        ComparisonRow("actual benign PAR", None, truth.grid_par(clean)),
        ComparisonRow(
            "Fig5b attacked PAR", 1.9037,
            truth.grid_par(ZeroPriceAttack(16, 17).apply(clean)),
        ),
    ]
    print(comparison_table(rows, title="Figures 3-5 at paper scale"))

    labor = LaborCostModel(
        fixed_cost=config.detection.repair_fixed_cost,
        per_meter_cost=config.detection.repair_cost_per_meter,
    )
    paper = {"none": 1.6509, "unaware": 1.5422, "aware": 1.4112}
    accuracy_paper = {"aware": 0.9514, "unaware": 0.6595}
    summary = {}
    aggregates = {}
    for kind in ("none", "unaware", "aware"):
        print(f"\nrunning {kind} scenarios over seeds {args.seeds}...")
        aggregate = run_aggregate_scenario(
            config, detector=kind, seeds=tuple(args.seeds), n_slots=args.slots
        )
        aggregates[kind] = aggregate
        summary[kind] = {
            "observation_accuracy": aggregate.observation_accuracy.mean,
            "mean_par": aggregate.mean_par.mean,
            "labor_cost": aggregate.labor_cost.mean,
        }

    rows = []
    for kind in ("aware", "unaware"):
        rows.append(
            ComparisonRow(
                f"Fig6 accuracy ({kind})",
                accuracy_paper[kind],
                summary[kind]["observation_accuracy"],
            )
        )
    for kind in ("none", "unaware", "aware"):
        rows.append(
            ComparisonRow(f"Table1 PAR ({kind})", paper[kind], summary[kind]["mean_par"])
        )
    if summary["unaware"]["labor_cost"] > 0:
        rows.append(
            ComparisonRow(
                "Table1 normalized labor (aware)",
                1.0067,
                normalized_labor_cost(
                    summary["aware"]["labor_cost"], summary["unaware"]["labor_cost"]
                ),
            )
        )
    print()
    print(comparison_table(rows, title="Figure 6 / Table 1 at paper scale"))

    (args.out / "summary.json").write_text(json.dumps(summary, indent=2))
    print(f"\nwrote {args.out / 'summary.json'}; total {time.time() - started:.0f}s")  # repro: noqa[DET002] operator-facing progress timing, never replayed


if __name__ == "__main__":
    main()
