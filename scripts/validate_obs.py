"""Validate observability artifacts produced by a traced stream run.

Usage::

    PYTHONPATH=src python scripts/validate_obs.py \
        --trace trace.json --audit audit.jsonl

Three independent checks (all run; first failure reported per check):

1. **Trace JSON** — Chrome trace-event object format: a ``traceEvents``
   list opening with one ``M`` process-name metadata event, followed by
   only ``X`` complete events with non-negative ``ts``/``dur`` and the
   span-id correlation args, plus the run manifest in ``metadata``.
2. **Audit JSONL** — every line parses and carries the versioned
   ``repro-audit-record`` envelope with a known ``kind`` and the
   kind's required evidence fields.
3. **Prometheus round trip** — in-process: exercise a fresh
   ``PerfRegistry``, render it with :func:`render_prometheus`, and
   re-parse with :func:`parse_prometheus_text` (the strict parser CI
   relies on to reject malformed expositions).
4. **Fleet trace** (``--fleet-trace``) — a *merged* fleet Chrome trace:
   all metadata events lead, the deterministic pid/tid grid names one
   process per shard (plus the aggregator), and the fleet span names
   (``fleet.tick``/``fleet.shard_tick``/``stream.slot``) are present.
5. **Scoreboard** (``--scoreboard``) — a ``GET /scoreboard`` response
   body: fleet/shards/communities blocks, each a consistent
   ``repro-scoreboard`` report, with the fleet block equal to the
   exact merge of the community reports.

Exit code 0 only when every requested check passes — CI's ``obs-smoke``
and ``scoreboard-smoke`` jobs run this right after their traced runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.audit import load_audit_jsonl  # noqa: E402
from repro.obs.prometheus import (  # noqa: E402
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.scoreboard import merge_reports  # noqa: E402
from repro.perf.counters import PerfRegistry  # noqa: E402

REQUIRED_SPANS = {"stream.run", "stream.day", "stream.slot", "detector.update"}
FLEET_REQUIRED_SPANS = {"fleet.tick", "fleet.shard_tick", "stream.slot"}
AUDIT_REQUIRED = {"format", "version", "kind", "slot", "day", "observation"}
AUDIT_KINDS = {"detection", "gap"}
SCOREBOARD_SECTIONS = (
    "slots", "confusion", "episodes", "mttd", "mttr",
    "availability", "false_alarms", "families",
)


def validate_trace(path: Path) -> list[str]:
    """Return a list of problems with a Chrome trace-event export."""
    problems: list[str] = []
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"unreadable trace JSON: {exc}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    if "run_id" not in doc.get("metadata", {}):
        problems.append("metadata.run_id missing (no run manifest?)")
    if events[0].get("ph") != "M":
        problems.append("first event is not the process_name metadata event")
    for i, event in enumerate(events[1:], start=1):
        if event.get("ph") != "X":
            problems.append(f"event {i}: ph={event.get('ph')!r}, expected 'X'")
        elif event.get("ts", -1) < 0 or event.get("dur", -1) < 0:
            problems.append(f"event {i} ({event.get('name')}): negative ts/dur")
        elif "span_id" not in event.get("args", {}):
            problems.append(f"event {i} ({event.get('name')}): no span_id arg")
        if problems:
            break  # one representative failure is enough
    missing = REQUIRED_SPANS - {event.get("name") for event in events}
    if missing:
        problems.append(f"required span names absent: {sorted(missing)}")
    return problems


def validate_fleet_trace(path: Path) -> list[str]:
    """Return a list of problems with a merged fleet Chrome trace."""
    problems: list[str] = []
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"unreadable trace JSON: {exc}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    if "run_id" not in doc.get("metadata", {}):
        problems.append("metadata.run_id missing (no run manifest?)")
    if "fleet_layout" not in doc.get("metadata", {}):
        problems.append("metadata.fleet_layout missing (not a fleet merge?)")
    # All metadata (M) events lead: the pid/tid grid is declared before
    # any span so Perfetto names every lane on first sight.
    first_x = next(
        (i for i, e in enumerate(events) if e.get("ph") != "M"), len(events)
    )
    straggler = next(
        (i for i, e in enumerate(events[first_x:], start=first_x)
         if e.get("ph") == "M"),
        None,
    )
    if straggler is not None:
        problems.append(f"metadata event {straggler} after the first span")
    processes = {
        e.get("pid"): e.get("args", {}).get("name")
        for e in events[:first_x]
        if e.get("name") == "process_name"
    }
    threads = [
        e for e in events[:first_x] if e.get("name") == "thread_name"
    ]
    if len(processes) < 2:
        problems.append(
            f"expected aggregator + >=1 shard process, got {len(processes)}"
        )
    shard_names = [n for n in processes.values()
                   if isinstance(n, str) and n.startswith("shard:")]
    if not shard_names:
        problems.append("no shard:* process in the pid grid")
    if not any(
        isinstance(t.get("args", {}).get("name"), str)
        and t["args"]["name"].startswith("community:")
        for t in threads
    ):
        problems.append("no community:* thread lane in the tid grid")
    for i, event in enumerate(events[first_x:], start=first_x):
        if event.get("ph") != "X":
            problems.append(f"event {i}: ph={event.get('ph')!r}, expected 'X'")
        elif event.get("ts", -1) < 0 or event.get("dur", -1) < 0:
            problems.append(f"event {i} ({event.get('name')}): negative ts/dur")
        elif "span_id" not in event.get("args", {}):
            problems.append(f"event {i} ({event.get('name')}): no span_id arg")
        elif event.get("pid") not in processes:
            problems.append(
                f"event {i} ({event.get('name')}): pid {event.get('pid')!r} "
                "has no process_name metadata"
            )
        if problems:
            break  # one representative failure is enough
    missing = FLEET_REQUIRED_SPANS - {event.get("name") for event in events}
    if missing:
        problems.append(f"required fleet span names absent: {sorted(missing)}")
    return problems


def _scoreboard_problems(report: object, label: str) -> list[str]:
    """Shape + internal-consistency problems of one scoreboard report."""
    if not isinstance(report, dict):
        return [f"{label}: not an object"]
    if report.get("format") != "repro-scoreboard":
        return [f"{label}: format={report.get('format')!r}"]
    missing = [k for k in SCOREBOARD_SECTIONS if k not in report]
    if missing:
        return [f"{label}: missing sections {missing}"]
    problems: list[str] = []
    slots = report["slots"]
    if slots["scored"] + slots["unscored"] + slots["gaps"] != slots["total"]:
        problems.append(f"{label}: slots do not sum to total")
    episodes = report["episodes"]
    if episodes["detected"] + episodes["missed"] != episodes["total"]:
        problems.append(f"{label}: detected+missed != total episodes")
    for section in ("mttd", "mttr"):
        stats = report[section]
        n, total = stats["episodes"], stats["total_slots"]
        mean = stats["mean_slots"]
        if (mean is None) != (n == 0) or (n and mean != total / n):
            problems.append(f"{label}: inconsistent {section} mean")
    availability = report["availability"]
    attacked = availability["attacked_slots"]
    fraction = availability["fraction"]
    if (fraction is None) != (attacked == 0) or (
        attacked and fraction != availability["observed_slots"] / attacked
    ):
        problems.append(f"{label}: inconsistent availability fraction")
    return problems


def validate_scoreboard(path: Path) -> list[str]:
    """Return a list of problems with a ``GET /scoreboard`` body."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"unreadable scoreboard JSON: {exc}"]
    if not isinstance(doc, dict):
        return ["scoreboard body is not an object"]
    missing = [k for k in ("fleet", "shards", "communities") if k not in doc]
    if missing:
        return [f"missing top-level blocks: {missing}"]
    problems = _scoreboard_problems(doc["fleet"], "fleet")
    for group in ("shards", "communities"):
        block = doc[group]
        if not isinstance(block, dict) or not block:
            problems.append(f"{group}: missing or empty")
            continue
        for key in block:
            problems.extend(_scoreboard_problems(block[key], f"{group}.{key}"))
    if not problems:
        # The fleet block must be the *exact* integer-sum merge of the
        # per-community reports — the invariant the tests pin in-process,
        # re-checked here against the live HTTP artifact.
        merged = merge_reports(list(doc["communities"].values()))
        if merged != doc["fleet"]:
            problems.append("fleet block != merge of community reports")
    return problems


def validate_audit(path: Path) -> list[str]:
    """Return a list of problems with an audit JSONL file."""
    try:
        records = load_audit_jsonl(path)
    except (OSError, ValueError) as exc:
        return [f"unreadable audit JSONL: {exc}"]
    if not records:
        return ["audit trail is empty"]
    for i, record in enumerate(records):
        missing = AUDIT_REQUIRED - set(record)
        if missing:
            return [f"record {i}: missing fields {sorted(missing)}"]
        if record["kind"] not in AUDIT_KINDS:
            return [f"record {i}: unknown kind {record['kind']!r}"]
        if record["kind"] == "gap" and "gap_reason" not in record:
            return [f"record {i}: gap record without gap_reason"]
    return []


def validate_prometheus() -> list[str]:
    """Render a fresh registry and re-parse it with the strict parser."""
    registry = PerfRegistry()
    registry.add("validate.events", 3)
    registry.set_gauge("validate.level", 0.5)
    for sample in (1.0, 2.0, 4.0):
        registry.observe("validate.latency", sample)
    text = render_prometheus(registry)
    try:
        parsed = parse_prometheus_text(text)
    except ValueError as exc:
        return [f"renderer emitted unparseable exposition: {exc}"]
    samples = parsed["samples"]
    expectations = {
        ("repro_validate_events_total", ()): 3.0,
        ("repro_validate_level", ()): 0.5,
        ("repro_validate_latency", (("quantile", "0.5"),)): 2.0,
        ("repro_validate_latency_count", ()): 3.0,
    }
    return [
        f"sample {key}: expected {expected}, got {samples.get(key)}"
        for key, expected in expectations.items()
        if samples.get(key) != expected
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", type=Path, help="Chrome trace-event JSON")
    parser.add_argument("--audit", type=Path, help="audit-trail JSONL")
    parser.add_argument(
        "--fleet-trace", type=Path,
        help="merged fleet Chrome trace (GET /trace or --trace-out)",
    )
    parser.add_argument(
        "--scoreboard", type=Path,
        help="GET /scoreboard response body (JSON)",
    )
    parser.add_argument(
        "--skip-prometheus",
        action="store_true",
        help="skip the in-process render/parse round trip",
    )
    args = parser.parse_args(argv)

    checks: list[tuple[str, list[str]]] = []
    if args.trace is not None:
        checks.append(("trace", validate_trace(args.trace)))
    if args.audit is not None:
        checks.append(("audit", validate_audit(args.audit)))
    if args.fleet_trace is not None:
        checks.append(("fleet-trace", validate_fleet_trace(args.fleet_trace)))
    if args.scoreboard is not None:
        checks.append(("scoreboard", validate_scoreboard(args.scoreboard)))
    if not args.skip_prometheus:
        checks.append(("prometheus", validate_prometheus()))
    if not checks:
        parser.error(
            "nothing to do: pass --trace/--audit/--fleet-trace/--scoreboard"
        )

    failed = False
    for name, problems in checks:
        if problems:
            failed = True
            for problem in problems:
                print(f"FAIL {name}: {problem}")
        else:
            print(f"ok   {name}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
