"""Regenerate the committed golden-master digest fixtures.

Usage::

    PYTHONPATH=src python scripts/refresh_golden.py --preset smoke
    PYTHONPATH=src python scripts/refresh_golden.py --preset bench
    PYTHONPATH=src python scripts/refresh_golden.py --matrix
    PYTHONPATH=src python scripts/refresh_golden.py --all

Writes ``tests/golden/<preset>_digests.json`` (and, for ``--matrix``,
the scenario-matrix fixture ``matrix_digests.json``).  Run this only after an
*intentional* behaviour change, eyeball the diff, and commit the result
— the fixtures exist so unintentional drift fails the suite.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.presets import bench_preset, smoke_preset  # noqa: E402
from repro.reporting.golden import (  # noqa: E402
    compute_golden_digests,
    compute_matrix_digests,
    write_golden_digests,
)

PRESETS = {"smoke": smoke_preset, "bench": bench_preset}
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"


def refresh(preset: str) -> Path:
    """Recompute and write one preset's digest fixture."""
    config = PRESETS[preset]()
    digests = compute_golden_digests(config)
    path = write_golden_digests(digests, GOLDEN_DIR / f"{preset}_digests.json")
    print(f"wrote {path}")
    return path


def refresh_matrix() -> Path:
    """Recompute and write the scenario-matrix fixture (smoke preset)."""
    digests = compute_matrix_digests(smoke_preset())
    path = write_golden_digests(digests, GOLDEN_DIR / "matrix_digests.json")
    print(f"wrote {path}")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", choices=sorted(PRESETS), default=None)
    parser.add_argument(
        "--matrix",
        action="store_true",
        help="refresh the scenario-matrix fixture (matrix_digests.json)",
    )
    parser.add_argument(
        "--all", action="store_true", help="refresh every fixture"
    )
    args = parser.parse_args(argv)
    if sum([args.all, args.preset is not None, args.matrix]) != 1:
        parser.error("pass exactly one of --preset, --matrix or --all")
    if args.matrix:
        refresh_matrix()
        return 0
    for preset in sorted(PRESETS) if args.all else [args.preset]:
        refresh(preset)
    if args.all:
        refresh_matrix()
    return 0


if __name__ == "__main__":
    sys.exit(main())
